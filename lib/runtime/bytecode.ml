(* Bytecode engine: a linear lowering of the resolved IR and the flat
   stack-machine VM that executes it.

   [compile] flattens every [Resolve.rfunc] body into one instruction
   array: an explicit operand stack replaces the OCaml call stack the
   tree-walker used per IR node, control flow becomes absolute jumps
   (patched in one pass, with compare-and-branch fusion for the common
   [a < b] loop conditions), and locals/globals/statics/fields are
   direct-indexed loads and stores. Calls still go through the interned
   function ids and per-name dispatch tables built by [Resolve];
   arguments are passed in place on the caller's operand stack, so the
   per-call [value array] allocation of the tree engine disappears.

   Observable semantics are preserved exactly — this is the whole
   contract, pinned by [test/test_bytecode.ml]'s golden differential:

   - tick (step-counting) points: one per statement entry, one per
     [call_function], one per constructor/destructor level, and the
     extra tick of the missing-constructor path;
   - [fresh_obj_id] sequencing, construction order (virtual bases at
     the most-derived level, direct bases, member subobjects, body) and
     reverse destruction order;
   - evaluation order, including lvalue-before-rhs in assignments and
     receiver-before-arguments in method calls;
   - error strings, the structured missing-member error, and the
     scope-exit destruction semantics of [Fun.protect] (a destructor
     failure during unwinding surfaces as [Fun.Finally_raised], exactly
     as the tree engine's [protect ~finally] did).

   The only intentional divergence: a [break]/[continue] outside any
   loop (never produced from well-formed sources, and never executed by
   any golden) raises a [Runtime_error] here, where the tree engine let
   the internal control exception escape. *)

open Frontend
open Sema
open Sema.Typed_ast
open Value
open Resolve

(* Every array access in this module is either compiler-generated (slot
   and jump indices validated during lowering) or guarded by an explicit
   bounds check that produces the interpreter's own error message, so
   the stdlib's implicit check never fires — shadow it away. This is
   worth ~10% on the dispatch loop. *)
module Array = struct
  include Stdlib.Array

  external get : 'a array -> int -> 'a = "%array_unsafe_get"
  external set : 'a array -> int -> 'a -> unit = "%array_unsafe_set"
end

(* -- instruction set ----------------------------------------------------------

   Lvalue locations are encoded as pointer values on the one operand
   stack: [VPtr (PCell r)] for legacy cell references and
   [VPtr (PArr (h, i))] for a slot of a backing array. Reading/writing
   through them is exactly [Value.read_loc]/[write_loc]; [ILocToPtr]
   applies the [arr_id = -1] re-wrap of [Value.ptr_of_loc] when a
   location escapes as a user-visible pointer. *)

type instr =
  (* pushes *)
  | IConst of value
  | ILoad of int          (* push frame slot *)
  | ILoadRef of int       (* reference local: push its referent's value *)
  | IGlobal of int
  | IStatic of int
  | IThis
  (* pure operators, in place on the stack *)
  | IPop
  | IUnary of Ast.unop
  | IBinop of Ast.binop   (* strict binops only; && / || compile to jumps *)
  | IToBool
  | ICastInt
  | ICastFloat
  | IField of slots_by_class * Member.t
  | IDeref
  | IIndex
  | IAsObj                (* coerce to an object before a member-ptr deref *)
  | IMemPtrDeref
  | IAddrOf
  (* lvalue locations *)
  | ILocLocal of int
  | ILocLocalRef of int
  | ILocGlobal of int
  | ILocStatic of int
  | ILocField of slots_by_class * Member.t
  | ILocDeref
  | ILocIndex
  | ILocMemPtr
  | ILocToPtr             (* location -> user-visible pointer (ptr_of_loc) *)
  | IObjToPtr             (* object-reference argument: VObj o -> VPtr (PObj o) *)
  (* stores *)
  | IAssign of Ast.type_expr
  | ICompound of Ast.assign_op * Ast.type_expr
  | IIncDec of Ast.incdec * Ast.fixity
  | IStoreLocal of int * Ast.type_expr      (* coerce, store, keep value *)
  | IStoreLocalPop of int * Ast.type_expr   (* coerce, store, drop value *)
  | IStoreRawPop of int                     (* store without coercion *)
  | IIncDecLocal of Ast.incdec * Ast.fixity * int
  | IIncDecLocalPop of Ast.incdec * int
  (* control *)
  | IJump of int
  | IJumpIfFalse of int
  | IJumpIfTrue of int
  | IJumpCmpFalse of Ast.binop * int  (* fused compare-and-branch *)
  | IAndFalse of int      (* &&: pop; falsy -> push 0 and jump *)
  | IOrTrue of int        (* ||: pop; truthy -> push 1 and jump *)
  | ITick
  | IPushScope of int array
  | IPopScope
  | IExitScopes of int    (* break/continue leaving n destroy scopes *)
  | IReturn
  | IReturnUnit
  | IRaise of string
  (* allocation *)
  | INewObj of { n_cid : int; n_cls : string; n_ctor : int; n_argc : int }
  | INewScalar of int * Ast.type_expr       (* bytes, element type *)
  | INewArrObj of { w_cid : int; w_cls : string; w_ctor : int }
  | INewArrScalar of Ast.type_expr * int    (* element type, element bytes *)
  | IDelete
  (* declarations *)
  | IDeclScalar of int * Ast.type_expr
  | IDeclStackArr of {
      ds_slot : int;
      ds_cid : int;
      ds_cls : string;
      ds_ctor : int;
      ds_len : int;
    }
  | IDeclCtor of {
      dc_slot : int;
      dc_cid : int;
      dc_cls : string;
      dc_ctor : int;
      dc_argc : int;
    }
  (* calls: arguments stay in place on the operand stack; the callee
     reads them at [sp - argc .. sp - 1] *)
  | IBuiltin of builtin * int
  | ICallFunc of int * int
  | ICallMethod of { m_func : int; m_argc : int; m_arrow : bool }
  | ICallVirtual of { v_name : string; v_table : int array; v_argc : int }
  | ICallFunPtr of int
  | ICallCtor of int * int  (* base/vbase constructor on the current [this] *)
  (* constructor member-initializer steps *)
  | IInitField of {
      if_slots : slots_by_class;
      if_member : Member.t;
      if_cid : int;
      if_cls : string;
      if_ctor : int;
      if_argc : int;
    }
  | IInitFieldArr of {
      ia_slots : slots_by_class;
      ia_member : Member.t;
      ia_cid : int;
      ia_cls : string;
      ia_ctor : int;
      ia_len : int;
    }
  | IInitFieldScalar of {
      is_slots : slots_by_class;
      is_member : Member.t;
      is_coerce : Ast.type_expr;
    }
  (* superinstructions: adjacent pairs fused at emit time (see [fuse]).
     Each is exactly the sequence of its parts — same evaluation order,
     same errors — in one dispatch. The dynamic pair profile over the
     benchmark suite drove the selection: local.field reads, statement
     ticks glued to their first load, compare-and-branch against a
     constant or local, and the store/increment-then-back-edge of for
     loops together cover over half of all executed pairs. *)
  | ILoadField of int * slots_by_class * Member.t     (* ILoad; IField *)
  | ITickLoad of int                                  (* ITick; ILoad *)
  | ITickLoadField of int * slots_by_class * Member.t
  | IThisField of slots_by_class * Member.t           (* IThis; IField *)
  | IIndexField of slots_by_class * Member.t          (* IIndex; IField *)
  | ILoadLocField of int * slots_by_class * Member.t  (* ILoad; ILocField *)
  | ILoadIndex of int                                 (* ILoad; IIndex *)
  | IFieldBinop of slots_by_class * Member.t * Ast.binop
  | ILoadFieldBinop of int * slots_by_class * Member.t * Ast.binop
  | IBinopConst of Ast.binop * value                  (* IConst; IBinop *)
  | ITickN of int                                     (* n adjacent ITicks *)
  | ITickPushScope of int array
  | IAssignPop of Ast.type_expr                       (* IAssign; IPop *)
  | IStoreLocalPopT of int * Ast.type_expr            (* store; next stmt's tick *)
  | IStoreLocalPopJump of int * Ast.type_expr * int   (* store; back edge *)
  | IIncDecLocalJump of Ast.incdec * int * int        (* step; back edge *)
  (* branch variants; the T forms run the fall-through statement's tick *)
  | IJumpIfFalseT of int
  | IJumpCmpFalseT of Ast.binop * int
  | IJumpCmpConstFalse of Ast.binop * value * int
  | IJumpCmpConstFalseT of Ast.binop * value * int
  | IJumpLocCmpConstFalse of int * Ast.binop * value * int
  | IJumpLocCmpConstFalseT of int * Ast.binop * value * int
  | IJumpLocCmpFalse of Ast.binop * int * int     (* top CMP local *)
  | IJumpLocCmpFalseT of Ast.binop * int * int
  | IJumpLoc2CmpFalse of Ast.binop * int * int * int  (* local CMP local *)
  | IJumpLoc2CmpFalseT of Ast.binop * int * int * int
  (* the pointer-chase loop body [p = p->f;] in one or two dispatches *)
  | ITickLoadFieldStore of
      int * slots_by_class * Member.t * int * Ast.type_expr
  | ITickLoadFieldStoreJump of
      int * slots_by_class * Member.t * int * Ast.type_expr * int
  (* round 3: cascade fusion re-fuses a fusion product with its own
     predecessor, so whole expression chains ([o.f[i*k+j].g], the
     pointer-scan loop condition) collapse to one dispatch. *)
  | ILoadBinopConst of int * Ast.binop * value        (* ILoad; IBinopConst *)
  | ILoadFieldBC of int * slots_by_class * Member.t * Ast.binop * value
  | ILoadFieldLoadBC of
      int * slots_by_class * Member.t * int * Ast.binop * value
  | IFieldIdxField of
      int * slots_by_class * Member.t * int * Ast.binop * value
      * slots_by_class * Member.t                     (* l.f[l' op k].g *)
  | ILoadFieldBinop2 of
      int * slots_by_class * Member.t * Ast.binop * Ast.binop
  | IBinopAssignPop of Ast.binop * Ast.type_expr      (* IBinop; IAssignPop *)
  | ITickThisField of slots_by_class * Member.t
  | ILoad2FieldBinop of int * int * slots_by_class * Member.t * Ast.binop
  | ILoadLoadField of int * int * slots_by_class * Member.t
  | ILocFieldLoadField of
      slots_by_class * Member.t * int * slots_by_class * Member.t
  | IStoreTLoadField of int * Ast.type_expr * int * slots_by_class * Member.t
  | ITickLoadFieldIndex of int * slots_by_class * Member.t * int
  | ITLFIndexStoreT of
      int * slots_by_class * Member.t * int * int * Ast.type_expr
  | ITickLoadFieldCmpLocFalse of
      int * slots_by_class * Member.t * Ast.binop * int * int
  | ITickLoadFieldCmpLocFalseT of
      int * slots_by_class * Member.t * Ast.binop * int * int
  | IBinopConstAndFalse of Ast.binop * value * int
  | IJumpIfFalseTPushScope of int * int array
  | ILoadFieldBinopJumpFalse of
      int * slots_by_class * Member.t * Ast.binop * int
  | ILoadFieldBinopJumpFalseT of
      int * slots_by_class * Member.t * Ast.binop * int
  | IJumpBCCmpFalse of Ast.binop * value * Ast.binop * int
  | IJumpBCCmpFalseT of Ast.binop * value * Ast.binop * int
  (* a scan loop's hot cycle [guard-branch -> p = p->f -> back edge]
     with the step on the branch's false edge: [finish]'s branch-target
     peephole inlines the step into the false arm; the step's own slot
     stays in place for the fall-in path *)
  | IScanStep of
      int * slots_by_class * Member.t * Ast.binop * int
      * int * slots_by_class * Member.t * int * Ast.type_expr * int
  (* [finish]'s second peephole: a guard [local CMP const] immediately
     followed by an [IScanStep] whose back edge is the guard itself is a
     whole self-contained scan loop; run it in a single dispatch. The
     body exit falls to [pc + 2]. *)
  | ILoopScan of
      int * Ast.binop * value * int
      * int * slots_by_class * Member.t * Ast.binop * int
      * int * slots_by_class * Member.t * int * Ast.type_expr
  | IBinopLoadField of Ast.binop * int * slots_by_class * Member.t
  | IBinop2 of Ast.binop * Ast.binop                  (* IBinop; IBinop *)
  | IThisFieldBinop of slots_by_class * Member.t * Ast.binop
  | IFieldBinop2AssignPop of
      int * slots_by_class * Member.t * Ast.binop * Ast.binop * Ast.type_expr
  | IBinop2AssignPop of Ast.binop * Ast.binop * Ast.type_expr
  | IConstFieldBinop2 of
      value * int * slots_by_class * Member.t * Ast.binop * Ast.binop
  | ILoadLocFieldLoadField of
      int * slots_by_class * Member.t * int * slots_by_class * Member.t
  | ILoadFieldBCAndFalse of
      int * slots_by_class * Member.t * Ast.binop * value * int
  | IJumpLocFCmpFalse of
      int * int * slots_by_class * Member.t * Ast.binop * int
  | IJumpLocFCmpFalseT of
      int * int * slots_by_class * Member.t * Ast.binop * int
  | IJumpLL2FBCCmpFalse of
      int * int * slots_by_class * Member.t * Ast.binop * value * Ast.binop
      * int
  | IJumpLL2FBCCmpFalseT of
      int * int * slots_by_class * Member.t * Ast.binop * value * Ast.binop
      * int

(* A compiled code body. [b_omax] bounds the operand stack the body can
   ever need (computed conservatively during emission); [b_scoped] says
   whether any destroy scope is opened, so scope-free bodies skip the
   unwinding machinery entirely. [b_id] is the body's index into
   [cp_bodies]/[cp_owners], assigned during [compile]; the profiler
   uses it to find the body's counter row. *)
type cbody = {
  b_code : instr array;
  b_omax : int;
  b_scoped : bool;
  mutable b_id : int;
}

type ckind =
  | KBody of cbody
  | KCtor of { kc_body : cbody; kc_entry : int }
      (* [kc_entry]: entry point skipping virtual-base construction, for
         non-most-derived invocations *)
  | KDtor
  | KUnknown
  | KUndefined
  | KMissingCtor

type cfunc = {
  c_id : Func_id.t;
  c_frame : int;
  c_params : rparam array;
  c_kind : ckind;
}

(* Per-class destruction plan with the destructor body compiled. *)
type cdestroy = {
  cd_dtor : (int * cbody) option;
  cd_fields : dfield array;
  cd_nv_bases : int array;
  cd_vbases_rev : int array;
}

type cprogram = {
  cp_rp : rprogram;
  cp_funcs : cfunc array;
  cp_destroy : cdestroy array;
  cp_ginit : cbody option array;  (* global initializers, by global index *)
  (* every compiled body, indexed by [b_id], with its owner: a display
     label plus the owning function's index when the body belongs to
     one (profiler call counts attach there) *)
  cp_bodies : cbody array;
  cp_owners : (string * int option) array;
}

(* -- telemetry (no-ops unless collection is enabled) -------------------------- *)

let instrs_counter = Telemetry.Counter.make "bytecode.instructions_compiled"
let bodies_counter = Telemetry.Counter.make "bytecode.bodies_compiled"

(* -- compiler ------------------------------------------------------------------ *)

(* Net operand-stack effect of one instruction; peaks within an
   instruction are covered by the +1 slack [emit] keeps and the fixed
   slack [finish] adds. Over-estimation is harmless (a few spare slots),
   under-estimation impossible: branch joins only ever *lower* the real
   depth below the linear scan's estimate. *)
let delta = function
  | IConst _ | ILoad _ | ILoadRef _ | IGlobal _ | IStatic _ | IThis
  | ILocLocal _ | ILocLocalRef _ | ILocGlobal _ | ILocStatic _
  | INewScalar _ | IIncDecLocal _ | IRaise _ ->
      1
  | IUnary _ | IToBool | ICastInt | ICastFloat | IField _ | IDeref | IAsObj
  | IAddrOf | ILocField _ | ILocDeref | ILocToPtr | IObjToPtr | IIncDec _
  | IStoreLocal _ | INewArrObj _ | INewArrScalar _ | IJump _ | ITick
  | IPushScope _ | IPopScope | IExitScopes _ | IReturnUnit | IDeclScalar _
  | IDeclStackArr _ | IIncDecLocalPop _ | IInitFieldArr _ ->
      0
  | IPop | IBinop _ | IIndex | IMemPtrDeref | ILocIndex | ILocMemPtr
  | IAssign _ | ICompound _ | IStoreLocalPop _ | IStoreRawPop _ | IDelete
  | IJumpIfFalse _ | IJumpIfTrue _ | IAndFalse _ | IOrTrue _ | IReturn
  | IInitFieldScalar _ ->
      -1
  | IJumpCmpFalse _ -> -2
  | ILoadField _ | ITickLoad _ | ITickLoadField _ | IThisField _
  | ILoadLocField _ ->
      1
  | ILoadFieldBinop _ | IBinopConst _ | ITickN _ | ITickPushScope _
  | IIncDecLocalJump _ | IJumpLocCmpConstFalse _ | IJumpLocCmpConstFalseT _
  | ILoadIndex _ | IJumpLoc2CmpFalse _ | IJumpLoc2CmpFalseT _
  | ITickLoadFieldStore _ | ITickLoadFieldStoreJump _ ->
      0
  | IFieldBinop _ | IIndexField _ | IStoreLocalPopT _ | IStoreLocalPopJump _
  | IJumpIfFalseT _ | IJumpCmpConstFalse _ | IJumpCmpConstFalseT _
  | IJumpLocCmpFalse _ | IJumpLocCmpFalseT _ ->
      -1
  | IAssignPop _ | IJumpCmpFalseT _ -> -2
  | ILoadBinopConst _ | ILoadFieldBC _ | ITickThisField _
  | ILoad2FieldBinop _ | ITickLoadFieldIndex _ | ILocFieldLoadField _
  | IFieldIdxField _ ->
      1
  | ILoadFieldLoadBC _ | ILoadLoadField _ -> 2
  | IStoreTLoadField _ | ITLFIndexStoreT _ | ITickLoadFieldCmpLocFalse _
  | ITickLoadFieldCmpLocFalseT _ ->
      0
  | ILoadFieldBinop2 _ | IJumpIfFalseTPushScope _ | ILoadFieldBinopJumpFalse _
  | ILoadFieldBinopJumpFalseT _ | IBinopConstAndFalse _ ->
      -1
  | IJumpBCCmpFalse _ | IJumpBCCmpFalseT _ -> -2
  | IScanStep _ | ILoopScan _
  | IBinopLoadField _ | IThisFieldBinop _ | IConstFieldBinop2 _
  | ILoadFieldBCAndFalse _ | IJumpLocFCmpFalse _ | IJumpLocFCmpFalseT _
  | IJumpLL2FBCCmpFalse _ | IJumpLL2FBCCmpFalseT _ ->
      0
  | ILoadLocFieldLoadField _ -> 2
  | IBinop2 _ -> -2
  | IFieldBinop2AssignPop _ -> -3
  | IBinop2AssignPop _ -> -4
  | IBinopAssignPop _ -> -3
  | IBuiltin (_, n) | ICallFunc (_, n) | INewObj { n_argc = n; _ } -> 1 - n
  | ICallMethod { m_argc = n; _ } -> -n  (* receiver consumed, result pushed *)
  | ICallVirtual { v_argc = n; _ } -> -n
  | ICallFunPtr n -> -n
  | ICallCtor (_, n) -> -n
  | IInitField { if_argc = n; _ } -> -n
  | IDeclCtor { dc_argc = n; _ } -> -n

type buf = {
  mutable code : instr array;
  mutable len : int;
  mutable od : int;    (* linear-scan operand depth *)
  mutable omax : int;
  mutable sdepth : int;  (* open destroy scopes at the frontier *)
  mutable scoped : bool;
  mutable lastlab : int;
      (* highest position that is a jump target; labels are only created
         at the frontier, so this is monotone. Fusing [prev; i] into one
         instruction in [prev]'s slot is legal unless a label sits
         *between* the two ([lastlab = len]): a jumper landing there
         expects [i] without [prev]'s effect. A label on [prev] itself
         is fine — jumpers wanted [prev] then [i] anyway. *)
}

let mk_buf () =
  {
    code = Array.make 32 IReturnUnit;
    len = 0;
    od = 0;
    omax = 0;
    sdepth = 0;
    scoped = false;
    lastlab = -1;
  }

(* The pair-fusion table: [fuse prev i] is the single instruction
   equivalent to [prev; i], or [None]. Every fusion preserves the exact
   sequence semantics (evaluation order, ticks, errors) by
   construction — the VM arm of each fused form is the concatenation of
   its parts' arms. The selection comes from the dynamic pair profile
   over the benchmark suite: local.field reads, statement ticks glued to
   their first load, binops against a constant, and the store/increment
   plus back-edge of for loops cover over half of all executed pairs. *)
let fuse (prev : instr) (i : instr) : instr option =
  match (prev, i) with
  | ILoad n, IField (s, m) -> Some (ILoadField (n, s, m))
  | ITickLoad n, IField (s, m) -> Some (ITickLoadField (n, s, m))
  | IThis, IField (s, m) -> Some (IThisField (s, m))
  | IIndex, IField (s, m) -> Some (IIndexField (s, m))
  | ILoad n, ILocField (s, m) -> Some (ILoadLocField (n, s, m))
  | ITick, ILoad n -> Some (ITickLoad n)
  | ITick, ITick -> Some (ITickN 2)
  | ITickN n, ITick -> Some (ITickN (n + 1))
  | ITick, IPushScope s -> Some (ITickPushScope s)
  | IStoreLocalPop (n, ty), ITick -> Some (IStoreLocalPopT (n, ty))
  | IJumpIfFalse t, ITick -> Some (IJumpIfFalseT t)
  | IJumpCmpFalse (op, t), ITick -> Some (IJumpCmpFalseT (op, t))
  | IJumpCmpConstFalse (op, v, t), ITick ->
      Some (IJumpCmpConstFalseT (op, v, t))
  | IJumpLocCmpConstFalse (n, op, v, t), ITick ->
      Some (IJumpLocCmpConstFalseT (n, op, v, t))
  | IJumpLocCmpFalse (op, n, t), ITick -> Some (IJumpLocCmpFalseT (op, n, t))
  | IJumpLoc2CmpFalse (op, x, y, t), ITick ->
      Some (IJumpLoc2CmpFalseT (op, x, y, t))
  | ITickLoadField (i, s, m), IStoreLocalPop (j, ty) ->
      Some (ITickLoadFieldStore (i, s, m, j, ty))
  | ITickLoadFieldStore (i, s, m, j, ty), IJump t ->
      Some (ITickLoadFieldStoreJump (i, s, m, j, ty, t))
  | IConst v, IBinop op -> Some (IBinopConst (op, v))
  | ILoadField (n, s, m), IBinop op -> Some (ILoadFieldBinop (n, s, m, op))
  | IField (s, m), IBinop op -> Some (IFieldBinop (s, m, op))
  | IAssign ty, IPop -> Some (IAssignPop ty)
  | IStoreLocalPop (n, ty), IJump t -> Some (IStoreLocalPopJump (n, ty, t))
  | IIncDecLocalPop (w, n), IJump t -> Some (IIncDecLocalJump (w, n, t))
  | IIncDecLocal (w, _, n), IPop -> Some (IIncDecLocalPop (w, n))
  | IStoreLocal (n, ty), IPop -> Some (IStoreLocalPop (n, ty))
  | ILoad n, IIndex -> Some (ILoadIndex n)
  | ILoadFieldBinop (n, s, m, op1), IBinop op2 ->
      Some (ILoadFieldBinop2 (n, s, m, op1, op2))
  | ITickLoadField (n, s, m), IJumpLocCmpFalse (op, y, t) ->
      Some (ITickLoadFieldCmpLocFalse (n, s, m, op, y, t))
  | ITickLoadFieldCmpLocFalse (n, s, m, op, y, t), ITick ->
      Some (ITickLoadFieldCmpLocFalseT (n, s, m, op, y, t))
  | IBinopConst (op, v), IAndFalse t -> Some (IBinopConstAndFalse (op, v, t))
  | IJumpIfFalseT t, IPushScope s -> Some (IJumpIfFalseTPushScope (t, s))
  | ILoadFieldBinop (n, s, m, op), IJumpIfFalse t ->
      Some (ILoadFieldBinopJumpFalse (n, s, m, op, t))
  | ILoadFieldBinopJumpFalse (n, s, m, op, t), ITick ->
      Some (ILoadFieldBinopJumpFalseT (n, s, m, op, t))
  | IJumpBCCmpFalse (o1, v, o2, t), ITick ->
      Some (IJumpBCCmpFalseT (o1, v, o2, t))
  | IThisField (s, m), IBinop op -> Some (IThisFieldBinop (s, m, op))
  | IBinop op1, IBinop op2 -> Some (IBinop2 (op1, op2))
  | ILoadFieldBC (n, s, m, op, v), IAndFalse t ->
      Some (ILoadFieldBCAndFalse (n, s, m, op, v, t))
  | IJumpLocFCmpFalse (i, j, s, m, op, t), ITick ->
      Some (IJumpLocFCmpFalseT (i, j, s, m, op, t))
  | IJumpLL2FBCCmpFalse (i, j, s, m, op1, v, op2, t), ITick ->
      Some (IJumpLL2FBCCmpFalseT (i, j, s, m, op1, v, op2, t))
  | _ -> None

(* The cascade table: after [fuse] lands a combined instruction, try
   fusing it with *its* predecessor. Only forms whose consumed halves
   carry no pending patch site may appear here (no branch instruction is
   ever on the right, and no vacated slot may hold a branch), so the
   recorded patch positions stay valid when the frontier shrinks. *)
let fuse2 (prev : instr) (f : instr) : instr option =
  match (prev, f) with
  | ILoad n, IBinopConst (op, v) -> Some (ILoadBinopConst (n, op, v))
  | ILoadField (n, s, m), IBinopConst (op, v) ->
      Some (ILoadFieldBC (n, s, m, op, v))
  | ILoadField (n, s, m), ILoadBinopConst (j, op, v) ->
      Some (ILoadFieldLoadBC (n, s, m, j, op, v))
  | ILoadFieldLoadBC (n, s, m, j, op, v), IIndexField (s2, m2) ->
      Some (IFieldIdxField (n, s, m, j, op, v, s2, m2))
  | IBinop op, IAssignPop ty -> Some (IBinopAssignPop (op, ty))
  | ITick, IThisField (s, m) -> Some (ITickThisField (s, m))
  | ILoad i, ILoadFieldBinop (j, s, m, op) ->
      Some (ILoad2FieldBinop (i, j, s, m, op))
  | ILoad i, ILoadField (j, s, m) -> Some (ILoadLoadField (i, j, s, m))
  | ILocField (s1, m1), ILoadField (j, s2, m2) ->
      Some (ILocFieldLoadField (s1, m1, j, s2, m2))
  | IStoreLocalPopT (i, ty), ILoadField (j, s, m) ->
      Some (IStoreTLoadField (i, ty, j, s, m))
  | ITickLoadField (a, s, m), ILoadIndex i ->
      Some (ITickLoadFieldIndex (a, s, m, i))
  | ITickLoadFieldIndex (a, s, m, i), IStoreLocalPopT (x, ty) ->
      Some (ITLFIndexStoreT (a, s, m, i, x, ty))
  | IBinop op, ILoadField (j, s, m) -> Some (IBinopLoadField (op, j, s, m))
  | ILoadFieldBinop2 (n, s, m, op1, op2), IAssignPop ty ->
      Some (IFieldBinop2AssignPop (n, s, m, op1, op2, ty))
  | IBinop2 (op1, op2), IAssignPop ty -> Some (IBinop2AssignPop (op1, op2, ty))
  | IConst v, ILoadFieldBinop2 (n, s, m, op1, op2) ->
      Some (IConstFieldBinop2 (v, n, s, m, op1, op2))
  | ILoadLocField (n, s, m), ILoadField (j, s2, m2) ->
      Some (ILoadLocFieldLoadField (n, s, m, j, s2, m2))
  | _ -> None

let emit (b : buf) (i : instr) =
  match
    if b.len > 0 && b.lastlab <> b.len then fuse b.code.(b.len - 1) i else None
  with
  | Some f ->
      b.code.(b.len - 1) <- f;
      (* [prev]'s delta is already in [od]; the fused form adds [i]'s *)
      b.od <- b.od + delta i;
      if b.od + 1 > b.omax then b.omax <- b.od + 1;
      (* cascade: the combined instruction may fuse again with its own
         predecessor. A label on the surviving slot is fine (the fused
         run starts there); one on the vacated slot blocks it. *)
      let rec settle () =
        if b.len >= 2 && b.lastlab < b.len - 1 then
          match fuse2 b.code.(b.len - 2) b.code.(b.len - 1) with
          | Some g ->
              b.len <- b.len - 1;
              b.code.(b.len - 1) <- g;
              settle ()
          | None -> ()
      in
      settle ()
  | None ->
      if b.len = Array.length b.code then begin
        let nc = Array.make (2 * b.len) IReturnUnit in
        Array.blit b.code 0 nc 0 b.len;
        b.code <- nc
      end;
      b.code.(b.len) <- i;
      b.len <- b.len + 1;
      b.od <- b.od + delta i;
      if b.od + 1 > b.omax then b.omax <- b.od + 1

(* Emit a forward jump with a placeholder target; returns the patch site
   (the fused slot, when the jump merged into its predecessor). *)
let emit_patch b i =
  emit b i;
  b.len - 1

(* Mark the frontier as a jump target (blocks fusion across it). *)
let here b =
  b.lastlab <- b.len;
  b.len

let patch_to (b : buf) (t : int) (i : int) =
  b.code.(i) <-
    (match b.code.(i) with
    | IJump _ -> IJump t
    | IJumpIfFalse _ -> IJumpIfFalse t
    | IJumpIfFalseT _ -> IJumpIfFalseT t
    | IJumpIfTrue _ -> IJumpIfTrue t
    | IJumpCmpFalse (op, _) -> IJumpCmpFalse (op, t)
    | IJumpCmpFalseT (op, _) -> IJumpCmpFalseT (op, t)
    | IJumpCmpConstFalse (op, v, _) -> IJumpCmpConstFalse (op, v, t)
    | IJumpCmpConstFalseT (op, v, _) -> IJumpCmpConstFalseT (op, v, t)
    | IJumpLocCmpConstFalse (n, op, v, _) -> IJumpLocCmpConstFalse (n, op, v, t)
    | IJumpLocCmpConstFalseT (n, op, v, _) ->
        IJumpLocCmpConstFalseT (n, op, v, t)
    | IJumpLocCmpFalse (op, n, _) -> IJumpLocCmpFalse (op, n, t)
    | IJumpLocCmpFalseT (op, n, _) -> IJumpLocCmpFalseT (op, n, t)
    | IJumpLoc2CmpFalse (op, x, y, _) -> IJumpLoc2CmpFalse (op, x, y, t)
    | IJumpLoc2CmpFalseT (op, x, y, _) -> IJumpLoc2CmpFalseT (op, x, y, t)
    | ITickLoadFieldStoreJump (i, s, m, j, ty, _) ->
        ITickLoadFieldStoreJump (i, s, m, j, ty, t)
    | IStoreLocalPopJump (n, ty, _) -> IStoreLocalPopJump (n, ty, t)
    | IIncDecLocalJump (w, n, _) -> IIncDecLocalJump (w, n, t)
    | IAndFalse _ -> IAndFalse t
    | ITickLoadFieldCmpLocFalse (n, s, m, op, y, _) ->
        ITickLoadFieldCmpLocFalse (n, s, m, op, y, t)
    | ITickLoadFieldCmpLocFalseT (n, s, m, op, y, _) ->
        ITickLoadFieldCmpLocFalseT (n, s, m, op, y, t)
    | IBinopConstAndFalse (op, v, _) -> IBinopConstAndFalse (op, v, t)
    | IJumpIfFalseTPushScope (_, s) -> IJumpIfFalseTPushScope (t, s)
    | ILoadFieldBinopJumpFalse (n, s, m, op, _) ->
        ILoadFieldBinopJumpFalse (n, s, m, op, t)
    | ILoadFieldBinopJumpFalseT (n, s, m, op, _) ->
        ILoadFieldBinopJumpFalseT (n, s, m, op, t)
    | IJumpBCCmpFalse (o1, v, o2, _) -> IJumpBCCmpFalse (o1, v, o2, t)
    | IJumpBCCmpFalseT (o1, v, o2, _) -> IJumpBCCmpFalseT (o1, v, o2, t)
    | ILoadFieldBCAndFalse (n, s, m, op, v, _) ->
        ILoadFieldBCAndFalse (n, s, m, op, v, t)
    | IJumpLocFCmpFalse (i, j, s, m, op, _) ->
        IJumpLocFCmpFalse (i, j, s, m, op, t)
    | IJumpLocFCmpFalseT (i, j, s, m, op, _) ->
        IJumpLocFCmpFalseT (i, j, s, m, op, t)
    | IJumpLL2FBCCmpFalse (i, j, s, m, op1, v, op2, _) ->
        IJumpLL2FBCCmpFalse (i, j, s, m, op1, v, op2, t)
    | IJumpLL2FBCCmpFalseT (i, j, s, m, op1, v, op2, _) ->
        IJumpLL2FBCCmpFalseT (i, j, s, m, op1, v, op2, t)
    | IOrTrue _ -> IOrTrue t
    | _ -> assert false)

(* Land the given patch sites on the frontier. *)
let land_patches b sites =
  if sites <> [] then begin
    let t = b.len in
    List.iter (patch_to b t) sites;
    b.lastlab <- b.len
  end

let is_cmp = function
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge -> true
  | _ -> false

(* Branch on a falsy condition, fusing the comparison just emitted into
   the branch: [a CMP b] becomes one compare-and-branch, [a CMP const]
   folds the constant in, and [local CMP const] — the canonical for-loop
   condition — folds the load too, deleting its slot. The fused
   instructions run the same [value_eq] / [compare_test] the tree engine
   ran, so errors are unchanged. Deleting a slot additionally requires
   that no label lands on it. *)
let emit_branch_false b =
  if b.len > 0 && b.lastlab <> b.len then
    match b.code.(b.len - 1) with
    | IBinop op when is_cmp op -> (
        match
          if b.lastlab < b.len - 1 then b.code.(b.len - 2) else IReturnUnit
        with
        | ILoad y
          when b.len >= 3 && b.lastlab < b.len - 2
               && (match b.code.(b.len - 3) with ILoad _ -> true | _ -> false)
          ->
            (* [ILoad x; ILoad y; CMP]: the whole condition in one *)
            let x =
              match b.code.(b.len - 3) with ILoad x -> x | _ -> assert false
            in
            b.len <- b.len - 3;
            b.od <- b.od - 1;  (* roll back +1 +1 -1 *)
            emit_patch b (IJumpLoc2CmpFalse (op, x, y, -1))
        | ILoad y ->
            b.len <- b.len - 2;  (* roll back +1 -1 *)
            emit_patch b (IJumpLocCmpFalse (op, y, -1))
        | ILoadLoadField (x, y, s, m) ->
            (* [lx; ly.f; CMP]: the whole condition in one instruction *)
            b.len <- b.len - 1;
            b.od <- b.od - 1;  (* +2 -1 applied; the fused branch is 0 *)
            b.code.(b.len - 1) <- IJumpLocFCmpFalse (x, y, s, m, op, -1);
            b.len - 1
        | IBinopConst (op1, cv)
          when b.len >= 3
               && b.lastlab < b.len - 2
               && match b.code.(b.len - 3) with
                  | ILoadLoadField _ -> true
                  | _ -> false -> (
            (* [lx; ly.f; (.. OP1 k); CMP] in one instruction *)
            match b.code.(b.len - 3) with
            | ILoadLoadField (x, y, s, m) ->
                b.len <- b.len - 2;
                b.od <- b.od - 1;  (* +2 0 -1 applied; the fused branch is 0 *)
                b.code.(b.len - 1) <-
                  IJumpLL2FBCCmpFalse (x, y, s, m, op1, cv, op, -1);
                b.len - 1
            | _ -> assert false)
        | IBinopConst (op1, cv) ->
            (* [x; (a OP1 k); CMP]: fold the constant binop into the
               branch (the scrutinee guard excludes a label here) *)
            b.len <- b.len - 1;
            b.od <- b.od - 1;  (* 0 -1 applied; the fused branch is -2 *)
            b.code.(b.len - 1) <- IJumpBCCmpFalse (op1, cv, op, -1);
            b.len - 1
        | _ ->
            b.code.(b.len - 1) <- IJumpCmpFalse (op, -1);
            b.od <- b.od - 1;  (* IBinop's -1 was applied; fused is -2 *)
            b.len - 1)
    | ILoadBinopConst (n, op, v) when is_cmp op ->
        (* the cascade already folded [ILoad; IConst; CMP]; turn it into
           the canonical for-loop branch in place *)
        b.code.(b.len - 1) <- IJumpLocCmpConstFalse (n, op, v, -1);
        b.od <- b.od - 1;  (* +1 applied; the fused branch is net 0 *)
        b.len - 1
    | IBinopConst (op, v) when is_cmp op -> (
        match
          if b.len >= 2 && b.lastlab < b.len - 1 then b.code.(b.len - 2)
          else IReturnUnit
        with
        | ILoad n ->
            (* roll back [ILoad; IBinopConst] (net +1); the fused branch
               is net 0 *)
            b.len <- b.len - 2;
            b.od <- b.od - 1;
            emit_patch b (IJumpLocCmpConstFalse (n, op, v, -1))
        | _ ->
            b.code.(b.len - 1) <- IJumpCmpConstFalse (op, v, -1);
            b.od <- b.od - 1;  (* IBinopConst's 0 was applied; fused is -1 *)
            b.len - 1)
    | _ -> emit_patch b (IJumpIfFalse (-1))
  else emit_patch b (IJumpIfFalse (-1))

type loopctx = { mutable brk : int list; mutable cont : int list; base : int }

let rec compile_expr b (e : rexpr) =
  match e with
  | RConst v -> emit b (IConst v)
  | RLocal i -> emit b (ILoad i)
  | RLocalRef i -> emit b (ILoadRef i)
  | RGlobal i -> emit b (IGlobal i)
  | RStatic i -> emit b (IStatic i)
  | RThis -> emit b IThis
  | RUnary (op, a) ->
      compile_expr b a;
      emit b (IUnary op)
  | RBinary (Ast.LAnd, x, y) ->
      compile_expr b x;
      let j = emit_patch b (IAndFalse (-1)) in
      compile_expr b y;
      emit b IToBool;
      land_patches b [ j ]
  | RBinary (Ast.LOr, x, y) ->
      compile_expr b x;
      let j = emit_patch b (IOrTrue (-1)) in
      compile_expr b y;
      emit b IToBool;
      land_patches b [ j ]
  | RBinary (op, x, y) ->
      compile_expr b x;
      compile_expr b y;
      emit b (IBinop op)
  | RAssign (LvLocal i, rhs, ty) ->
      compile_expr b rhs;
      emit b (IStoreLocal (i, ty))
  | RAssign (lhs, rhs, ty) ->
      compile_lval b lhs;
      compile_expr b rhs;
      emit b (IAssign ty)
  | RCompound (op, lhs, rhs, ty) ->
      compile_lval b lhs;
      compile_expr b rhs;
      emit b (ICompound (op, ty))
  | RIncDec (w, fx, LvLocal i) -> emit b (IIncDecLocal (w, fx, i))
  | RIncDec (w, fx, lv) ->
      compile_lval b lv;
      emit b (IIncDec (w, fx))
  | RCond (c, t, f) ->
      compile_expr b c;
      let j1 = emit_branch_false b in
      let d0 = b.od in
      compile_expr b t;
      let j2 = emit_patch b (IJump (-1)) in
      land_patches b [ j1 ];
      b.od <- d0;  (* the two arms join at the same depth *)
      compile_expr b f;
      land_patches b [ j2 ]
  | RCastInt a ->
      compile_expr b a;
      emit b ICastInt
  | RCastFloat a ->
      compile_expr b a;
      emit b ICastFloat
  | RField (oe, slots, m) ->
      compile_expr b oe;
      emit b (IField (slots, m))
  | RCall c -> compile_call b c
  | RAddrOf lv ->
      compile_lval b lv;
      emit b IAddrOf
  | RDeref a ->
      compile_expr b a;
      emit b IDeref
  | RIndex (a, i) ->
      compile_expr b a;
      compile_expr b i;
      emit b IIndex
  | RMemPtrDeref (recv, pm) ->
      (* the receiver must be an object before the member pointer is even
         evaluated — same error order as the tree engine *)
      compile_expr b recv;
      emit b IAsObj;
      compile_expr b pm;
      emit b IMemPtrDeref
  | RNewObj { no_cid; no_cls; no_ctor; no_args } ->
      compile_args b no_args;
      emit b
        (INewObj
           {
             n_cid = no_cid;
             n_cls = no_cls;
             n_ctor = no_ctor;
             n_argc = Array.length no_args;
           })
  | RNewScalar { ns_bytes; ns_ty } -> emit b (INewScalar (ns_bytes, ns_ty))
  | RNewArrObj { na_cid; na_cls; na_ctor; na_len } ->
      compile_expr b na_len;
      emit b (INewArrObj { w_cid = na_cid; w_cls = na_cls; w_ctor = na_ctor })
  | RNewArrScalar { nas_ty; nas_elem_bytes; nas_len } ->
      compile_expr b nas_len;
      emit b (INewArrScalar (nas_ty, nas_elem_bytes))
  | RInvalid msg -> emit b (IRaise msg)

and compile_lval b (lv : rlval) =
  match lv with
  | LvLocal i -> emit b (ILocLocal i)
  | LvLocalRef i -> emit b (ILocLocalRef i)
  | LvGlobal i -> emit b (ILocGlobal i)
  | LvStatic i -> emit b (ILocStatic i)
  | LvField (oe, slots, m) ->
      compile_expr b oe;
      emit b (ILocField (slots, m))
  | LvDeref a ->
      compile_expr b a;
      emit b ILocDeref
  | LvIndex (a, i) ->
      compile_expr b a;
      compile_expr b i;
      emit b ILocIndex
  | LvMemPtrDeref (recv, pm) ->
      compile_expr b recv;
      emit b IAsObj;
      compile_expr b pm;
      emit b ILocMemPtr
  | LvInvalid msg -> emit b (IRaise msg)

and compile_arg b (a : arg_mode) =
  match a with
  | AVal e -> compile_expr b e
  | ARefScalar lv ->
      compile_lval b lv;
      emit b ILocToPtr
  | ARefObj e ->
      compile_expr b e;
      emit b IObjToPtr

and compile_args b (args : arg_mode array) = Array.iter (compile_arg b) args

and compile_call b (c : rcall) =
  match c with
  | RBuiltin (bi, args) ->
      Array.iter (compile_expr b) args;
      emit b (IBuiltin (bi, Array.length args))
  | RCallFunc { cf_func; cf_args } ->
      compile_args b cf_args;
      emit b (ICallFunc (cf_func, Array.length cf_args))
  | RCallMethod { cm_recv; cm_arrow; cm_func; cm_args } ->
      compile_expr b cm_recv;
      compile_args b cm_args;
      emit b
        (ICallMethod
           { m_func = cm_func; m_argc = Array.length cm_args; m_arrow = cm_arrow })
  | RCallVirtual { cv_recv; cv_name; cv_table; cv_args } ->
      compile_expr b cv_recv;
      compile_args b cv_args;
      emit b
        (ICallVirtual
           { v_name = cv_name; v_table = cv_table; v_argc = Array.length cv_args })
  | RCallFunPtr { fp_fn; fp_args } ->
      compile_expr b fp_fn;
      compile_args b fp_args;
      emit b (ICallFunPtr (Array.length fp_args))

and compile_decl b (d : rdecl) =
  match d with
  | DScalar { d_slot; d_ty } -> emit b (IDeclScalar (d_slot, d_ty))
  | DStackArrObj { d_slot; d_cid; d_cls; d_ctor; d_len } ->
      emit b
        (IDeclStackArr
           {
             ds_slot = d_slot;
             ds_cid = d_cid;
             ds_cls = d_cls;
             ds_ctor = d_ctor;
             ds_len = d_len;
           })
  | DExpr { d_slot; d_coerce; d_init } ->
      compile_expr b d_init;
      emit b (IStoreLocalPop (d_slot, d_coerce))
  | DRefExpr { d_slot; d_init; d_lv } ->
      (* the initializer is evaluated for its value first, then again as
         a location, exactly as the tree engine did *)
      compile_expr b d_init;
      emit b IPop;
      compile_lval b d_lv;
      emit b ILocToPtr;
      emit b (IStoreRawPop d_slot)
  | DCtor { d_slot; d_cid; d_cls; d_ctor; d_args } ->
      compile_args b d_args;
      emit b
        (IDeclCtor
           {
             dc_slot = d_slot;
             dc_cid = d_cid;
             dc_cls = d_cls;
             dc_ctor = d_ctor;
             dc_argc = Array.length d_args;
           })
  | DFail msg -> emit b (IRaise msg)

and compile_stmt b (lc : loopctx option) (s : rstmt) =
  emit b ITick;
  match s with
  | RSExpr (RAssign (LvLocal i, rhs, ty)) ->
      compile_expr b rhs;
      emit b (IStoreLocalPop (i, ty))
  | RSExpr (RIncDec (w, _, LvLocal i)) -> emit b (IIncDecLocalPop (w, i))
  | RSExpr e ->
      compile_expr b e;
      emit b IPop
  | RSDecl ds -> List.iter (compile_decl b) ds
  | RSBlock (body, destroy) ->
      if Array.length destroy = 0 then Array.iter (compile_stmt b lc) body
      else begin
        emit b (IPushScope destroy);
        b.sdepth <- b.sdepth + 1;
        b.scoped <- true;
        Array.iter (compile_stmt b lc) body;
        b.sdepth <- b.sdepth - 1;
        emit b IPopScope
      end
  | RSIf (c, t, e) -> (
      compile_expr b c;
      let j = emit_branch_false b in
      compile_stmt b lc t;
      match e with
      | None -> land_patches b [ j ]
      | Some es ->
          let j2 = emit_patch b (IJump (-1)) in
          land_patches b [ j ];
          compile_stmt b lc es;
          land_patches b [ j2 ])
  | RSWhile (c, body) ->
      let top = here b in
      compile_expr b c;
      let jend = emit_branch_false b in
      let lc' = { brk = []; cont = []; base = b.sdepth } in
      compile_stmt b (Some lc') body;
      emit b (IJump top);
      List.iter (patch_to b top) lc'.cont;  (* continue re-tests the condition *)
      land_patches b (jend :: lc'.brk)
  | RSDoWhile (body, c) ->
      let top = here b in
      let lc' = { brk = []; cont = []; base = b.sdepth } in
      compile_stmt b (Some lc') body;
      land_patches b lc'.cont;  (* continue falls into the condition *)
      compile_expr b c;
      emit b (IJumpIfTrue top);
      land_patches b lc'.brk
  | RSFor { rf_init; rf_cond; rf_step; rf_body; rf_destroy } ->
      (* the destroy scope covers init + body, as the tree engine's
         [Fun.protect] around [exec_for] did; break exits to the scope
         pop, not past it *)
      let scoped = Array.length rf_destroy > 0 in
      if scoped then begin
        emit b (IPushScope rf_destroy);
        b.sdepth <- b.sdepth + 1;
        b.scoped <- true
      end;
      Option.iter (compile_stmt b lc) rf_init;
      let top = here b in
      let jend =
        match rf_cond with
        | Some c ->
            compile_expr b c;
            Some (emit_branch_false b)
        | None -> None
      in
      let lc' = { brk = []; cont = []; base = b.sdepth } in
      compile_stmt b (Some lc') rf_body;
      land_patches b lc'.cont;
      (match rf_step with
      | Some e ->
          compile_expr b e;
          emit b IPop
      | None -> ());
      emit b (IJump top);
      land_patches b (match jend with Some j -> j :: lc'.brk | None -> lc'.brk);
      if scoped then begin
        b.sdepth <- b.sdepth - 1;
        emit b IPopScope
      end
  | RSReturn None -> emit b IReturnUnit
  | RSReturn (Some e) ->
      compile_expr b e;
      emit b IReturn
  | RSBreak -> (
      match lc with
      | Some l ->
          let n = b.sdepth - l.base in
          if n > 0 then emit b (IExitScopes n);
          l.brk <- emit_patch b (IJump (-1)) :: l.brk
      | None -> emit b (IRaise "break outside a loop"))
  | RSContinue -> (
      match lc with
      | Some l ->
          let n = b.sdepth - l.base in
          if n > 0 then emit b (IExitScopes n);
          l.cont <- emit_patch b (IJump (-1)) :: l.cont
      | None -> emit b (IRaise "continue outside a loop"))
  | RSDelete e ->
      compile_expr b e;
      emit b IDelete
  | RSEmpty -> ()

let finish (b : buf) : cbody =
  let code = Array.sub b.code 0 b.len in
  (* Branch-target inlining, after all patching: a list-scan loop runs
     [guard -> (false edge) -> step -> back edge] with the step only
     *jump*-adjacent to the guard, so emit-time fusion can never see
     the pair. Replicate the step into the guard's false arm instead;
     the step's slot stays for the fall-in (then-branch) path. The tick
     and error sequence of the combined arm is the exact concatenation
     of the two instructions. *)
  Array.iteri
    (fun i ins ->
      match ins with
      | ITickLoadFieldCmpLocFalseT (j, s, m, op, n, texit)
        when texit >= 0 && texit < Array.length code -> (
          match code.(texit) with
          | ITickLoadFieldStoreJump (a, s2, m2, bdst, ty, tback) ->
              code.(i) <-
                IScanStep (j, s, m, op, n, a, s2, m2, bdst, ty, tback)
          | _ -> ())
      | _ -> ())
    code;
  Array.iteri
    (fun i ins ->
      match ins with
      | IJumpLocCmpConstFalseT (x, op0, v0, texit0)
        when i + 1 < Array.length code -> (
          match code.(i + 1) with
          | IScanStep (j, s, m, op, n, a, s2, m2, bdst, ty, tback)
            when tback = i ->
              code.(i) <-
                ILoopScan
                  (x, op0, v0, texit0, j, s, m, op, n, a, s2, m2, bdst, ty)
          | _ -> ())
      | _ -> ())
    code;
  {
    b_code = code;
    b_omax = b.omax + 8;  (* slack over the conservative linear estimate *)
    b_scoped = b.scoped;
    b_id = -1;
  }

(* A statement body (function, constructor tail, destructor): falls off
   the end returning [VUnit], like the tree engine's implicit return. *)
let compile_body_stmt (s : rstmt) : cbody =
  let b = mk_buf () in
  compile_stmt b None s;
  emit b IReturnUnit;
  finish b

(* Constructor: virtual-base calls first (skipped via [kc_entry] when
   not most-derived), then direct bases, member initializers, body.
   The per-level tick is issued by the VM's [run_ctor], not in code. *)
let compile_ctor (plan : ctor_plan) : int * cbody =
  let b = mk_buf () in
  Array.iter
    (fun (bp : base_plan) ->
      compile_args b bp.bp_args;
      emit b (ICallCtor (bp.bp_ctor, Array.length bp.bp_args)))
    plan.cp_vbases;
  let entry = b.len in
  Array.iter
    (fun (bp : base_plan) ->
      compile_args b bp.bp_args;
      emit b (ICallCtor (bp.bp_ctor, Array.length bp.bp_args)))
    plan.cp_bases;
  Array.iter
    (fun fp ->
      match fp with
      | FPClass { fc_slots; fc_member; fc_cid; fc_cls; fc_ctor; fc_args } ->
          compile_args b fc_args;
          emit b
            (IInitField
               {
                 if_slots = fc_slots;
                 if_member = fc_member;
                 if_cid = fc_cid;
                 if_cls = fc_cls;
                 if_ctor = fc_ctor;
                 if_argc = Array.length fc_args;
               })
      | FPClassArr { fa_slots; fa_member; fa_cid; fa_cls; fa_ctor; fa_len } ->
          emit b
            (IInitFieldArr
               {
                 ia_slots = fa_slots;
                 ia_member = fa_member;
                 ia_cid = fa_cid;
                 ia_cls = fa_cls;
                 ia_ctor = fa_ctor;
                 ia_len = fa_len;
               })
      | FPScalar { fs_slots; fs_member; fs_coerce; fs_init } ->
          (* initializer evaluated and coerced before the slot lookup,
             matching the tree engine's store order *)
          compile_expr b fs_init;
          emit b
            (IInitFieldScalar
               { is_slots = fs_slots; is_member = fs_member; is_coerce = fs_coerce })
      | FPBadInit -> emit b (IRaise "bad scalar member initializer"))
    plan.cp_fields;
  (match plan.cp_body with None -> () | Some body -> compile_stmt b None body);
  emit b IReturnUnit;
  (entry, finish b)

(* Global initializer: the bare expression (no tick — the tree engine
   evaluated these outside any statement). *)
let compile_ginit (e : rexpr) : cbody =
  let b = mk_buf () in
  compile_expr b e;
  emit b IReturn;
  finish b

let compile (rp : rprogram) : cprogram =
  Telemetry.Span.with_ "bytecode" @@ fun () ->
  let total = ref 0 in
  let bodies_rev = ref [] in
  let owners_rev = ref [] in
  let nbodies = ref 0 in
  (* register a compiled body: assign its id and remember its owner so
     the profiler can attribute per-pc counts back to a name *)
  let fin ~owner ?fidx (cb : cbody) =
    total := !total + Array.length cb.b_code;
    cb.b_id <- !nbodies;
    incr nbodies;
    bodies_rev := cb :: !bodies_rev;
    owners_rev := (owner, fidx) :: !owners_rev;
    cb
  in
  let cp_funcs =
    Array.mapi
      (fun fidx (rf : rfunc) ->
        let owner = Func_id.to_string rf.rf_id in
        let kind =
          match rf.rf_code with
          | CBody s -> KBody (fin ~owner ~fidx (compile_body_stmt s))
          | CCtor plan ->
              let entry, cb = compile_ctor plan in
              KCtor { kc_body = fin ~owner ~fidx cb; kc_entry = entry }
          | CDtor -> KDtor
          | CUnknown -> KUnknown
          | CUndefined -> KUndefined
          | CMissingCtor -> KMissingCtor
        in
        {
          c_id = rf.rf_id;
          c_frame = rf.rf_frame;
          c_params = rf.rf_params;
          c_kind = kind;
        })
      rp.rp_funcs
  in
  let cp_destroy =
    Array.map
      (fun (ci : class_info) ->
        let dp = ci.ci_destroy in
        {
          cd_dtor =
            Option.map
              (fun (fsize, body) ->
                ( fsize,
                  fin
                    ~owner:(Printf.sprintf "%s::~%s" ci.ci_name ci.ci_name)
                    (compile_body_stmt body) ))
              dp.dp_dtor;
          cd_fields = dp.dp_fields;
          cd_nv_bases = dp.dp_nv_bases;
          cd_vbases_rev = ci.ci_vbases_rev;
        })
      rp.rp_classes
  in
  let cp_ginit =
    Array.map
      (fun (g : rglobal) ->
        Option.map
          (fun e ->
            fin
              ~owner:(Printf.sprintf "global-init:%s" g.rg_name)
              (compile_ginit e))
          g.rg_init)
      rp.rp_globals
  in
  Telemetry.Counter.add instrs_counter !total;
  Telemetry.Counter.add bodies_counter !nbodies;
  {
    cp_rp = rp;
    cp_funcs;
    cp_destroy;
    cp_ginit;
    cp_bodies = Array.of_list (List.rev !bodies_rev);
    cp_owners = Array.of_list (List.rev !owners_rev);
  }

(* == virtual machine ========================================================== *)

type vm = {
  cp : cprogram;
  funcs : cfunc array;
  classes : class_info array;
  destroy : cdestroy array;
  profile : Profile.t;
  globals : harray;
  statics : harray;
  output : Buffer.t;
  mutable obj_counter : int;
  mutable steps : int;
  step_limit : int;
  (* nearer of [step_limit] and the next deadline checkpoint: the hot
     tick is one compare against it, everything else is cold *)
  mutable next_stop : int;
  mutable call_depth : int;
  mutable max_call_depth : int;
  call_depth_limit : int;
  heap_object_limit : int;
  (* hot-site profiler rows, or [[||]] when profiling is off: the
     dispatch loop tests emptiness once per body entry, the call path
     once per call — one predictable branch each when disabled *)
  prof_counts : int array array;
  prof_calls : int array;
}

let empty_vals : value array = [||]

(* shared sentinel: "no profiling rows for this body" *)
let no_prof_row : int array = [||]

(* Shared scope stack for bodies that never open a destroy scope
   ([b_scoped = false] implies no [IPushScope] in the code). *)
let no_scopes : int array list ref = ref []

let fresh_obj_id vm =
  let id = vm.obj_counter in
  if id >= vm.heap_object_limit then
    limit_exceeded "object limit exceeded (%d): possible runaway allocation"
      vm.heap_object_limit;
  vm.obj_counter <- id + 1;
  id

(* Reached every [deadline_check_interval] steps, or past the step
   limit — never on the per-step fast path (same scheme, and so the
   same raising step counts, as the tree engine). *)
let[@inline never] slow_tick vm =
  if vm.steps > vm.step_limit then
    limit_exceeded "step limit exceeded (%d): possible non-termination"
      vm.step_limit;
  check_deadline ();
  vm.next_stop <- min vm.step_limit (vm.steps + deadline_check_interval)

(* [ITickN]'s cold half: [s] is the already-batched step count. *)
let[@inline never] slow_tick_n vm s =
  if s > vm.step_limit then begin
    (* the raising tick leaves the same count the tree engine did *)
    vm.steps <- vm.step_limit + 1;
    limit_exceeded "step limit exceeded (%d): possible non-termination"
      vm.step_limit
  end;
  check_deadline ();
  vm.next_stop <- min vm.step_limit (s + deadline_check_interval)

let[@inline] tick vm =
  vm.steps <- vm.steps + 1;
  if vm.steps > vm.next_stop then slow_tick vm

(* Locations on the operand stack are pointer values (see the
   instruction-set comment). *)
let loc_read = function
  | VPtr (PCell r) -> !r
  | VPtr (PArr (h, i)) -> h.cells.(i)
  | _ -> assert false

let loc_write l v =
  match l with
  | VPtr (PCell r) -> r := v
  | VPtr (PArr (h, i)) -> h.cells.(i) <- v
  | _ -> assert false

(* [Value.ptr_of_loc]'s arr_id = -1 re-wrap, applied when a location
   escapes as a pointer value. *)
let loc_to_ptr = function
  | VPtr (PArr (h, i)) when h.arr_id <> -1 ->
      VPtr (PArr ({ arr_id = -1; cells = h.cells }, i))
  | l -> l

let this_obj (frame : frame) : obj =
  match frame.this with Some o -> o | None -> assert false

let cmp_test_slow op va vb =
  match op with
  | Ast.Eq -> value_eq va vb
  | Ast.Ne -> not (value_eq va vb)
  | _ -> compare_test op va vb

(* Int-int is the overwhelmingly common case in every benchmark's loop
   conditions; dispatch on the operator directly instead of computing a
   three-way compare first. Semantically identical to the slow path. *)
let[@inline] cmp_test op va vb =
  match (va, vb) with
  | VInt x, VInt y -> (
      match op with
      | Ast.Lt -> x < y
      | Ast.Gt -> x > y
      | Ast.Le -> x <= y
      | Ast.Ge -> x >= y
      | Ast.Eq -> x = y
      | Ast.Ne -> x <> y
      | _ -> assert false)
  | _ -> cmp_test_slow op va vb

let binop_slow op va vb =
  match op with
  | Ast.Eq -> VInt (if value_eq va vb then 1 else 0)
  | Ast.Ne -> VInt (if value_eq va vb then 0 else 1)
  | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge -> compare_values op va vb
  | _ -> arith op va vb

(* Same fast path for value-producing binops; results go through the
   shared [vint] cache so loop-counter arithmetic stays off the minor
   heap. Error strings on Div/Mod match [Value.arith] exactly. *)
let[@inline] binop op va vb =
  match (va, vb) with
  | VInt x, VInt y -> (
      match op with
      | Ast.Add -> vint (x + y)
      | Ast.Sub -> vint (x - y)
      | Ast.Mul -> vint (x * y)
      | Ast.Div ->
          if y = 0 then runtime_error "division by zero" else vint (x / y)
      | Ast.Mod ->
          if y = 0 then runtime_error "modulo by zero" else vint (x mod y)
      | Ast.Lt -> if x < y then vtrue else vfalse
      | Ast.Gt -> if x > y then vtrue else vfalse
      | Ast.Le -> if x <= y then vtrue else vfalse
      | Ast.Ge -> if x >= y then vtrue else vfalse
      | Ast.Eq -> if x = y then vtrue else vfalse
      | Ast.Ne -> if x <> y then vtrue else vfalse
      | Ast.BAnd -> vint (x land y)
      | Ast.BOr -> vint (x lor y)
      | Ast.BXor -> vint (x lxor y)
      | Ast.Shl -> vint (x lsl y)
      | Ast.Shr -> vint (x asr y)
      | _ -> binop_slow op va vb)
  | _ -> binop_slow op va vb

let[@inline] incdec_new which old =
  let delta = match which with Ast.Incr -> 1 | Ast.Decr -> -1 in
  match old with
  | VInt n -> vint (n + delta)
  | VFloat f -> VFloat (f +. float_of_int delta)
  | VPtr (PArr (h, i)) -> VPtr (PArr (h, i + delta))
  | _ -> runtime_error "cannot increment this value"

(* The [a[i]] read shared by IIndex and its fused forms; [iv] is the
   already-coerced integer index. Error strings are the tree engine's. *)
let[@inline] index_read av iv =
  match av with
  | VArr h | VPtr (PArr (h, 0)) ->
      if iv < 0 || iv >= Array.length h.cells then
        runtime_error "array index %d out of bounds (size %d)" iv
          (Array.length h.cells);
      h.cells.(iv)
  | VPtr (PArr (h, off)) ->
      let j = off + iv in
      if j < 0 || j >= Array.length h.cells then
        runtime_error "array index out of bounds";
      h.cells.(j)
  | VStr s ->
      if iv < 0 || iv >= String.length s then VInt 0
      else VInt (Char.code s.[iv])
  | VNull -> runtime_error "indexing a null pointer"
  | _ -> runtime_error "indexing a non-array value"

let rec bind_params vm frame (cf : cfunc) (src : value array) base argc =
  ignore vm;
  let n = Array.length cf.c_params in
  if n <> argc then
    runtime_error "arity mismatch calling %s" (Func_id.to_string cf.c_id);
  for i = 0 to n - 1 do
    let p = cf.c_params.(i) in
    frame.locals.cells.(p.rp_slot) <-
      (if p.rp_ref then src.(base + i) (* references carry locations *)
       else coerce p.rp_coerce src.(base + i))
  done

(* Same protocol as the tree engine's [call_function]: depth guard and
   tick happen before the depth-restoring handler is installed, so a
   limit hit there leaves the depth incremented, exactly as the tree
   engine's pre-[Fun.protect] tick did. *)
and call_function vm fi ~this (src : value array) base argc : value =
  if Array.length vm.prof_calls <> 0 then
    Array.unsafe_set vm.prof_calls fi (Array.unsafe_get vm.prof_calls fi + 1);
  vm.call_depth <- vm.call_depth + 1;
  if vm.call_depth > vm.max_call_depth then
    vm.max_call_depth <- vm.call_depth;
  if vm.call_depth > vm.call_depth_limit then
    limit_exceeded "call depth limit exceeded (%d): possible runaway recursion"
      vm.call_depth_limit;
  tick vm;
  match invoke vm fi ~this src base argc with
  | v ->
      vm.call_depth <- vm.call_depth - 1;
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      vm.call_depth <- vm.call_depth - 1;
      Printexc.raise_with_backtrace e bt

and invoke vm fi ~this (src : value array) base argc : value =
  let cf = vm.funcs.(fi) in
  match cf.c_kind with
  | KBody body ->
      let frame = mk_frame cf.c_frame this in
      bind_params vm frame cf src base argc;
      exec_code vm frame body 0
  | KCtor { kc_body; kc_entry } -> (
      match this with
      | Some o ->
          run_ctor vm o cf kc_body kc_entry ~most_derived:false src base argc;
          VUnit
      | None -> runtime_error "constructor called without an object")
  | KDtor -> (
      match this with
      | Some o ->
          destroy_complete vm o;
          VUnit
      | None -> runtime_error "destructor called without an object")
  | KMissingCtor -> (
      match this with
      | Some _ ->
          (* constructor dispatch ticked before discovering the body was
             missing, as in the tree engine *)
          tick vm;
          runtime_error "missing constructor %s" (Func_id.to_string cf.c_id)
      | None -> runtime_error "constructor called without an object")
  | KUnknown ->
      runtime_error "call to unknown function %s" (Func_id.to_string cf.c_id)
  | KUndefined ->
      runtime_error "call to undefined (external) function %s"
        (Func_id.to_string cf.c_id)

and run_ctor vm (o : obj) (cf : cfunc) kc_body kc_entry ~most_derived
    (src : value array) base argc =
  tick vm;
  let frame = mk_frame cf.c_frame (Some o) in
  bind_params vm frame cf src base argc;
  ignore (exec_code vm frame kc_body (if most_derived then 0 else kc_entry))

(* Constructor dispatch without the call-depth protocol: base, virtual
   base and member-subobject constructors run at the caller's depth,
   matching the tree engine's direct [run_ctor_idx]. *)
and run_ctor_idx vm (o : obj) fi ~most_derived (src : value array) base argc =
  let cf = vm.funcs.(fi) in
  match cf.c_kind with
  | KCtor { kc_body; kc_entry } ->
      run_ctor vm o cf kc_body kc_entry ~most_derived src base argc
  | _ ->
      tick vm;
      runtime_error "missing constructor %s" (Func_id.to_string cf.c_id)

and construct_raw vm cid cls ctor (src : value array) base argc : obj =
  let id = fresh_obj_id vm in
  let o = new_obj_of vm.classes cid cls id in
  run_ctor_idx vm o ctor ~most_derived:true src base argc;
  o

and construct_journalled vm ~kind cid cls ctor (src : value array) base argc :
    obj =
  let id = fresh_obj_id vm in
  let o = new_obj_of vm.classes cid cls id in
  Profile.record_alloc vm.profile ~id ~kind ~cls ~count:1;
  run_ctor_idx vm o ctor ~most_derived:true src base argc;
  o

and destroy_complete vm (o : obj) = destroy_from vm o o.obj_cid ~most_derived:true

and destroy_from vm (o : obj) cid ~most_derived =
  tick vm;
  if cid >= 0 then begin
    let cd = vm.destroy.(cid) in
    (match cd.cd_dtor with
    | Some (fsize, body) ->
        let frame = mk_frame fsize (Some o) in
        ignore (exec_code vm frame body 0)
    | None -> ());
    (* member subobjects, reverse declaration order *)
    Array.iter
      (fun df ->
        match df with
        | DFClass slots -> (
            let s = if o.obj_cid >= 0 then slots.(o.obj_cid) else -1 in
            if s >= 0 then
              match o.fields.cells.(s) with
              | VObj sub -> destroy_complete vm sub
              | _ -> ())
        | DFClassArr slots -> (
            let s = if o.obj_cid >= 0 then slots.(o.obj_cid) else -1 in
            if s >= 0 then
              match o.fields.cells.(s) with
              | VArr h ->
                  Array.iter
                    (function VObj sub -> destroy_complete vm sub | _ -> ())
                    h.cells
              | _ -> ()))
      cd.cd_fields;
    Array.iter
      (fun bcid -> destroy_from vm o bcid ~most_derived:false)
      cd.cd_nv_bases;
    if most_derived then
      Array.iter
        (fun vcid -> destroy_from vm o vcid ~most_derived:false)
        cd.cd_vbases_rev
  end

and destroy_slots vm (locals : value array) (slots : int array) =
  Array.iter
    (fun s ->
      match locals.(s) with
      | VObj o ->
          destroy_complete vm o;
          Profile.record_free vm.profile o.obj_id;
          locals.(s) <- VUnit
      | VArr h when h.arr_id >= 0 ->
          Array.iter
            (function VObj o -> destroy_complete vm o | _ -> ())
            h.cells;
          Profile.record_free vm.profile h.arr_id;
          locals.(s) <- VUnit
      | _ -> ())
    slots

(* Unwind this invocation's destroy scopes around an in-flight
   exception: each scope's destructor failure replaces the exception
   with [Fun.Finally_raised], exactly as the nested [Fun.protect]s of
   the tree engine did. *)
and unwind_exn vm (locals : value array) scopes e =
  match !scopes with
  | [] -> e
  | slots :: rest -> (
      scopes := rest;
      match destroy_slots vm locals slots with
      | () -> unwind_exn vm locals scopes e
      | exception fe -> unwind_exn vm locals scopes (Fun.Finally_raised fe))

(* Scope destruction on the normal return path; a failure surfaces as
   [Finally_raised] and the in-loop handler unwinds the rest. *)
and ret_unwind vm (locals : value array) scopes =
  match !scopes with
  | [] -> ()
  | slots :: rest ->
      scopes := rest;
      (try destroy_slots vm locals slots
       with fe -> raise (Fun.Finally_raised fe));
      ret_unwind vm locals scopes

and exec_builtin vm (ost : value array) base (b : builtin) argc : unit =
  match (b, argc) with
  | BPrintInt, 1 ->
      Buffer.add_string vm.output (string_of_int (as_int ost.(base)))
  | BPrintChar, 1 ->
      Buffer.add_char vm.output (Char.chr (as_int ost.(base) land 255))
  | BPrintFloat, 1 ->
      Buffer.add_string vm.output (Printf.sprintf "%g" (as_float ost.(base)))
  | BPrintStr, 1 -> (
      match ost.(base) with
      | VStr s -> Buffer.add_string vm.output s
      | VNull -> runtime_error "print_str(NULL)"
      | _ -> runtime_error "bad builtin call")
  | BPrintNl, 0 -> Buffer.add_char vm.output '\n'
  | BFree, 1 -> (
      match ost.(base) with
      | VPtr (PObj o) -> Profile.record_free vm.profile o.obj_id
      | VPtr (PArr (h, _)) when h.arr_id >= 0 ->
          Profile.record_free vm.profile h.arr_id
      | VNull | VPtr _ -> ()
      | _ -> runtime_error "free of a non-pointer")
  | BAbort, 0 -> raise Abort_called
  | _ -> runtime_error "bad builtin call"

and exec_code vm (frame : frame) (b : cbody) (start : int) : value =
  let code = b.b_code in
  let ost = if b.b_omax > 0 then Array.make b.b_omax VUnit else empty_vals in
  let locals = frame.locals.cells in
  let scopes = if b.b_scoped then ref [] else no_scopes in
  let prow =
    if Array.length vm.prof_counts = 0 || b.b_id < 0 then no_prof_row
    else Array.unsafe_get vm.prof_counts b.b_id
  in
  let profiling = prow != no_prof_row in
  let rec loop pc sp : value =
    if profiling then
      Array.unsafe_set prow pc (Array.unsafe_get prow pc + 1);
    match Array.unsafe_get code pc with
    | ITick ->
        vm.steps <- vm.steps + 1;
        if vm.steps > vm.next_stop then slow_tick vm;
        loop (pc + 1) sp
    | IConst v ->
        ost.(sp) <- v;
        loop (pc + 1) (sp + 1)
    | ILoad i ->
        ost.(sp) <- Array.unsafe_get locals i;
        loop (pc + 1) (sp + 1)
    | ILoadRef i ->
        ost.(sp) <-
          (match Array.unsafe_get locals i with
          | VPtr (PCell r) -> !r
          | VPtr (PArr (h, j)) -> h.cells.(j)
          | VPtr (PObj o) -> VObj o
          | v -> v);
        loop (pc + 1) (sp + 1)
    | IGlobal i ->
        ost.(sp) <- vm.globals.cells.(i);
        loop (pc + 1) (sp + 1)
    | IStatic i ->
        ost.(sp) <- vm.statics.cells.(i);
        loop (pc + 1) (sp + 1)
    | IThis ->
        ost.(sp) <-
          (match frame.this with
          | Some o -> VPtr (PObj o)
          | None -> runtime_error "'this' outside a method");
        loop (pc + 1) (sp + 1)
    | IPop -> loop (pc + 1) (sp - 1)
    | IUnary op ->
        ost.(sp - 1) <- unary op ost.(sp - 1);
        loop (pc + 1) sp
    | IBinop op ->
        ost.(sp - 2) <- binop op ost.(sp - 2) ost.(sp - 1);
        loop (pc + 1) (sp - 1)
    | IToBool ->
        ost.(sp - 1) <- (if truthy ost.(sp - 1) then vtrue else vfalse);
        loop (pc + 1) sp
    | ICastInt ->
        (match ost.(sp - 1) with
        | VInt _ -> ()
        | v -> ost.(sp - 1) <- vint (as_int v));
        loop (pc + 1) sp
    | ICastFloat ->
        ost.(sp - 1) <- VFloat (as_float ost.(sp - 1));
        loop (pc + 1) sp
    | IField (slots, m) ->
        let o = as_obj ost.(sp - 1) in
        ost.(sp - 1) <- o.fields.cells.(field_slot o slots m);
        loop (pc + 1) sp
    | IDeref ->
        ost.(sp - 1) <-
          (match ost.(sp - 1) with
          | VPtr (PCell r) -> !r
          | VPtr (PObj o) -> VObj o
          | VPtr (PArr (h, i)) ->
              if i < 0 || i >= Array.length h.cells then
                runtime_error "pointer dereference out of bounds";
              h.cells.(i)
          | VNull -> runtime_error "null pointer dereference"
          | VStr s ->
              if String.length s > 0 then VInt (Char.code s.[0]) else VInt 0
          | _ -> runtime_error "dereference of a non-pointer");
        loop (pc + 1) sp
    | IIndex ->
        let iv = as_int ost.(sp - 1) in
        ost.(sp - 2) <-
          (match ost.(sp - 2) with
          | VArr h | VPtr (PArr (h, 0)) ->
              if iv < 0 || iv >= Array.length h.cells then
                runtime_error "array index %d out of bounds (size %d)" iv
                  (Array.length h.cells);
              h.cells.(iv)
          | VPtr (PArr (h, off)) ->
              let j = off + iv in
              if j < 0 || j >= Array.length h.cells then
                runtime_error "array index out of bounds";
              h.cells.(j)
          | VStr s ->
              if iv < 0 || iv >= String.length s then VInt 0
              else VInt (Char.code s.[iv])
          | VNull -> runtime_error "indexing a null pointer"
          | _ -> runtime_error "indexing a non-array value");
        loop (pc + 1) (sp - 1)
    | IAsObj ->
        ost.(sp - 1) <- VObj (as_obj ost.(sp - 1));
        loop (pc + 1) sp
    | IMemPtrDeref ->
        let o = as_obj ost.(sp - 2) in
        ost.(sp - 2) <-
          (match ost.(sp - 1) with
          | VMemPtr m -> o.fields.cells.(memptr_slot_of vm.classes o m)
          | VNull -> runtime_error "null member pointer dereference"
          | _ -> runtime_error ".*/->* with a non-member-pointer");
        loop (pc + 1) (sp - 1)
    | IAddrOf ->
        let l = ost.(sp - 1) in
        ost.(sp - 1) <-
          (* taking the address of an embedded object yields an object
             pointer, not a cell pointer *)
          (match loc_read l with VObj o -> VPtr (PObj o) | _ -> loc_to_ptr l);
        loop (pc + 1) sp
    | ILocLocal i ->
        ost.(sp) <- VPtr (PArr (frame.locals, i));
        loop (pc + 1) (sp + 1)
    | ILocLocalRef i ->
        ost.(sp) <-
          (match Array.unsafe_get locals i with
          | VPtr (PCell _) as p -> p
          | VPtr (PArr _) as p -> p
          | _ -> VPtr (PArr (frame.locals, i)));
        loop (pc + 1) (sp + 1)
    | ILocGlobal i ->
        ost.(sp) <- VPtr (PArr (vm.globals, i));
        loop (pc + 1) (sp + 1)
    | ILocStatic i ->
        ost.(sp) <- VPtr (PArr (vm.statics, i));
        loop (pc + 1) (sp + 1)
    | ILocField (slots, m) ->
        let o = as_obj ost.(sp - 1) in
        ost.(sp - 1) <- VPtr (PArr (o.fields, field_slot o slots m));
        loop (pc + 1) sp
    | ILocDeref ->
        ost.(sp - 1) <-
          (match ost.(sp - 1) with
          | VPtr (PCell _) as p -> p
          | VPtr (PArr _) as p -> p
          | VPtr (PObj _) ->
              runtime_error "cannot assign whole objects through a pointer"
          | VNull -> runtime_error "null pointer dereference"
          | _ -> runtime_error "dereference of a non-pointer");
        loop (pc + 1) sp
    | ILocIndex ->
        let iv = as_int ost.(sp - 1) in
        ost.(sp - 2) <-
          (match ost.(sp - 2) with
          | VArr h -> VPtr (PArr (h, iv))
          | VPtr (PArr (h, off)) -> VPtr (PArr (h, off + iv))
          | _ -> runtime_error "indexing a non-array value");
        loop (pc + 1) (sp - 1)
    | ILocMemPtr ->
        let o = as_obj ost.(sp - 2) in
        ost.(sp - 2) <-
          (match ost.(sp - 1) with
          | VMemPtr m -> VPtr (PArr (o.fields, memptr_slot_of vm.classes o m))
          | _ -> runtime_error ".*/->* with a non-member-pointer");
        loop (pc + 1) (sp - 1)
    | ILocToPtr ->
        ost.(sp - 1) <- loc_to_ptr ost.(sp - 1);
        loop (pc + 1) sp
    | IObjToPtr ->
        (match ost.(sp - 1) with
        | VObj o -> ost.(sp - 1) <- VPtr (PObj o)
        | _ -> ());
        loop (pc + 1) sp
    | IAssign ty ->
        let v = coerce ty ost.(sp - 1) in
        loc_write ost.(sp - 2) v;
        ost.(sp - 2) <- v;
        loop (pc + 1) (sp - 1)
    | ICompound (op, ty) ->
        let l = ost.(sp - 2) in
        let v = compound_op op (loc_read l) ost.(sp - 1) ty in
        loc_write l v;
        ost.(sp - 2) <- v;
        loop (pc + 1) (sp - 1)
    | IIncDec (which, fix) ->
        let l = ost.(sp - 1) in
        let old = loc_read l in
        let nv = incdec_new which old in
        loc_write l nv;
        ost.(sp - 1) <- (match fix with Ast.Prefix -> nv | Ast.Postfix -> old);
        loop (pc + 1) sp
    | IStoreLocal (i, ty) ->
        let v = coerce ty ost.(sp - 1) in
        Array.unsafe_set locals i v;
        ost.(sp - 1) <- v;
        loop (pc + 1) sp
    | IStoreLocalPop (i, ty) ->
        Array.unsafe_set locals i (coerce ty ost.(sp - 1));
        loop (pc + 1) (sp - 1)
    | IStoreRawPop i ->
        Array.unsafe_set locals i ost.(sp - 1);
        loop (pc + 1) (sp - 1)
    | IIncDecLocal (which, fix, i) ->
        let old = Array.unsafe_get locals i in
        let nv = incdec_new which old in
        Array.unsafe_set locals i nv;
        ost.(sp) <- (match fix with Ast.Prefix -> nv | Ast.Postfix -> old);
        loop (pc + 1) (sp + 1)
    | IIncDecLocalPop (which, i) ->
        Array.unsafe_set locals i (incdec_new which (Array.unsafe_get locals i));
        loop (pc + 1) sp
    | IJump t -> loop t sp
    | IJumpIfFalse t ->
        if truthy ost.(sp - 1) then loop (pc + 1) (sp - 1) else loop t (sp - 1)
    | IJumpIfTrue t ->
        if truthy ost.(sp - 1) then loop t (sp - 1) else loop (pc + 1) (sp - 1)
    | IJumpCmpFalse (op, t) ->
        if cmp_test op ost.(sp - 2) ost.(sp - 1) then loop (pc + 1) (sp - 2)
        else loop t (sp - 2)
    | IAndFalse t ->
        if truthy ost.(sp - 1) then loop (pc + 1) (sp - 1)
        else begin
          ost.(sp - 1) <- VInt 0;
          loop t sp
        end
    | IOrTrue t ->
        if truthy ost.(sp - 1) then begin
          ost.(sp - 1) <- VInt 1;
          loop t sp
        end
        else loop (pc + 1) (sp - 1)
    | IPushScope slots ->
        scopes := slots :: !scopes;
        loop (pc + 1) sp
    | IPopScope ->
        (match !scopes with
        | slots :: rest ->
            scopes := rest;
            (try destroy_slots vm locals slots
             with fe -> raise (Fun.Finally_raised fe))
        | [] -> assert false);
        loop (pc + 1) sp
    | IExitScopes n ->
        for _ = 1 to n do
          match !scopes with
          | slots :: rest ->
              scopes := rest;
              (try destroy_slots vm locals slots
               with fe -> raise (Fun.Finally_raised fe))
          | [] -> assert false
        done;
        loop (pc + 1) sp
    | IReturn ->
        let v = ost.(sp - 1) in
        if b.b_scoped then ret_unwind vm locals scopes;
        v
    | IReturnUnit ->
        if b.b_scoped then ret_unwind vm locals scopes;
        VUnit
    | IRaise msg -> runtime_error "%s" msg
    | INewObj { n_cid; n_cls; n_ctor; n_argc } ->
        let base = sp - n_argc in
        let o =
          construct_journalled vm ~kind:Profile.Heap n_cid n_cls n_ctor ost base
            n_argc
        in
        ost.(base) <- VPtr (PObj o);
        loop (pc + 1) (base + 1)
    | INewScalar (bytes, ty) ->
        ignore (Profile.record_scalar_alloc vm.profile ~bytes);
        ost.(sp) <- VPtr (PArr ({ arr_id = -1; cells = [| default_value ty |] }, 0));
        loop (pc + 1) (sp + 1)
    | INewArrObj { w_cid; w_cls; w_ctor } ->
        let n = as_int ost.(sp - 1) in
        if n < 0 then runtime_error "negative array size in new[]";
        let id = fresh_obj_id vm in
        Profile.record_alloc vm.profile ~id ~kind:Profile.HeapArray ~cls:w_cls
          ~count:n;
        let cells =
          Array.init n (fun _ ->
              VObj (construct_raw vm w_cid w_cls w_ctor empty_vals 0 0))
        in
        ost.(sp - 1) <- VPtr (PArr ({ arr_id = id; cells }, 0));
        loop (pc + 1) sp
    | INewArrScalar (ty, elem_bytes) ->
        let n = as_int ost.(sp - 1) in
        if n < 0 then runtime_error "negative array size in new[]";
        let id = Profile.record_scalar_alloc vm.profile ~bytes:(n * elem_bytes) in
        let cells = Array.init n (fun _ -> default_value ty) in
        ost.(sp - 1) <- VPtr (PArr ({ arr_id = id; cells }, 0));
        loop (pc + 1) sp
    | IDelete ->
        (match ost.(sp - 1) with
        | VNull -> ()
        | VPtr (PObj o) ->
            destroy_complete vm o;
            Profile.record_free vm.profile o.obj_id
        | VPtr (PArr (h, _)) ->
            Array.iter
              (function VObj o -> destroy_complete vm o | _ -> ())
              h.cells;
            if h.arr_id >= 0 then Profile.record_free vm.profile h.arr_id
        | _ -> runtime_error "delete of a non-pointer value");
        loop (pc + 1) (sp - 1)
    | IDeclScalar (slot, ty) ->
        Array.unsafe_set locals slot (default_value ty);
        loop (pc + 1) sp
    | IDeclStackArr { ds_slot; ds_cid; ds_cls; ds_ctor; ds_len } ->
        let id = fresh_obj_id vm in
        Profile.record_alloc vm.profile ~id ~kind:Profile.Stack ~cls:ds_cls
          ~count:ds_len;
        let cells =
          Array.init ds_len (fun _ ->
              VObj (construct_raw vm ds_cid ds_cls ds_ctor empty_vals 0 0))
        in
        locals.(ds_slot) <- VArr { arr_id = id; cells };
        loop (pc + 1) sp
    | IDeclCtor { dc_slot; dc_cid; dc_cls; dc_ctor; dc_argc } ->
        let base = sp - dc_argc in
        let o =
          construct_journalled vm ~kind:Profile.Stack dc_cid dc_cls dc_ctor ost
            base dc_argc
        in
        locals.(dc_slot) <- VObj o;
        loop (pc + 1) base
    | IBuiltin (bi, argc) ->
        let base = sp - argc in
        exec_builtin vm ost base bi argc;
        ost.(base) <- VUnit;
        loop (pc + 1) (base + 1)
    | ICallFunc (fi, argc) ->
        let base = sp - argc in
        let v = call_function vm fi ~this:None ost base argc in
        ost.(base) <- v;
        loop (pc + 1) (base + 1)
    | ICallMethod { m_func; m_argc; m_arrow } ->
        let base = sp - m_argc in
        let v =
          match ost.(base - 1) with
          | VNull when m_arrow -> runtime_error "method call on null pointer"
          | VObj o | VPtr (PObj o) ->
              call_function vm m_func ~this:(Some o) ost base m_argc
          | _ ->
              (* static member function *)
              call_function vm m_func ~this:None ost base m_argc
        in
        ost.(base - 1) <- v;
        loop (pc + 1) base
    | ICallVirtual { v_name; v_table; v_argc } ->
        let base = sp - v_argc in
        let v =
          match ost.(base - 1) with
          | VObj o | VPtr (PObj o) ->
              let fi = if o.obj_cid >= 0 then v_table.(o.obj_cid) else -1 in
              if fi >= 0 then call_function vm fi ~this:(Some o) ost base v_argc
              else
                runtime_error "no virtual target for %s::%s" o.obj_class v_name
          | VNull -> runtime_error "virtual call on null pointer"
          | _ -> runtime_error "virtual call on a non-object"
        in
        ost.(base - 1) <- v;
        loop (pc + 1) base
    | ICallFunPtr argc ->
        let base = sp - argc in
        let v =
          match ost.(base - 1) with
          | VFunPtr id -> (
              let this =
                match id with Func_id.FMethod _ -> frame.this | _ -> None
              in
              match Hashtbl.find_opt vm.cp.cp_rp.rp_func_idx id with
              | Some fi -> call_function vm fi ~this ost base argc
              | None ->
                  runtime_error "call to unknown function %s"
                    (Func_id.to_string id))
          | VNull -> runtime_error "call through a null function pointer"
          | _ -> runtime_error "call through a non-function value"
        in
        ost.(base - 1) <- v;
        loop (pc + 1) base
    | ICallCtor (fi, argc) ->
        let base = sp - argc in
        run_ctor_idx vm (this_obj frame) fi ~most_derived:false ost base argc;
        loop (pc + 1) base
    | IInitField { if_slots; if_member; if_cid; if_cls; if_ctor; if_argc } ->
        let base = sp - if_argc in
        let o = this_obj frame in
        let sub = construct_raw vm if_cid if_cls if_ctor ost base if_argc in
        o.fields.cells.(field_slot o if_slots if_member) <- VObj sub;
        loop (pc + 1) base
    | IInitFieldArr { ia_slots; ia_member; ia_cid; ia_cls; ia_ctor; ia_len } ->
        let o = this_obj frame in
        let cells =
          Array.init ia_len (fun _ ->
              VObj (construct_raw vm ia_cid ia_cls ia_ctor empty_vals 0 0))
        in
        o.fields.cells.(field_slot o ia_slots ia_member) <-
          VArr { arr_id = -1; cells };
        loop (pc + 1) sp
    | IInitFieldScalar { is_slots; is_member; is_coerce } ->
        let v = coerce is_coerce ost.(sp - 1) in
        let o = this_obj frame in
        o.fields.cells.(field_slot o is_slots is_member) <- v;
        loop (pc + 1) (sp - 1)
    (* superinstructions: each arm is the exact concatenation of its
       parts' arms — same evaluation order, ticks and errors *)
    | ILoadField (i, slots, m) ->
        let o = as_obj (Array.get locals i) in
        ost.(sp) <- o.fields.cells.(field_slot o slots m);
        loop (pc + 1) (sp + 1)
    | ITickLoad i ->
        tick vm;
        ost.(sp) <- Array.get locals i;
        loop (pc + 1) (sp + 1)
    | ITickLoadField (i, slots, m) ->
        tick vm;
        let o = as_obj (Array.get locals i) in
        ost.(sp) <- o.fields.cells.(field_slot o slots m);
        loop (pc + 1) (sp + 1)
    | IThisField (slots, m) ->
        (match frame.this with
        | Some o -> ost.(sp) <- o.fields.cells.(field_slot o slots m)
        | None -> runtime_error "'this' outside a method");
        loop (pc + 1) (sp + 1)
    | IIndexField (slots, m) ->
        let iv = as_int ost.(sp - 1) in
        let elem =
          match ost.(sp - 2) with
          | VArr h | VPtr (PArr (h, 0)) ->
              if iv < 0 || iv >= Array.length h.cells then
                runtime_error "array index %d out of bounds (size %d)" iv
                  (Array.length h.cells);
              h.cells.(iv)
          | VPtr (PArr (h, off)) ->
              let j = off + iv in
              if j < 0 || j >= Array.length h.cells then
                runtime_error "array index out of bounds";
              h.cells.(j)
          | VStr s ->
              if iv < 0 || iv >= String.length s then VInt 0
              else VInt (Char.code s.[iv])
          | VNull -> runtime_error "indexing a null pointer"
          | _ -> runtime_error "indexing a non-array value"
        in
        let o = as_obj elem in
        ost.(sp - 2) <- o.fields.cells.(field_slot o slots m);
        loop (pc + 1) (sp - 1)
    | ILoadIndex i ->
        let iv = as_int (Array.get locals i) in
        ost.(sp - 1) <-
          (match ost.(sp - 1) with
          | VArr h | VPtr (PArr (h, 0)) ->
              if iv < 0 || iv >= Array.length h.cells then
                runtime_error "array index %d out of bounds (size %d)" iv
                  (Array.length h.cells);
              h.cells.(iv)
          | VPtr (PArr (h, off)) ->
              let j = off + iv in
              if j < 0 || j >= Array.length h.cells then
                runtime_error "array index out of bounds";
              h.cells.(j)
          | VStr s ->
              if iv < 0 || iv >= String.length s then VInt 0
              else VInt (Char.code s.[iv])
          | VNull -> runtime_error "indexing a null pointer"
          | _ -> runtime_error "indexing a non-array value");
        loop (pc + 1) sp
    | ILoadLocField (i, slots, m) ->
        let o = as_obj (Array.get locals i) in
        ost.(sp) <- VPtr (PArr (o.fields, field_slot o slots m));
        loop (pc + 1) (sp + 1)
    | IFieldBinop (slots, m, op) ->
        let o = as_obj ost.(sp - 1) in
        ost.(sp - 2) <-
          binop op ost.(sp - 2) o.fields.cells.(field_slot o slots m);
        loop (pc + 1) (sp - 1)
    | ILoadFieldBinop (i, slots, m, op) ->
        let o = as_obj (Array.get locals i) in
        ost.(sp - 1) <-
          binop op ost.(sp - 1) o.fields.cells.(field_slot o slots m);
        loop (pc + 1) sp
    | IBinopConst (op, v) ->
        ost.(sp - 1) <- binop op ost.(sp - 1) v;
        loop (pc + 1) sp
    | ITickN n ->
        let s = vm.steps + n in
        if s > vm.next_stop then slow_tick_n vm s;
        vm.steps <- s;
        loop (pc + 1) sp
    | ITickPushScope slots ->
        tick vm;
        scopes := slots :: !scopes;
        loop (pc + 1) sp
    | IAssignPop ty ->
        let v = coerce ty ost.(sp - 1) in
        loc_write ost.(sp - 2) v;
        loop (pc + 1) (sp - 2)
    | IStoreLocalPopT (i, ty) ->
        Array.set locals i (coerce ty ost.(sp - 1));
        tick vm;
        loop (pc + 1) (sp - 1)
    | IStoreLocalPopJump (i, ty, t) ->
        Array.set locals i (coerce ty ost.(sp - 1));
        loop t (sp - 1)
    | IIncDecLocalJump (w, i, t) ->
        Array.set locals i (incdec_new w (Array.get locals i));
        loop t sp
    | IJumpIfFalseT t ->
        if truthy ost.(sp - 1) then begin
          tick vm;
          loop (pc + 1) (sp - 1)
        end
        else loop t (sp - 1)
    | IJumpCmpFalseT (op, t) ->
        if cmp_test op ost.(sp - 2) ost.(sp - 1) then begin
          tick vm;
          loop (pc + 1) (sp - 2)
        end
        else loop t (sp - 2)
    | IJumpCmpConstFalse (op, v, t) ->
        if cmp_test op ost.(sp - 1) v then loop (pc + 1) (sp - 1)
        else loop t (sp - 1)
    | IJumpCmpConstFalseT (op, v, t) ->
        if cmp_test op ost.(sp - 1) v then begin
          tick vm;
          loop (pc + 1) (sp - 1)
        end
        else loop t (sp - 1)
    | IJumpLocCmpConstFalse (i, op, v, t) ->
        if cmp_test op (Array.get locals i) v then loop (pc + 1) sp
        else loop t sp
    | IJumpLocCmpConstFalseT (i, op, v, t) ->
        if cmp_test op (Array.get locals i) v then begin
          tick vm;
          loop (pc + 1) sp
        end
        else loop t sp
    | IJumpLocCmpFalse (op, i, t) ->
        if cmp_test op ost.(sp - 1) (Array.get locals i) then
          loop (pc + 1) (sp - 1)
        else loop t (sp - 1)
    | IJumpLocCmpFalseT (op, i, t) ->
        if cmp_test op ost.(sp - 1) (Array.get locals i) then begin
          tick vm;
          loop (pc + 1) (sp - 1)
        end
        else loop t (sp - 1)
    | IJumpLoc2CmpFalse (op, x, y, t) ->
        if cmp_test op (Array.get locals x) (Array.get locals y) then
          loop (pc + 1) sp
        else loop t sp
    | IJumpLoc2CmpFalseT (op, x, y, t) ->
        if cmp_test op (Array.get locals x) (Array.get locals y) then begin
          tick vm;
          loop (pc + 1) sp
        end
        else loop t sp
    | ITickLoadFieldStore (i, slots, m, j, ty) ->
        tick vm;
        let o = as_obj (Array.get locals i) in
        Array.set locals j (coerce ty o.fields.cells.(field_slot o slots m));
        loop (pc + 1) sp
    | ITickLoadFieldStoreJump (i, slots, m, j, ty, t) ->
        tick vm;
        let o = as_obj (Array.get locals i) in
        Array.set locals j (coerce ty o.fields.cells.(field_slot o slots m));
        loop t sp
    | ILoadBinopConst (i, op, v) ->
        ost.(sp) <- binop op (Array.get locals i) v;
        loop (pc + 1) (sp + 1)
    | ILoadFieldBC (i, slots, m, op, v) ->
        let o = as_obj (Array.get locals i) in
        ost.(sp) <- binop op o.fields.cells.(field_slot o slots m) v;
        loop (pc + 1) (sp + 1)
    | ILoadFieldLoadBC (i, slots, m, j, op, v) ->
        let o = as_obj (Array.get locals i) in
        ost.(sp) <- o.fields.cells.(field_slot o slots m);
        ost.(sp + 1) <- binop op (Array.get locals j) v;
        loop (pc + 1) (sp + 2)
    | IFieldIdxField (i, slots, m, j, op, v, s2, m2) ->
        let o = as_obj (Array.get locals i) in
        let av = o.fields.cells.(field_slot o slots m) in
        let iv = as_int (binop op (Array.get locals j) v) in
        let eo = as_obj (index_read av iv) in
        ost.(sp) <- eo.fields.cells.(field_slot eo s2 m2);
        loop (pc + 1) (sp + 1)
    | ILoadFieldBinop2 (i, slots, m, op1, op2) ->
        let o = as_obj (Array.get locals i) in
        ost.(sp - 2) <-
          binop op2 ost.(sp - 2)
            (binop op1 ost.(sp - 1) o.fields.cells.(field_slot o slots m));
        loop (pc + 1) (sp - 1)
    | IBinopAssignPop (op, ty) ->
        let v = coerce ty (binop op ost.(sp - 2) ost.(sp - 1)) in
        loc_write ost.(sp - 3) v;
        loop (pc + 1) (sp - 3)
    | ITickThisField (slots, m) ->
        tick vm;
        (match frame.this with
        | Some o -> ost.(sp) <- o.fields.cells.(field_slot o slots m)
        | None -> runtime_error "'this' outside a method");
        loop (pc + 1) (sp + 1)
    | ILoad2FieldBinop (i, j, slots, m, op) ->
        let o = as_obj (Array.get locals j) in
        ost.(sp) <-
          binop op (Array.get locals i) o.fields.cells.(field_slot o slots m);
        loop (pc + 1) (sp + 1)
    | ILoadLoadField (i, j, slots, m) ->
        ost.(sp) <- Array.get locals i;
        let o = as_obj (Array.get locals j) in
        ost.(sp + 1) <- o.fields.cells.(field_slot o slots m);
        loop (pc + 1) (sp + 2)
    | ILocFieldLoadField (s1, m1, j, s2, m2) ->
        let o = as_obj ost.(sp - 1) in
        ost.(sp - 1) <- VPtr (PArr (o.fields, field_slot o s1 m1));
        let o2 = as_obj (Array.get locals j) in
        ost.(sp) <- o2.fields.cells.(field_slot o2 s2 m2);
        loop (pc + 1) (sp + 1)
    | IStoreTLoadField (i, ty, j, slots, m) ->
        Array.set locals i (coerce ty ost.(sp - 1));
        tick vm;
        let o = as_obj (Array.get locals j) in
        ost.(sp - 1) <- o.fields.cells.(field_slot o slots m);
        loop (pc + 1) sp
    | ITickLoadFieldIndex (a, slots, m, i) ->
        tick vm;
        let o = as_obj (Array.get locals a) in
        let av = o.fields.cells.(field_slot o slots m) in
        let iv = as_int (Array.get locals i) in
        ost.(sp) <- index_read av iv;
        loop (pc + 1) (sp + 1)
    | ITLFIndexStoreT (a, slots, m, i, x, ty) ->
        tick vm;
        let o = as_obj (Array.get locals a) in
        let av = o.fields.cells.(field_slot o slots m) in
        let iv = as_int (Array.get locals i) in
        Array.set locals x (coerce ty (index_read av iv));
        tick vm;
        loop (pc + 1) sp
    | ITickLoadFieldCmpLocFalse (j, slots, m, op, n, t) ->
        tick vm;
        let o = as_obj (Array.get locals j) in
        if cmp_test op o.fields.cells.(field_slot o slots m) (Array.get locals n)
        then loop (pc + 1) sp
        else loop t sp
    | ITickLoadFieldCmpLocFalseT (j, slots, m, op, n, t) ->
        tick vm;
        let o = as_obj (Array.get locals j) in
        if cmp_test op o.fields.cells.(field_slot o slots m) (Array.get locals n)
        then begin
          tick vm;
          loop (pc + 1) sp
        end
        else loop t sp
    | IBinopConstAndFalse (op, v, t) ->
        if truthy (binop op ost.(sp - 1) v) then loop (pc + 1) (sp - 1)
        else begin
          ost.(sp - 1) <- VInt 0;
          loop t sp
        end
    | IJumpIfFalseTPushScope (t, slots) ->
        if truthy ost.(sp - 1) then begin
          tick vm;
          scopes := slots :: !scopes;
          loop (pc + 1) (sp - 1)
        end
        else loop t (sp - 1)
    | ILoadFieldBinopJumpFalse (i, slots, m, op, t) ->
        let o = as_obj (Array.get locals i) in
        if truthy (binop op ost.(sp - 1) o.fields.cells.(field_slot o slots m))
        then loop (pc + 1) (sp - 1)
        else loop t (sp - 1)
    | ILoadFieldBinopJumpFalseT (i, slots, m, op, t) ->
        let o = as_obj (Array.get locals i) in
        if truthy (binop op ost.(sp - 1) o.fields.cells.(field_slot o slots m))
        then begin
          tick vm;
          loop (pc + 1) (sp - 1)
        end
        else loop t (sp - 1)
    | IJumpBCCmpFalse (op1, v, op2, t) ->
        let rhs = binop op1 ost.(sp - 1) v in
        if cmp_test op2 ost.(sp - 2) rhs then loop (pc + 1) (sp - 2)
        else loop t (sp - 2)
    | IJumpBCCmpFalseT (op1, v, op2, t) ->
        let rhs = binop op1 ost.(sp - 1) v in
        if cmp_test op2 ost.(sp - 2) rhs then begin
          tick vm;
          loop (pc + 1) (sp - 2)
        end
        else loop t (sp - 2)
    | IBinopLoadField (op, j, slots, m) ->
        ost.(sp - 2) <- binop op ost.(sp - 2) ost.(sp - 1);
        let o = as_obj (Array.get locals j) in
        ost.(sp - 1) <- o.fields.cells.(field_slot o slots m);
        loop (pc + 1) sp
    | IBinop2 (op1, op2) ->
        ost.(sp - 3) <-
          binop op2 ost.(sp - 3) (binop op1 ost.(sp - 2) ost.(sp - 1));
        loop (pc + 1) (sp - 2)
    | IThisFieldBinop (slots, m, op) ->
        (match frame.this with
        | Some o ->
            ost.(sp - 1) <-
              binop op ost.(sp - 1) o.fields.cells.(field_slot o slots m)
        | None -> runtime_error "'this' outside a method");
        loop (pc + 1) sp
    | IFieldBinop2AssignPop (i, slots, m, op1, op2, ty) ->
        let o = as_obj (Array.get locals i) in
        let v =
          coerce ty
            (binop op2 ost.(sp - 2)
               (binop op1 ost.(sp - 1) o.fields.cells.(field_slot o slots m)))
        in
        loc_write ost.(sp - 3) v;
        loop (pc + 1) (sp - 3)
    | IBinop2AssignPop (op1, op2, ty) ->
        let v =
          coerce ty
            (binop op2 ost.(sp - 3) (binop op1 ost.(sp - 2) ost.(sp - 1)))
        in
        loc_write ost.(sp - 4) v;
        loop (pc + 1) (sp - 4)
    | IConstFieldBinop2 (v, i, slots, m, op1, op2) ->
        let o = as_obj (Array.get locals i) in
        ost.(sp - 1) <-
          binop op2 ost.(sp - 1)
            (binop op1 v o.fields.cells.(field_slot o slots m));
        loop (pc + 1) sp
    | ILoadLocFieldLoadField (i, slots, m, j, s2, m2) ->
        let o = as_obj (Array.get locals i) in
        ost.(sp) <- VPtr (PArr (o.fields, field_slot o slots m));
        let o2 = as_obj (Array.get locals j) in
        ost.(sp + 1) <- o2.fields.cells.(field_slot o2 s2 m2);
        loop (pc + 1) (sp + 2)
    | ILoadFieldBCAndFalse (i, slots, m, op, v, t) ->
        let o = as_obj (Array.get locals i) in
        if truthy (binop op o.fields.cells.(field_slot o slots m) v) then
          loop (pc + 1) sp
        else begin
          ost.(sp) <- VInt 0;
          loop t (sp + 1)
        end
    | IJumpLocFCmpFalse (i, j, slots, m, op, t) ->
        let o = as_obj (Array.get locals j) in
        if cmp_test op (Array.get locals i) o.fields.cells.(field_slot o slots m)
        then loop (pc + 1) sp
        else loop t sp
    | IJumpLocFCmpFalseT (i, j, slots, m, op, t) ->
        let o = as_obj (Array.get locals j) in
        if cmp_test op (Array.get locals i) o.fields.cells.(field_slot o slots m)
        then begin
          tick vm;
          loop (pc + 1) sp
        end
        else loop t sp
    | IJumpLL2FBCCmpFalse (i, j, slots, m, op1, v, op2, t) ->
        let o = as_obj (Array.get locals j) in
        let rhs = binop op1 o.fields.cells.(field_slot o slots m) v in
        if cmp_test op2 (Array.get locals i) rhs then loop (pc + 1) sp
        else loop t sp
    | IJumpLL2FBCCmpFalseT (i, j, slots, m, op1, v, op2, t) ->
        let o = as_obj (Array.get locals j) in
        let rhs = binop op1 o.fields.cells.(field_slot o slots m) v in
        if cmp_test op2 (Array.get locals i) rhs then begin
          tick vm;
          loop (pc + 1) sp
        end
        else loop t sp
    | IScanStep (j, slots, m, op, n, a, s2, m2, bdst, ty, tback) ->
        tick vm;
        let o = as_obj (Array.get locals j) in
        if cmp_test op o.fields.cells.(field_slot o slots m) (Array.get locals n)
        then begin
          tick vm;
          loop (pc + 1) sp
        end
        else begin
          tick vm;
          let o2 = as_obj (Array.get locals a) in
          Array.set locals bdst
            (coerce ty o2.fields.cells.(field_slot o2 s2 m2));
          loop tback sp
        end
    | ILoopScan (x, op0, v0, texit0, j, slots, m, op, n, a, s2, m2, bdst, ty)
      ->
        let rec scan () =
          if cmp_test op0 (Array.get locals x) v0 then begin
            tick vm;
            tick vm;
            let o = as_obj (Array.get locals j) in
            if
              cmp_test op
                o.fields.cells.(field_slot o slots m)
                (Array.get locals n)
            then begin
              tick vm;
              -1
            end
            else begin
              tick vm;
              let o2 = as_obj (Array.get locals a) in
              Array.set locals bdst
                (coerce ty o2.fields.cells.(field_slot o2 s2 m2));
              (* profiled count = guard evaluations, one per iteration:
                 the whole loop runs in this single dispatch, and a
                 count of 1 would hide exactly the hot loops the
                 profiler exists to surface *)
              if profiling then
                Array.unsafe_set prow pc (Array.unsafe_get prow pc + 1);
              scan ()
            end
          end
          else texit0
        in
        let t = scan () in
        if t >= 0 then loop t sp else loop (pc + 2) sp
  in
  if not b.b_scoped then loop start 0
  else
    try loop start 0
    with e ->
      let bt = Printexc.get_raw_backtrace () in
      let e = unwind_exn vm locals scopes e in
      Printexc.raise_with_backtrace e bt

(* -- entry points -------------------------------------------------------------- *)

let make_profiler (cp : cprogram) : Vm_profile.t =
  Vm_profile.create
    ~body_sizes:(Array.map (fun b -> Array.length b.b_code) cp.cp_bodies)
    ~nfuncs:(Array.length cp.cp_funcs)

let make_vm ?(dead = Member.Set.empty) ?profiler ~step_limit ~call_depth_limit
    ~heap_object_limit (cp : cprogram) : vm =
  let rp = cp.cp_rp in
  let prof_counts, prof_calls =
    match profiler with
    | None -> ([||], [||])
    | Some (p : Vm_profile.t) -> (p.Vm_profile.body_counts, p.Vm_profile.call_counts)
  in
  {
    cp;
    funcs = cp.cp_funcs;
    classes = rp.rp_classes;
    destroy = cp.cp_destroy;
    profile = Profile.create ~dead rp.rp_table;
    globals =
      { arr_id = -1; cells = Array.make (Array.length rp.rp_globals) VUnit };
    statics = { arr_id = -1; cells = Array.map default_value rp.rp_static_tys };
    output = Buffer.create 256;
    obj_counter = 0;
    steps = 0;
    step_limit = max 1 step_limit;
    next_stop = min (max 1 step_limit) deadline_check_interval;
    call_depth = 0;
    max_call_depth = 0;
    call_depth_limit = max 1 call_depth_limit;
    heap_object_limit = max 1 heap_object_limit;
    prof_counts;
    prof_calls;
  }

let execute (vm : vm) : value =
  let cp = vm.cp in
  let rp = cp.cp_rp in
  (* native resource exhaustion becomes a structured limit error, as in
     the tree engine *)
  try
    (* globals, in declaration order *)
    Array.iteri
      (fun i (g : rglobal) ->
        vm.globals.cells.(i) <-
          (match cp.cp_ginit.(i) with
          | Some body ->
              coerce g.rg_coerce (exec_code vm (mk_frame 0 None) body 0)
          | None -> default_value g.rg_default))
      rp.rp_globals;
    (try call_function vm rp.rp_main ~this:None empty_vals 0 0
     with Abort_called -> VInt 134)
  with
  | Stack_overflow ->
      limit_exceeded "interpreter stack exhausted (call depth limit %d)"
        vm.call_depth_limit
  | Out_of_memory ->
      limit_exceeded "interpreter heap exhausted (object limit %d)"
        vm.heap_object_limit

let output vm = Buffer.contents vm.output
let steps vm = vm.steps
let allocations vm = vm.obj_counter
let max_call_depth vm = vm.max_call_depth
let profile vm = vm.profile

(* == hot-site profiler report ================================================= *)

let mnemonic (i : instr) : string =
  match i with
  | IConst _ -> "IConst"
  | ILoad _ -> "ILoad"
  | ILoadRef _ -> "ILoadRef"
  | IGlobal _ -> "IGlobal"
  | IStatic _ -> "IStatic"
  | IThis -> "IThis"
  | IPop -> "IPop"
  | IUnary _ -> "IUnary"
  | IBinop _ -> "IBinop"
  | IToBool -> "IToBool"
  | ICastInt -> "ICastInt"
  | ICastFloat -> "ICastFloat"
  | IField _ -> "IField"
  | IDeref -> "IDeref"
  | IIndex -> "IIndex"
  | IAsObj -> "IAsObj"
  | IMemPtrDeref -> "IMemPtrDeref"
  | IAddrOf -> "IAddrOf"
  | ILocLocal _ -> "ILocLocal"
  | ILocLocalRef _ -> "ILocLocalRef"
  | ILocGlobal _ -> "ILocGlobal"
  | ILocStatic _ -> "ILocStatic"
  | ILocField _ -> "ILocField"
  | ILocDeref -> "ILocDeref"
  | ILocIndex -> "ILocIndex"
  | ILocMemPtr -> "ILocMemPtr"
  | ILocToPtr -> "ILocToPtr"
  | IObjToPtr -> "IObjToPtr"
  | IAssign _ -> "IAssign"
  | ICompound _ -> "ICompound"
  | IIncDec _ -> "IIncDec"
  | IStoreLocal _ -> "IStoreLocal"
  | IStoreLocalPop _ -> "IStoreLocalPop"
  | IStoreRawPop _ -> "IStoreRawPop"
  | IIncDecLocal _ -> "IIncDecLocal"
  | IIncDecLocalPop _ -> "IIncDecLocalPop"
  | IJump _ -> "IJump"
  | IJumpIfFalse _ -> "IJumpIfFalse"
  | IJumpIfTrue _ -> "IJumpIfTrue"
  | IJumpCmpFalse _ -> "IJumpCmpFalse"
  | IAndFalse _ -> "IAndFalse"
  | IOrTrue _ -> "IOrTrue"
  | ITick -> "ITick"
  | IPushScope _ -> "IPushScope"
  | IPopScope -> "IPopScope"
  | IExitScopes _ -> "IExitScopes"
  | IReturn -> "IReturn"
  | IReturnUnit -> "IReturnUnit"
  | IRaise _ -> "IRaise"
  | INewObj _ -> "INewObj"
  | INewScalar _ -> "INewScalar"
  | INewArrObj _ -> "INewArrObj"
  | INewArrScalar _ -> "INewArrScalar"
  | IDelete -> "IDelete"
  | IDeclScalar _ -> "IDeclScalar"
  | IDeclStackArr _ -> "IDeclStackArr"
  | IDeclCtor _ -> "IDeclCtor"
  | IBuiltin _ -> "IBuiltin"
  | ICallFunc _ -> "ICallFunc"
  | ICallMethod _ -> "ICallMethod"
  | ICallVirtual _ -> "ICallVirtual"
  | ICallFunPtr _ -> "ICallFunPtr"
  | ICallCtor _ -> "ICallCtor"
  | IInitField _ -> "IInitField"
  | IInitFieldArr _ -> "IInitFieldArr"
  | IInitFieldScalar _ -> "IInitFieldScalar"
  | ILoadField _ -> "ILoadField"
  | ITickLoad _ -> "ITickLoad"
  | ITickLoadField _ -> "ITickLoadField"
  | IThisField _ -> "IThisField"
  | IIndexField _ -> "IIndexField"
  | ILoadLocField _ -> "ILoadLocField"
  | ILoadIndex _ -> "ILoadIndex"
  | IFieldBinop _ -> "IFieldBinop"
  | ILoadFieldBinop _ -> "ILoadFieldBinop"
  | IBinopConst _ -> "IBinopConst"
  | ITickN _ -> "ITickN"
  | ITickPushScope _ -> "ITickPushScope"
  | IAssignPop _ -> "IAssignPop"
  | IStoreLocalPopT _ -> "IStoreLocalPopT"
  | IStoreLocalPopJump _ -> "IStoreLocalPopJump"
  | IIncDecLocalJump _ -> "IIncDecLocalJump"
  | IJumpIfFalseT _ -> "IJumpIfFalseT"
  | IJumpCmpFalseT _ -> "IJumpCmpFalseT"
  | IJumpCmpConstFalse _ -> "IJumpCmpConstFalse"
  | IJumpCmpConstFalseT _ -> "IJumpCmpConstFalseT"
  | IJumpLocCmpConstFalse _ -> "IJumpLocCmpConstFalse"
  | IJumpLocCmpConstFalseT _ -> "IJumpLocCmpConstFalseT"
  | IJumpLocCmpFalse _ -> "IJumpLocCmpFalse"
  | IJumpLocCmpFalseT _ -> "IJumpLocCmpFalseT"
  | IJumpLoc2CmpFalse _ -> "IJumpLoc2CmpFalse"
  | IJumpLoc2CmpFalseT _ -> "IJumpLoc2CmpFalseT"
  | ITickLoadFieldStore _ -> "ITickLoadFieldStore"
  | ITickLoadFieldStoreJump _ -> "ITickLoadFieldStoreJump"
  | ILoadBinopConst _ -> "ILoadBinopConst"
  | ILoadFieldBC _ -> "ILoadFieldBC"
  | ILoadFieldLoadBC _ -> "ILoadFieldLoadBC"
  | IFieldIdxField _ -> "IFieldIdxField"
  | ILoadFieldBinop2 _ -> "ILoadFieldBinop2"
  | IBinopAssignPop _ -> "IBinopAssignPop"
  | ITickThisField _ -> "ITickThisField"
  | ILoad2FieldBinop _ -> "ILoad2FieldBinop"
  | ILoadLoadField _ -> "ILoadLoadField"
  | ILocFieldLoadField _ -> "ILocFieldLoadField"
  | IStoreTLoadField _ -> "IStoreTLoadField"
  | ITickLoadFieldIndex _ -> "ITickLoadFieldIndex"
  | ITLFIndexStoreT _ -> "ITLFIndexStoreT"
  | ITickLoadFieldCmpLocFalse _ -> "ITickLoadFieldCmpLocFalse"
  | ITickLoadFieldCmpLocFalseT _ -> "ITickLoadFieldCmpLocFalseT"
  | IBinopConstAndFalse _ -> "IBinopConstAndFalse"
  | IJumpIfFalseTPushScope _ -> "IJumpIfFalseTPushScope"
  | ILoadFieldBinopJumpFalse _ -> "ILoadFieldBinopJumpFalse"
  | ILoadFieldBinopJumpFalseT _ -> "ILoadFieldBinopJumpFalseT"
  | IJumpBCCmpFalse _ -> "IJumpBCCmpFalse"
  | IJumpBCCmpFalseT _ -> "IJumpBCCmpFalseT"
  | IScanStep _ -> "IScanStep"
  | ILoopScan _ -> "ILoopScan"
  | IBinopLoadField _ -> "IBinopLoadField"
  | IBinop2 _ -> "IBinop2"
  | IThisFieldBinop _ -> "IThisFieldBinop"
  | IFieldBinop2AssignPop _ -> "IFieldBinop2AssignPop"
  | IBinop2AssignPop _ -> "IBinop2AssignPop"
  | IConstFieldBinop2 _ -> "IConstFieldBinop2"
  | ILoadLocFieldLoadField _ -> "ILoadLocFieldLoadField"
  | ILoadFieldBCAndFalse _ -> "ILoadFieldBCAndFalse"
  | IJumpLocFCmpFalse _ -> "IJumpLocFCmpFalse"
  | IJumpLocFCmpFalseT _ -> "IJumpLocFCmpFalseT"
  | IJumpLL2FBCCmpFalse _ -> "IJumpLL2FBCCmpFalse"
  | IJumpLL2FBCCmpFalseT _ -> "IJumpLL2FBCCmpFalseT"

(* The branch target carried by an instruction, for back-branch (loop)
   detection — the same constructor enumeration [patch_to] maintains.
   [ILoopScan] is handled separately: its back edge is internal. *)
let branch_target (i : instr) : int option =
  match i with
  | IJump t | IJumpIfFalse t | IJumpIfTrue t | IJumpIfFalseT t
  | IAndFalse t | IOrTrue t
  | IJumpCmpFalse (_, t) | IJumpCmpFalseT (_, t)
  | IJumpCmpConstFalse (_, _, t) | IJumpCmpConstFalseT (_, _, t)
  | IJumpLocCmpConstFalse (_, _, _, t) | IJumpLocCmpConstFalseT (_, _, _, t)
  | IJumpLocCmpFalse (_, _, t) | IJumpLocCmpFalseT (_, _, t)
  | IJumpLoc2CmpFalse (_, _, _, t) | IJumpLoc2CmpFalseT (_, _, _, t)
  | ITickLoadFieldStoreJump (_, _, _, _, _, t)
  | IStoreLocalPopJump (_, _, t)
  | IIncDecLocalJump (_, _, t)
  | ITickLoadFieldCmpLocFalse (_, _, _, _, _, t)
  | ITickLoadFieldCmpLocFalseT (_, _, _, _, _, t)
  | IBinopConstAndFalse (_, _, t)
  | IJumpIfFalseTPushScope (t, _)
  | ILoadFieldBinopJumpFalse (_, _, _, _, t)
  | ILoadFieldBinopJumpFalseT (_, _, _, _, t)
  | IJumpBCCmpFalse (_, _, _, t) | IJumpBCCmpFalseT (_, _, _, t)
  | ILoadFieldBCAndFalse (_, _, _, _, _, t)
  | IJumpLocFCmpFalse (_, _, _, _, _, t)
  | IJumpLocFCmpFalseT (_, _, _, _, _, t)
  | IJumpLL2FBCCmpFalse (_, _, _, _, _, _, _, t)
  | IJumpLL2FBCCmpFalseT (_, _, _, _, _, _, _, t)
  | IScanStep (_, _, _, _, _, _, _, _, _, _, t) ->
      Some t
  | _ -> None

(* A loop site: a branch whose target is at or before itself, or a
   whole-loop superinstruction. *)
let is_loop_site (i : instr) ~pc =
  match i with
  | ILoopScan _ -> true
  | _ -> ( match branch_target i with Some t -> t <= pc | None -> false)

let profile_report (cp : cprogram) (p : Vm_profile.t) ~steps :
    Vm_profile.report =
  let opcodes : (string, int ref) Hashtbl.t = Hashtbl.create 64 in
  let total = ref 0 in
  let funcs = ref [] in
  let sites = ref [] in
  Array.iteri
    (fun bid (body : cbody) ->
      let counts = p.Vm_profile.body_counts.(bid) in
      let owner, fidx = cp.cp_owners.(bid) in
      let body_total = ref 0 in
      Array.iteri
        (fun pc n ->
          if n > 0 then begin
            body_total := !body_total + n;
            let ins = body.b_code.(pc) in
            let m = mnemonic ins in
            (match Hashtbl.find_opt opcodes m with
            | Some r -> r := !r + n
            | None -> Hashtbl.add opcodes m (ref n));
            if is_loop_site ins ~pc then
              sites :=
                {
                  Vm_profile.sr_func = owner;
                  sr_pc = pc;
                  sr_op = m;
                  sr_count = n;
                }
                :: !sites
          end)
        counts;
      total := !total + !body_total;
      let calls =
        match fidx with
        | Some fi -> p.Vm_profile.call_counts.(fi)
        | None -> 0
      in
      if !body_total > 0 || calls > 0 then
        funcs :=
          {
            Vm_profile.fr_name = owner;
            fr_instrs = !body_total;
            fr_calls = calls;
          }
          :: !funcs)
    cp.cp_bodies;
  let by_count_desc name count a b =
    let c = compare (count b) (count a) in
    if c <> 0 then c else String.compare (name a) (name b)
  in
  {
    Vm_profile.r_steps = steps;
    r_dispatches = !total;
    r_opcodes =
      Hashtbl.fold (fun m r acc -> (m, !r) :: acc) opcodes []
      |> List.sort (by_count_desc fst snd);
    r_functions =
      List.sort
        (by_count_desc
           (fun (f : Vm_profile.func_row) -> f.Vm_profile.fr_name)
           (fun (f : Vm_profile.func_row) -> f.Vm_profile.fr_instrs))
        !funcs;
    r_sites =
      List.sort
        (by_count_desc
           (fun (s : Vm_profile.site_row) ->
             Printf.sprintf "%s@%d" s.Vm_profile.sr_func s.Vm_profile.sr_pc)
           (fun (s : Vm_profile.site_row) -> s.Vm_profile.sr_count))
        !sites;
  }
