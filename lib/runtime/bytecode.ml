(* Bytecode engine: a linear lowering of the resolved IR and the flat
   stack-machine VM that executes it.

   [compile] flattens every [Resolve.rfunc] body into one instruction
   array: an explicit operand stack replaces the OCaml call stack the
   tree-walker used per IR node, control flow becomes absolute jumps
   (patched in one pass, with compare-and-branch fusion for the common
   [a < b] loop conditions), and locals/globals/statics/fields are
   direct-indexed loads and stores. Calls still go through the interned
   function ids and per-name dispatch tables built by [Resolve];
   arguments are passed in place on the caller's operand stack, so the
   per-call [value array] allocation of the tree engine disappears.

   Observable semantics are preserved exactly — this is the whole
   contract, pinned by [test/test_bytecode.ml]'s golden differential:

   - tick (step-counting) points: one per statement entry, one per
     [call_function], one per constructor/destructor level, and the
     extra tick of the missing-constructor path;
   - [fresh_obj_id] sequencing, construction order (virtual bases at
     the most-derived level, direct bases, member subobjects, body) and
     reverse destruction order;
   - evaluation order, including lvalue-before-rhs in assignments and
     receiver-before-arguments in method calls;
   - error strings, the structured missing-member error, and the
     scope-exit destruction semantics of [Fun.protect] (a destructor
     failure during unwinding surfaces as [Fun.Finally_raised], exactly
     as the tree engine's [protect ~finally] did).

   The only intentional divergence: a [break]/[continue] outside any
   loop (never produced from well-formed sources, and never executed by
   any golden) raises a [Runtime_error] here, where the tree engine let
   the internal control exception escape. *)

open Frontend
open Sema
open Sema.Typed_ast
open Value
open Resolve

(* Every array access in this module is either compiler-generated (slot
   and jump indices validated during lowering) or guarded by an explicit
   bounds check that produces the interpreter's own error message, so
   the stdlib's implicit check never fires — shadow it away. This is
   worth ~10% on the dispatch loop. *)
module Array = struct
  include Stdlib.Array

  external get : 'a array -> int -> 'a = "%array_unsafe_get"
  external set : 'a array -> int -> 'a -> unit = "%array_unsafe_set"
end

(* -- typed slots ---------------------------------------------------------------

   The resolve pass banks every local slot and object member by static
   type ([Resolve.bank]); the compiler mirrors that with a static
   *shape* for every expression: which operand stack its value lives
   on. [SBox] is the legacy tagged stack; [SInt]/[SFlt] are the
   untagged int/float stacks added by this pass. Typed opcodes are
   emitted only when every operand's shape is known at compile time;
   anything polymorphic falls back to the generic opcodes through the
   explicit box bridges, so semantics can never depend on a shape
   guess. *)

type shape = SBox | SInt | SFlt

(* The integer image of [Value.coerce] for stores into an integral
   bank: the rhs is already an int, so only the narrowing step
   remains. [CChar] is [land 255], [CBool] is [<> 0]. *)
type icoerce = CNone | CChar | CBool

let ic_of_ty (ty : Ast.type_expr) : icoerce =
  match ty with
  | Ast.TChar -> CChar
  | Ast.TBool -> CBool
  | _ -> CNone

let[@inline] apply_ic ic n =
  match ic with
  | CNone -> n
  | CChar -> n land 255
  | CBool -> if n <> 0 then 1 else 0

(* Compile-time image of the int rhs transform folded into
   [IThisXAssignI]: either a chain of three constant binops (the
   [IBinopConst3I] shape) or a unary operator. A separate payload type
   rather than more constructors, to stay under the variant-size
   limit. *)
type ixform =
  | XBc3 of Ast.binop * int * Ast.binop * int * Ast.binop * int
  | XUn of Ast.unop

(* One slot of a fused constructor field-init run ([IInitFieldsI]):
   initialize an int-bank member from a local ([FInitL]) or from a
   constant ([FInitC]). *)
type finit =
  | FInitL of slots_by_class * Member.t * icoerce * int
  | FInitC of slots_by_class * Member.t * icoerce * int

(* Index operand of a fused [this->arr[ix]->f = rhs] store
   ([IThisIdxFieldStoreI]): an unboxed int local, or an int member of
   an object held in a local. *)
type idxsrc =
  | IxLocal of int
  | IxLocField of int * slots_by_class * Member.t

(* Right-hand side of the same fused store: a constant, an unboxed int
   local, or another this-rooted indexed member read folded with a
   constant binop ([op]=Add,[k]=0 when the source had no binop). *)
type irhs =
  | RConst of int
  | RLocal of int
  | RThisIdxField of
      slots_by_class * Member.t * idxsrc * slots_by_class * Member.t
      * Ast.binop * int

(* Micro-ops of a fused int-RPN store ([IRpnStoreI]): the settled tail
   of a pure-int assignment statement, re-expressed as pushes and
   combines over the untagged int stack. Each variant replays exactly
   one step of the unfused opcodes' evaluation (same reads, same error
   order), so a fused statement is observably identical. *)
type irpn =
  | RpConst of int
  | RpLocal of int
  | RpLoadField of int * slots_by_class * Member.t
  | RpThisField of slots_by_class * Member.t
  | RpFieldIdxField of
      int * slots_by_class * Member.t * int * Ast.binop * int
      * slots_by_class * Member.t
  | RpFieldField of
      int * slots_by_class * Member.t * slots_by_class * Member.t
  | RpBinop of Ast.binop
  | RpBinopConst of Ast.binop * int

(* Destination of a fused int-RPN store: the member slot resolves fully
   before any rhs leaf is read, exactly as the unfused sequence did.
   [DTickLocField] carries the statement tick ([ITickLocFieldI]);
   [DFieldIdx] is the [ILoadFieldIndexI; ILocFieldI] pair (tickless —
   the statement tick was already folded upstream). *)
type rdst =
  | DTickLocField of int * slots_by_class * Member.t
  | DFieldIdx of
      int * slots_by_class * Member.t * int * slots_by_class * Member.t
  | DTickFieldLocField of
      int * slots_by_class * Member.t * slots_by_class * Member.t

(* -- instruction set ----------------------------------------------------------

   Lvalue locations are encoded as pointer values on the one operand
   stack: [VPtr (PCell r)] for legacy cell references and
   [VPtr (PArr (h, i))] for a slot of a backing array. Reading/writing
   through them is exactly [Value.read_loc]/[write_loc]; [ILocToPtr]
   applies the [arr_id = -1] re-wrap of [Value.ptr_of_loc] when a
   location escapes as a user-visible pointer. *)

type instr =
  (* pushes *)
  | IConst of value
  | ILoad of int          (* push frame slot *)
  | ILoadRef of int       (* reference local: push its referent's value *)
  | IGlobal of int
  | IStatic of int
  | IThis
  (* pure operators, in place on the stack *)
  | IPop
  | IUnary of Ast.unop
  | IBinop of Ast.binop   (* strict binops only; && / || compile to jumps *)
  | IToBool
  | ICastInt
  | ICastFloat
  | IField of slots_by_class * Member.t
  | IDeref
  | IIndex
  | IAsObj                (* coerce to an object before a member-ptr deref *)
  | IMemPtrDeref
  | IAddrOf
  (* lvalue locations *)
  | ILocLocal of int
  | ILocLocalRef of int
  | ILocGlobal of int
  | ILocStatic of int
  | ILocField of slots_by_class * Member.t
  | ILocDeref
  | ILocIndex
  | ILocMemPtr
  | ILocToPtr             (* location -> user-visible pointer (ptr_of_loc) *)
  | IObjToPtr             (* object-reference argument: VObj o -> VPtr (PObj o) *)
  (* stores *)
  | IAssign of Ast.type_expr
  | ICompound of Ast.assign_op * Ast.type_expr
  | IIncDec of Ast.incdec * Ast.fixity
  | IStoreLocal of int * Ast.type_expr      (* coerce, store, keep value *)
  | IStoreLocalPop of int * Ast.type_expr   (* coerce, store, drop value *)
  | IStoreRawPop of int                     (* store without coercion *)
  | IIncDecLocal of Ast.incdec * Ast.fixity * int
  | IIncDecLocalPop of Ast.incdec * int
  (* control *)
  | IJump of int
  | IJumpIfFalse of int
  | IJumpIfTrue of int
  | IJumpCmpFalse of Ast.binop * int  (* fused compare-and-branch *)
  | IAndFalse of int      (* &&: pop; falsy -> push 0 and jump *)
  | IOrTrue of int        (* ||: pop; truthy -> push 1 and jump *)
  | ITick
  | IPushScope of int array
  | IPopScope
  | IExitScopes of int    (* break/continue leaving n destroy scopes *)
  | IReturn
  | IReturnUnit
  | IRaise of string
  (* allocation *)
  | INewObj of { n_cid : int; n_cls : string; n_ctor : int; n_argc : int }
  | INewScalar of int * Ast.type_expr       (* bytes, element type *)
  | INewArrObj of { w_cid : int; w_cls : string; w_ctor : int }
  | INewArrScalar of Ast.type_expr * int    (* element type, element bytes *)
  | IDelete
  (* declarations *)
  | IDeclScalar of int * Ast.type_expr
  | IDeclStackArr of {
      ds_slot : int;
      ds_cid : int;
      ds_cls : string;
      ds_ctor : int;
      ds_len : int;
    }
  | IDeclCtor of {
      dc_slot : int;
      dc_cid : int;
      dc_cls : string;
      dc_ctor : int;
      dc_argc : int;
    }
  (* calls: arguments stay in place on the operand stack; the callee
     reads them at [sp - argc .. sp - 1] *)
  | IBuiltin of builtin * int
  | ICallFunc of int * int
  | ICallMethod of { m_func : int; m_argc : int; m_arrow : bool }
  | ICallVirtual of { v_name : string; v_table : int array; v_argc : int }
  | ICallFunPtr of int
  | ICallCtor of int * int  (* base/vbase constructor on the current [this] *)
  (* constructor member-initializer steps *)
  | IInitField of {
      if_slots : slots_by_class;
      if_member : Member.t;
      if_cid : int;
      if_cls : string;
      if_ctor : int;
      if_argc : int;
    }
  | IInitFieldArr of {
      ia_slots : slots_by_class;
      ia_member : Member.t;
      ia_cid : int;
      ia_cls : string;
      ia_ctor : int;
      ia_len : int;
    }
  | IInitFieldScalar of {
      is_slots : slots_by_class;
      is_member : Member.t;
      is_coerce : Ast.type_expr;
    }
  (* superinstructions: adjacent pairs fused at emit time (see [fuse]).
     Each is exactly the sequence of its parts — same evaluation order,
     same errors — in one dispatch. The dynamic pair profile over the
     benchmark suite drove the selection: local.field reads, statement
     ticks glued to their first load, compare-and-branch against a
     constant or local, and the store/increment-then-back-edge of for
     loops together cover over half of all executed pairs. *)
  | ILoadField of int * slots_by_class * Member.t     (* ILoad; IField *)
  | ITickLoad of int                                  (* ITick; ILoad *)
  | ITickLoadField of int * slots_by_class * Member.t
  | IThisField of slots_by_class * Member.t           (* IThis; IField *)
  | IIndexField of slots_by_class * Member.t          (* IIndex; IField *)
  | ILoadLocField of int * slots_by_class * Member.t  (* ILoad; ILocField *)
  | ILoadIndex of int                                 (* ILoad; IIndex *)
  | IFieldBinop of slots_by_class * Member.t * Ast.binop
  | ILoadFieldBinop of int * slots_by_class * Member.t * Ast.binop
  | IBinopConst of Ast.binop * value                  (* IConst; IBinop *)
  | ITickN of int                                     (* n adjacent ITicks *)
  | ITickPushScope of int array
  | IAssignPop of Ast.type_expr                       (* IAssign; IPop *)
  | IStoreLocalPopT of int * Ast.type_expr            (* store; next stmt's tick *)
  | IStoreLocalPopJump of int * Ast.type_expr * int   (* store; back edge *)
  | IIncDecLocalJump of Ast.incdec * int * int        (* step; back edge *)
  (* branch variants; the T forms run the fall-through statement's tick *)
  | IJumpIfFalseT of int
  | IJumpCmpFalseT of Ast.binop * int
  | IJumpCmpConstFalse of Ast.binop * value * int
  | IJumpCmpConstFalseT of Ast.binop * value * int
  | IJumpLocCmpConstFalse of int * Ast.binop * value * int
  | IJumpLocCmpConstFalseT of int * Ast.binop * value * int
  | IJumpLocCmpFalse of Ast.binop * int * int     (* top CMP local *)
  | IJumpLocCmpFalseT of Ast.binop * int * int
  | IJumpLoc2CmpFalse of Ast.binop * int * int * int  (* local CMP local *)
  | IJumpLoc2CmpFalseT of Ast.binop * int * int * int
  (* the pointer-chase loop body [p = p->f;] in one or two dispatches *)
  | ITickLoadFieldStore of
      int * slots_by_class * Member.t * int * Ast.type_expr
  | ITickLoadFieldStoreJump of
      int * slots_by_class * Member.t * int * Ast.type_expr * int
  (* round 3: cascade fusion re-fuses a fusion product with its own
     predecessor, so whole expression chains ([o.f[i*k+j].g], the
     pointer-scan loop condition) collapse to one dispatch. *)
  | ILoadBinopConst of int * Ast.binop * value        (* ILoad; IBinopConst *)
  | ILoadFieldBC of int * slots_by_class * Member.t * Ast.binop * value
  | ILoadFieldLoadBC of
      int * slots_by_class * Member.t * int * Ast.binop * value
  | IFieldIdxField of
      int * slots_by_class * Member.t * int * Ast.binop * value
      * slots_by_class * Member.t                     (* l.f[l' op k].g *)
  | ILoadFieldBinop2 of
      int * slots_by_class * Member.t * Ast.binop * Ast.binop
  | IBinopAssignPop of Ast.binop * Ast.type_expr      (* IBinop; IAssignPop *)
  | ITickThisField of slots_by_class * Member.t
  | ILoad2FieldBinop of int * int * slots_by_class * Member.t * Ast.binop
  | ILoadLoadField of int * int * slots_by_class * Member.t
  | ILocFieldLoadField of
      slots_by_class * Member.t * int * slots_by_class * Member.t
  | IStoreTLoadField of int * Ast.type_expr * int * slots_by_class * Member.t
  | ITickLoadFieldIndex of int * slots_by_class * Member.t * int
  | ITLFIndexStoreT of
      int * slots_by_class * Member.t * int * int * Ast.type_expr
  | ITickLoadFieldCmpLocFalse of
      int * slots_by_class * Member.t * Ast.binop * int * int
  | ITickLoadFieldCmpLocFalseT of
      int * slots_by_class * Member.t * Ast.binop * int * int
  | IBinopConstAndFalse of Ast.binop * value * int
  | IJumpIfFalseTPushScope of int * int array
  | ILoadFieldBinopJumpFalse of
      int * slots_by_class * Member.t * Ast.binop * int
  | ILoadFieldBinopJumpFalseT of
      int * slots_by_class * Member.t * Ast.binop * int
  | IJumpBCCmpFalse of Ast.binop * value * Ast.binop * bool * int
      (* the bool folds the fall-through tick (the former ...T form) *)
  (* a scan loop's hot cycle [guard-branch -> p = p->f -> back edge]
     with the step on the branch's false edge: [finish]'s branch-target
     peephole inlines the step into the false arm; the step's own slot
     stays in place for the fall-in path *)
  | IScanStep of
      int * slots_by_class * Member.t * Ast.binop * int
      * int * slots_by_class * Member.t * int * Ast.type_expr * int
  (* [finish]'s second peephole: a guard [local CMP const] immediately
     followed by an [IScanStep] whose back edge is the guard itself is a
     whole self-contained scan loop; run it in a single dispatch. The
     body exit falls to [pc + 2]. *)
  | ILoopScan of
      int * Ast.binop * value * int
      * int * slots_by_class * Member.t * Ast.binop * int
      * int * slots_by_class * Member.t * int * Ast.type_expr
  | IBinopLoadField of Ast.binop * int * slots_by_class * Member.t
  | IBinop2 of Ast.binop * Ast.binop                  (* IBinop; IBinop *)
  | IThisFieldBinop of slots_by_class * Member.t * Ast.binop
  | IFieldBinop2AssignPop of
      int * slots_by_class * Member.t * Ast.binop * Ast.binop * Ast.type_expr
  | IBinop2AssignPop of Ast.binop * Ast.binop * Ast.type_expr
  | IConstFieldBinop2 of
      value * int * slots_by_class * Member.t * Ast.binop * Ast.binop
  | ILoadLocFieldLoadField of
      int * slots_by_class * Member.t * int * slots_by_class * Member.t
  | ILoadFieldBCAndFalse of
      int * slots_by_class * Member.t * Ast.binop * value * int
  | IJumpLocFCmpFalse of
      int * int * slots_by_class * Member.t * Ast.binop * int
  | IJumpLocFCmpFalseT of
      int * int * slots_by_class * Member.t * Ast.binop * int
  | IJumpLL2FBCCmpFalse of
      int * int * slots_by_class * Member.t * Ast.binop * value * Ast.binop
      * int
  | IJumpLL2FBCCmpFalseT of
      int * int * slots_by_class * Member.t * Ast.binop * value * Ast.binop
      * int
  (* -- typed (untagged) instructions -----------------------------------
     These run on the per-invocation int/float operand stacks instead of
     the boxed one: zero allocation and no tag dispatch on int/float hot
     paths. Each arm is the exact image of its generic counterpart —
     same evaluation order, tick points, coercions and error strings —
     with the tag test resolved at compile time by the resolve pass's
     bank classification. Suffix conventions: [..I]/[..F] name the stack
     an instruction's operands live on; [..IB]/[..FB]/[..B] are bridge
     forms whose rhs stays boxed (polymorphic) but whose destination is
     an unboxed bank slot. *)
  (* pushes / reads *)
  | IConstI of int
  | IConstF of float
  | ILoadI of int         (* push int local *)
  | ILoadF of int         (* push float local *)
  | IFieldI of slots_by_class * Member.t   (* pop obj; push int member *)
  | IFieldF of slots_by_class * Member.t
  | IIndexI               (* a[i] with an untagged index; result boxed *)
  (* bridges between the typed stacks and the boxed stack *)
  | IBoxI                 (* pop int stack; push boxed *)
  | IBoxF
  | IBoxIU                (* pop int stack; insert *under* the boxed top *)
  | IBoxFU
  | IPopI
  | IPopF
  | ILoadIB of int        (* ILoadI; IBoxI *)
  | ILoadFB of int
  | ILoadFieldIB of int * slots_by_class * Member.t
  | ILoadFieldFB of int * slots_by_class * Member.t
  | ICastFI               (* float stack -> int stack (int_of_float) *)
  | ICastIF               (* int stack -> float stack (float_of_int) *)
  (* pure typed operators *)
  | IUnaryI of Ast.unop
  | INegF
  | INotF                 (* float !x: push int 0/1 *)
  | IToBoolI
  | IBinopII of Ast.binop (* int OP int -> int, incl. compares *)
  | IArithFF of Ast.binop (* float OP float -> float *)
  | ICmpFF of Ast.binop   (* float CMP float -> int 0/1 *)
  | IArithIF of Ast.binop (* int (under) OP float (top) -> float *)
  | IArithFI of Ast.binop (* float (under) OP int (top) -> float *)
  | ICmpIF of Ast.binop
  | ICmpFI of Ast.binop
  (* typed local stores *)
  | IStoreLocalI of icoerce * int           (* coerce, store, keep value *)
  | IStoreLocalPopI of icoerce * int
  | IStoreLocalF of int
  | IStoreLocalPopF of int
  | IStoreLocalIB of Ast.type_expr * int    (* boxed rhs -> int bank slot *)
  | IStoreLocalIBPop of Ast.type_expr * int
  | IStoreLocalFB of Ast.type_expr * int
  | IStoreLocalFBPop of Ast.type_expr * int
  | IIncDecLocalI of Ast.incdec * Ast.fixity * int
  | IIncDecLocalPopI of Ast.incdec * int
  | IIncDecLocalF of Ast.incdec * Ast.fixity * int
  | IIncDecLocalPopF of Ast.incdec * int
  | ICompoundLocalI of Ast.binop * icoerce * int
  | ICompoundLocalIPop of Ast.binop * icoerce * int
  | ICompoundLocalF of Ast.binop * int
  | ICompoundLocalFPop of Ast.binop * int
  | ICompoundLocalB of Ast.assign_op * Ast.type_expr * int * bank
  | ICompoundLocalBPop of Ast.assign_op * Ast.type_expr * int * bank
  (* unboxed member lvalues. [ILocFieldI]/[ILocFieldF] keep the object
     on the boxed stack and push the resolved bank index onto the int
     stack, so the member lookup (and its missing-member error) happens
     before the rhs is evaluated, exactly as the tree engine orders it. *)
  | ILocFieldI of slots_by_class * Member.t
  | ILocFieldF of slots_by_class * Member.t
  | IAssignFieldI of icoerce       (* pop rhs(int), slot, obj; keep value *)
  | IAssignFieldIPop of icoerce
  | IAssignFieldF
  | IAssignFieldFPop
  | IAssignFieldIB of Ast.type_expr    (* boxed rhs -> int bank member *)
  | IAssignFieldIBPop of Ast.type_expr
  | IAssignFieldFB of Ast.type_expr
  | IAssignFieldFBPop of Ast.type_expr
  | ICompoundFieldI of Ast.binop * icoerce
  | ICompoundFieldIPop of Ast.binop * icoerce
  | ICompoundFieldF of Ast.binop
  | ICompoundFieldFPop of Ast.binop
  | ICompoundFieldB of Ast.assign_op * Ast.type_expr * bank
  | ICompoundFieldBPop of Ast.assign_op * Ast.type_expr * bank
  | IIncDecFieldI of Ast.incdec * Ast.fixity
  | IIncDecFieldIPop of Ast.incdec
  | IIncDecFieldF of Ast.incdec * Ast.fixity
  | IIncDecFieldFPop of Ast.incdec
  (* typed declarations / ctor member initializers *)
  | IDeclScalarI of int
  | IDeclScalarF of int
  | IInitFieldScalarI of slots_by_class * Member.t * icoerce
  | IInitFieldScalarF of slots_by_class * Member.t
  | IInitFieldScalarB of slots_by_class * Member.t * Ast.type_expr * bank
  (* typed control *)
  | IJumpIfFalseI of bool * int
  | IJumpIfTrueI of int
  | IJumpIfFalseF of bool * int
  | IJumpIfTrueF of int
  | IAndFalseI of int
  | IOrTrueI of int
  | IJumpCmpFalseI of Ast.binop * bool * int
  (* in every branch form below, a [bool] right before the target folds
     the fall-through tick (the former ...T / ...TI twin constructor) *)
  | IJumpCmpConstFalseI of Ast.binop * int * bool * int
  | IJumpLocCmpConstFalseI of int * Ast.binop * int * bool * int
  | IJumpLocCmpFalseI of Ast.binop * int * bool * int
  | IJumpLoc2CmpFalseI of Ast.binop * int * int * bool * int
  | IJumpLocFCmpFalseI of
      int * int * slots_by_class * Member.t * Ast.binop * bool * int
  (* typed superinstructions, mirroring the generic fusion set *)
  | ITickLoadI of int
  | ILoadFieldI of int * slots_by_class * Member.t
  | ILoadFieldF of int * slots_by_class * Member.t
  | ITickLoadFieldI of int * slots_by_class * Member.t
  | IThisFieldI of slots_by_class * Member.t
  | IThisFieldF of slots_by_class * Member.t
  | ITickThisFieldI of slots_by_class * Member.t
  | IIndexFieldI of slots_by_class * Member.t
  | ILoadLoadFieldI of int * int * slots_by_class * Member.t
  | IBinopConstI of Ast.binop * int
  | ILoadBinopConstI of int * Ast.binop * int
  | ILoadFieldBCI of int * slots_by_class * Member.t * Ast.binop * int
  | ILoadFieldLoadBCI of
      int * slots_by_class * Member.t * int * Ast.binop * int
      (* boxed l.f; typed [l' op k] index *)
  | ILoadFieldBinopI of int * slots_by_class * Member.t * Ast.binop
  | IBinopLoadFieldI of Ast.binop * int * slots_by_class * Member.t
  | IThisFieldBinopI of slots_by_class * Member.t * Ast.binop
  | IBinopConstAndFalseI of Ast.binop * int * int
  | IStoreLocalPopTI of icoerce * int
  | IStoreLocalPopJumpI of icoerce * int * int
  | IIncDecLocalJumpI of Ast.incdec * int * int
  | IFieldIdxFieldI of
      int * slots_by_class * Member.t * int * Ast.binop * int
      * slots_by_class * Member.t
  | ITickLoadFieldCmpLocFalseI of
      int * slots_by_class * Member.t * Ast.binop * int * bool * int
  | ILoadFieldBinopJumpFalseI of
      int * slots_by_class * Member.t * Ast.binop * bool * int
  | IJumpBCCmpFalseI of Ast.binop * int * Ast.binop * bool * int
      (* the bool folds the fall-through tick (the former ...TI form) *)
  | IJumpLL2FBCCmpFalseI of
      int * int * slots_by_class * Member.t * Ast.binop * int * Ast.binop
      * bool * int
  (* the scan loop with an int guard member: guard read is unboxed, the
     pointer step stays boxed (the step member is a reference bank) *)
  | IScanStepI of
      int * slots_by_class * Member.t * Ast.binop * int
      * int * slots_by_class * Member.t * int * Ast.type_expr * int
  | ILoopScanI of
      int * Ast.binop * int * int
      * int * slots_by_class * Member.t * Ast.binop * int
      * int * slots_by_class * Member.t * int * Ast.type_expr
  (* typed index/store chains and field-copy superinstructions: the
     typed images of fusion coverage the generic engine already had
     ([ITickLoadFieldIndex], [ITLFIndexStoreT], [ILoadFieldBCAndFalse]),
     plus store-from-source forms that collapse whole assignment
     statements into one dispatch *)
  | ILoadIndexI of int
  | ILoadFieldIndexI of int * slots_by_class * Member.t * int
  | ITickLoadFieldIndexI of int * slots_by_class * Member.t * int
  | ITLFIndexIStoreT of
      int * slots_by_class * Member.t * int * int * Ast.type_expr
  | ILoadBinopI of Ast.binop * int
  | ILoadLoadFieldBinopI of
      int * int * slots_by_class * Member.t * Ast.binop
  | ILoadFieldBCAndFalseI of
      int * slots_by_class * Member.t * Ast.binop * int * int
  | ILoadLocFieldI of int * slots_by_class * Member.t
  | ITickLocFieldI of int * slots_by_class * Member.t
  | IAssignFieldLIPop of icoerce * int
  | IAssignFieldLFIPop of icoerce * int * slots_by_class * Member.t
  | IFieldStoreLI of bool * icoerce * int * slots_by_class * Member.t * int
  | IFieldCopyII of
      bool * icoerce * int * slots_by_class * Member.t * int * slots_by_class
      * Member.t
  (* this-rooted lvalues, constructor field initialization from a local
     or constant, folded constant-operator chains, and the
     [local CMP this.f] loop guard *)
  | IThisLocFieldI of slots_by_class * Member.t
  | IAssignFieldCIPop of icoerce * int
  | IInitFieldLI of slots_by_class * Member.t * icoerce * int
  | IInitFieldConstI of slots_by_class * Member.t * icoerce * int
  | IBinopConst2I of Ast.binop * int * Ast.binop * int
  | IBinopConst3I of
      Ast.binop * int * Ast.binop * int * Ast.binop * int
  | ILoadFieldBCBinopI of
      int * slots_by_class * Member.t * Ast.binop * int * Ast.binop
  | ITickLoadBCI of int * Ast.binop * int
  | IJumpLocTFCmpFalseI of
      Ast.binop * int * slots_by_class * Member.t * bool * int
  (* [if (local->f BINOP const)] in branch position: the whole guard in
     one dispatch. The two bools fold a tick before the test (statement
     tick) and on fall-through (next statement's tick) — flags rather
     than four constructors to stay under the variant-size limit *)
  | IJumpLocFieldBCFalseI of
      bool * int * slots_by_class * Member.t * Ast.binop * int * bool * int
  (* [if (this->f BINOP const)], same tick-flag scheme *)
  | IJumpThisFieldBCFalseI of
      bool * slots_by_class * Member.t * Ast.binop * int * bool * int
  (* [this->dst = xform(this->src)] in one dispatch: dst slot resolves
     first, then the src read — the order the unfused sequence used *)
  | IThisXAssignI of
      int * slots_by_class * Member.t * slots_by_class * Member.t * ixform
      * icoerce
  (* [return this->f] on an int member, statement tick included *)
  | IReturnThisFieldI of slots_by_class * Member.t
  (* a run of consecutive int-member initializers in a constructor
     prologue, executed left to right exactly as the unfused ops *)
  | IInitFieldsI of finit array
  (* [this->arr[ix]->f = rhs] as one dispatch (the dependency-graph
     edge stores in hot loops). The bool folds the statement tick.
     Destination resolves fully (array read, index, element, slot)
     before the rhs is evaluated — the unfused order *)
  | IThisIdxFieldStoreI of
      bool * slots_by_class * Member.t * idxsrc * slots_by_class
      * Member.t * icoerce * irhs
  (* [local = localA->arr[i]; if (localN->f BINOP const)] — the
     statement-plus-guard prefix of the hot list-walk loops, one
     dispatch. First tuple is the [ITLFIndexIStoreT] payload (both its
     ticks included), second the [IJumpLocFieldBCFalseI] test; the bool
     folds the fall-through tick *)
  | ITLFIndexIStoreJumpFBCI of
      (int * slots_by_class * Member.t * int * int * Ast.type_expr)
      * (int * slots_by_class * Member.t * Ast.binop * int)
      * bool
      * int
  (* a whole pure-int assignment statement (destination resolution, an
     RPN chain of int reads/combines, the store) in one dispatch — the
     stencil-update statements dominating numeric kernels *)
  | IRpnStoreI of rdst * irpn array * icoerce
  (* [intlocal = (int)(BOXED binop const)] — the post-call coercion of
     a method result into an unboxed local, one dispatch *)
  | IBinopConstCastStoreI of Ast.binop * value * Ast.type_expr * int
  (* a run of adjacent [ILoadIB]s — arg pushes for calls/ctors *)
  | ILoadIBn of int array
  (* [tick?; this->m()] with no arguments, one dispatch *)
  | ITickThisCallM of bool * int
  (* [tick?; intlocal = (int)(this->m() binop const)] *)
  | IThisCallMStoreI of bool * int * Ast.binop * value * Ast.type_expr * int
  (* loop back edges with the guard replicated into the increment
     (branch-target inlining, built in [finish]): the payload tuple is
     the guard's own payload, the trailing int the guard's fall-through
     pc. The guard instruction stays in place for fall-in entries. *)
  | IIncDecJumpLocFCmpI of
      Ast.incdec * int
      * (int * int * slots_by_class * Member.t * Ast.binop * bool * int)
      * int
  | IIncDecJumpLL2FBCI of
      Ast.incdec * int
      * (int * int * slots_by_class * Member.t * Ast.binop * int * Ast.binop
         * bool * int)
      * int
  (* [tick; objlocal2 = arr-field[intlocal]; tick;
        objlocalA->fI = objlocalB->fI] — the two statements heading the
        field-solver's innermost loop, one dispatch *)
  | ITLFIStoreFieldCopyII of
      (int * slots_by_class * Member.t * int * int * Ast.type_expr)
      * (icoerce * int * slots_by_class * Member.t * int * slots_by_class
         * Member.t)
  (* [intlocal = this->arr[objlocal->idx]->field] — the dependency-chase
     statement; leading/trailing tick flags *)
  | IThisFieldIdxFStoreI of
      bool * slots_by_class * Member.t * int * slots_by_class * Member.t
      * slots_by_class * Member.t * icoerce * int * bool

(* A compiled code body. [b_omax] bounds the operand stack the body can
   ever need (computed conservatively during emission); [b_scoped] says
   whether any destroy scope is opened, so scope-free bodies skip the
   unwinding machinery entirely. [b_id] is the body's index into
   [cp_bodies]/[cp_owners], assigned during [compile]; the profiler
   uses it to find the body's counter row. *)
type cbody = {
  b_code : instr array;
  b_omax : int;
  b_imax : int;  (* untagged int operand-stack bound *)
  b_fmax : int;  (* untagged float operand-stack bound *)
  b_scoped : bool;
  mutable b_id : int;
}

type ckind =
  | KBody of cbody
  | KCtor of { kc_body : cbody; kc_entry : int }
      (* [kc_entry]: entry point skipping virtual-base construction, for
         non-most-derived invocations *)
  | KDtor
  | KUnknown
  | KUndefined
  | KMissingCtor

type cfunc = {
  c_id : Func_id.t;
  c_frame : fshape;
  c_params : rparam array;
  c_kind : ckind;
}

(* Per-class destruction plan with the destructor body compiled. *)
type cdestroy = {
  cd_dtor : (fshape * cbody) option;
  cd_fields : dfield array;
  cd_nv_bases : int array;
  cd_vbases_rev : int array;
}

type cprogram = {
  cp_rp : rprogram;
  cp_funcs : cfunc array;
  cp_destroy : cdestroy array;
  cp_ginit : cbody option array;  (* global initializers, by global index *)
  (* every compiled body, indexed by [b_id], with its owner: a display
     label plus the owning function's index when the body belongs to
     one (profiler call counts attach there) *)
  cp_bodies : cbody array;
  cp_owners : (string * int option) array;
}

(* -- telemetry (no-ops unless collection is enabled) -------------------------- *)

let instrs_counter = Telemetry.Counter.make "bytecode.instructions_compiled"
let bodies_counter = Telemetry.Counter.make "bytecode.bodies_compiled"

(* -- compiler ------------------------------------------------------------------ *)

(* Net operand-stack effect of one instruction; peaks within an
   instruction are covered by the +1 slack [emit] keeps and the fixed
   slack [finish] adds. Over-estimation is harmless (a few spare slots),
   under-estimation impossible: branch joins only ever *lower* the real
   depth below the linear scan's estimate. *)
let delta = function
  | IConst _ | ILoad _ | ILoadRef _ | IGlobal _ | IStatic _ | IThis
  | ILocLocal _ | ILocLocalRef _ | ILocGlobal _ | ILocStatic _
  | INewScalar _ | IIncDecLocal _ | IRaise _ ->
      1
  | IUnary _ | IToBool | ICastInt | ICastFloat | IField _ | IDeref | IAsObj
  | IAddrOf | ILocField _ | ILocDeref | ILocToPtr | IObjToPtr | IIncDec _
  | IStoreLocal _ | INewArrObj _ | INewArrScalar _ | IJump _ | ITick
  | IPushScope _ | IPopScope | IExitScopes _ | IReturnUnit | IDeclScalar _
  | IDeclStackArr _ | IIncDecLocalPop _ | IInitFieldArr _ ->
      0
  | IPop | IBinop _ | IIndex | IMemPtrDeref | ILocIndex | ILocMemPtr
  | IAssign _ | ICompound _ | IStoreLocalPop _ | IStoreRawPop _ | IDelete
  | IJumpIfFalse _ | IJumpIfTrue _ | IAndFalse _ | IOrTrue _ | IReturn
  | IInitFieldScalar _ ->
      -1
  | IJumpCmpFalse _ -> -2
  | ILoadField _ | ITickLoad _ | ITickLoadField _ | IThisField _
  | ILoadLocField _ ->
      1
  | ILoadFieldBinop _ | IBinopConst _ | ITickN _ | ITickPushScope _
  | IIncDecLocalJump _ | IJumpLocCmpConstFalse _ | IJumpLocCmpConstFalseT _
  | ILoadIndex _ | IJumpLoc2CmpFalse _ | IJumpLoc2CmpFalseT _
  | ITickLoadFieldStore _ | ITickLoadFieldStoreJump _ ->
      0
  | IFieldBinop _ | IIndexField _ | IStoreLocalPopT _ | IStoreLocalPopJump _
  | IJumpIfFalseT _ | IJumpCmpConstFalse _ | IJumpCmpConstFalseT _
  | IJumpLocCmpFalse _ | IJumpLocCmpFalseT _ ->
      -1
  | IAssignPop _ | IJumpCmpFalseT _ -> -2
  | ILoadBinopConst _ | ILoadFieldBC _ | ITickThisField _
  | ILoad2FieldBinop _ | ITickLoadFieldIndex _ | ILocFieldLoadField _
  | IFieldIdxField _ ->
      1
  | ILoadFieldLoadBC _ | ILoadLoadField _ -> 2
  | IStoreTLoadField _ | ITLFIndexStoreT _ | ITickLoadFieldCmpLocFalse _
  | ITickLoadFieldCmpLocFalseT _ ->
      0
  | ILoadFieldBinop2 _ | IJumpIfFalseTPushScope _ | ILoadFieldBinopJumpFalse _
  | ILoadFieldBinopJumpFalseT _ | IBinopConstAndFalse _ ->
      -1
  | IJumpBCCmpFalse _ -> -2
  | IScanStep _ | ILoopScan _
  | IBinopLoadField _ | IThisFieldBinop _ | IConstFieldBinop2 _
  | ILoadFieldBCAndFalse _ | IJumpLocFCmpFalse _ | IJumpLocFCmpFalseT _
  | IJumpLL2FBCCmpFalse _ | IJumpLL2FBCCmpFalseT _ ->
      0
  | ILoadLocFieldLoadField _ -> 2
  | IBinop2 _ -> -2
  | IFieldBinop2AssignPop _ -> -3
  | IBinop2AssignPop _ -> -4
  | IBinopAssignPop _ -> -3
  | IBuiltin (_, n) | ICallFunc (_, n) | INewObj { n_argc = n; _ } -> 1 - n
  | ICallMethod { m_argc = n; _ } -> -n  (* receiver consumed, result pushed *)
  | ILoadIBn a -> Array.length a
  | ITickThisCallM _ -> 1
  | ICallVirtual { v_argc = n; _ } -> -n
  | ICallFunPtr n -> -n
  | ICallCtor (_, n) -> -n
  | IInitField { if_argc = n; _ } -> -n
  | IDeclCtor { dc_argc = n; _ } -> -n
  (* typed instructions: boxed-stack effect only (their int/float stack
     effects live in [idelta]/[fdelta]) *)
  | IBoxI | IBoxF | IBoxIU | IBoxFU | ILoadIB _ | ILoadFB _ | ILoadFieldIB _
  | ILoadFieldFB _ | ILoadFieldLoadBCI _ | ILoadFieldIndexI _
  | ITickLoadFieldIndexI _ | ILoadLocFieldI _ | ITickLocFieldI _
  | IThisLocFieldI _ ->
      1
  | IFieldI _ | IFieldF _ | IIndexFieldI _ | IAssignFieldI _
  | IAssignFieldIPop _ | IAssignFieldF | IAssignFieldFPop | IAssignFieldIB _
  | IAssignFieldFB _ | ICompoundFieldI _ | ICompoundFieldIPop _
  | ICompoundFieldF _ | ICompoundFieldFPop _ | ICompoundFieldB _
  | IIncDecFieldI _ | IIncDecFieldIPop _ | IIncDecFieldF _
  | IIncDecFieldFPop _ | IInitFieldScalarB _ | IStoreLocalIBPop _
  | IStoreLocalFBPop _ | ICompoundLocalBPop _ | IAssignFieldLIPop _
  | IAssignFieldLFIPop _ | IAssignFieldCIPop _ | IBinopConstCastStoreI _ ->
      -1
  | IAssignFieldIBPop _ | IAssignFieldFBPop _ | ICompoundFieldBPop _ -> -2
  | IConstI _ | IConstF _ | ILoadI _ | ILoadF _ | IIndexI | IPopI | IPopF
  | ICastFI | ICastIF | IUnaryI _ | INegF | INotF | IToBoolI | IBinopII _
  | IArithFF _ | ICmpFF _ | IArithIF _ | IArithFI _ | ICmpIF _ | ICmpFI _
  | IStoreLocalI _ | IStoreLocalPopI _ | IStoreLocalF _ | IStoreLocalPopF _
  | IStoreLocalIB _ | IStoreLocalFB _ | IIncDecLocalI _ | IIncDecLocalPopI _
  | IIncDecLocalF _ | IIncDecLocalPopF _ | ICompoundLocalI _
  | ICompoundLocalIPop _ | ICompoundLocalF _ | ICompoundLocalFPop _
  | ICompoundLocalB _ | ILocFieldI _ | ILocFieldF _ | IDeclScalarI _
  | IDeclScalarF _ | IInitFieldScalarI _ | IInitFieldScalarF _
  | IJumpIfFalseI _ | IJumpIfTrueI _ | IJumpIfFalseF _
  | IJumpIfTrueF _ | IAndFalseI _ | IOrTrueI _
  | IJumpCmpFalseI _ | IJumpCmpConstFalseI _
  | IJumpLocCmpConstFalseI _
  | IJumpLocCmpFalseI _
  | IJumpLoc2CmpFalseI _ | IJumpLocFCmpFalseI _
  | ITickLoadI _ | ILoadFieldI _ | ILoadFieldF _
  | ITickLoadFieldI _ | IThisFieldI _ | IThisFieldF _ | ITickThisFieldI _
  | ILoadLoadFieldI _ | IBinopConstI _ | ILoadBinopConstI _ | ILoadFieldBCI _
  | ILoadFieldBinopI _ | IBinopLoadFieldI _ | IThisFieldBinopI _
  | IBinopConstAndFalseI _ | IStoreLocalPopTI _ | IStoreLocalPopJumpI _
  | IIncDecLocalJumpI _ | IFieldIdxFieldI _ | ITickLoadFieldCmpLocFalseI _
  | ILoadFieldBinopJumpFalseI _
  | IJumpBCCmpFalseI _
  | IJumpLL2FBCCmpFalseI _ | IScanStepI _
  | ILoopScanI _ | ILoadIndexI _ | ITLFIndexIStoreT _ | ILoadBinopI _
  | ILoadLoadFieldBinopI _ | ILoadFieldBCAndFalseI _ | IFieldStoreLI _
  | IFieldCopyII _
  | IInitFieldLI _ | IInitFieldConstI _ | IBinopConst2I _ | IBinopConst3I _
  | ILoadFieldBCBinopI _ | ITickLoadBCI _ | IJumpLocTFCmpFalseI _
  | IJumpLocFieldBCFalseI _ | IJumpThisFieldBCFalseI _ | IThisXAssignI _
  | IReturnThisFieldI _ | IInitFieldsI _ | IThisIdxFieldStoreI _
  | ITLFIndexIStoreJumpFBCI _ | IRpnStoreI _ | IThisFieldIdxFStoreI _
  | ITLFIStoreFieldCopyII _ | IThisCallMStoreI _ | IIncDecJumpLocFCmpI _
  | IIncDecJumpLL2FBCI _ ->
      0

(* Net effect on the untagged int operand stack. Only typed instructions
   touch it, so the wildcard covers the whole generic set. *)
let idelta = function
  | IConstI _ | ILoadI _ | ITickLoadI _ | IFieldI _ | ILoadFieldI _
  | ITickLoadFieldI _ | IThisFieldI _ | ITickThisFieldI _ | ILoadBinopConstI _
  | ILoadFieldBCI _ | ILoadFieldLoadBCI _ | IIncDecLocalI _ | ICastFI
  | ILocFieldI _ | ILocFieldF _ | INotF | ICmpFF _ | IFieldIdxFieldI _
  | ILoadLocFieldI _ | ITickLocFieldI _ | ILoadLoadFieldBinopI _
  | IThisLocFieldI _ | ITickLoadBCI _ ->
      1
  | ILoadLoadFieldI _ -> 2
  | IBoxI | IBoxIU | IPopI | IBinopII _ | IStoreLocalPopI _
  | IStoreLocalPopTI _ | IStoreLocalPopJumpI _ | ICompoundLocalIPop _
  | IJumpIfFalseI _ | IJumpIfTrueI _ | IAndFalseI _
  | IOrTrueI _ | IJumpCmpConstFalseI _
  | IJumpLocCmpFalseI _ | IAssignFieldI _
  | IAssignFieldF | IAssignFieldIB _ | IAssignFieldIBPop _ | IAssignFieldFB _
  | IAssignFieldFBPop _ | ICompoundFieldI _ | ICompoundFieldF _
  | ICompoundFieldFPop _ | ICompoundFieldB _ | ICompoundFieldBPop _
  | IIncDecFieldIPop _ | IIncDecFieldF _ | IIncDecFieldFPop _
  | IInitFieldScalarI _ | ICastIF | IArithIF _ | IArithFI _
  | IBinopConstAndFalseI _ | ILoadFieldBinopJumpFalseI _
  | IAssignFieldFPop | IIndexI
  | IAssignFieldLIPop _ | IAssignFieldLFIPop _ | IAssignFieldCIPop _ ->
      -1
  | IJumpCmpFalseI _ | IAssignFieldIPop _
  | ICompoundFieldIPop _ | IJumpBCCmpFalseI _ ->
      -2
  | _ -> 0

(* Net effect on the untagged float operand stack. *)
let fdelta = function
  | IConstF _ | ILoadF _ | IFieldF _ | ILoadFieldF _ | IThisFieldF _
  | ICastIF | IIncDecLocalF _ | IIncDecFieldF _ ->
      1
  | IArithFF _ | ICmpIF _ | ICmpFI _ | INotF | IBoxF | IBoxFU | IPopF
  | IStoreLocalPopF _ | ICompoundLocalFPop _ | IAssignFieldFPop
  | IJumpIfFalseF _ | IJumpIfTrueF _
  | IInitFieldScalarF _ | ICastFI | ICompoundFieldFPop _ ->
      -1
  | ICmpFF _ -> -2
  | _ -> 0

type buf = {
  mutable code : instr array;
  mutable len : int;
  mutable od : int;    (* linear-scan operand depth *)
  mutable omax : int;
  mutable iod : int;   (* untagged int stack depth *)
  mutable iomax : int;
  mutable fod : int;   (* untagged float stack depth *)
  mutable fomax : int;
  mutable sdepth : int;  (* open destroy scopes at the frontier *)
  mutable scoped : bool;
  mutable lastlab : int;
      (* highest position that is a jump target; labels are only created
         at the frontier, so this is monotone. Fusing [prev; i] into one
         instruction in [prev]'s slot is legal unless a label sits
         *between* the two ([lastlab = len]): a jumper landing there
         expects [i] without [prev]'s effect. A label on [prev] itself
         is fine — jumpers wanted [prev] then [i] anyway. *)
}

let mk_buf () =
  {
    code = Array.make 32 IReturnUnit;
    len = 0;
    od = 0;
    omax = 0;
    iod = 0;
    iomax = 0;
    fod = 0;
    fomax = 0;
    sdepth = 0;
    scoped = false;
    lastlab = -1;
  }

(* Track all three stack depths for one appended/fused instruction. The
   typed maxima track reached depth only (no +1 floor): a body that
   never touches a typed stack keeps a 0 bound and the VM skips that
   stack's allocation entirely. *)
let bump (b : buf) (i : instr) =
  b.od <- b.od + delta i;
  if b.od + 1 > b.omax then b.omax <- b.od + 1;
  b.iod <- b.iod + idelta i;
  if b.iod > b.iomax then b.iomax <- b.iod;
  b.fod <- b.fod + fdelta i;
  if b.fod > b.fomax then b.fomax <- b.fod

let is_cmp = function
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge -> true
  | _ -> false

(* Operators whose [ibinop_i] image is symmetric in its arguments, so a
   pushed constant may be folded as the *right* operand of a fused
   field-op form. Division, subtraction, shifts and orderings are
   excluded; [Eq]/[Ne] on ints are plain equality. *)
let commutes = function
  | Ast.Add | Ast.Mul | Ast.Eq | Ast.Ne | Ast.BAnd | Ast.BOr | Ast.BXor ->
      true
  | _ -> false

(* The pair-fusion table: [fuse prev i] is the single instruction
   equivalent to [prev; i], or [None]. Every fusion preserves the exact
   sequence semantics (evaluation order, ticks, errors) by
   construction — the VM arm of each fused form is the concatenation of
   its parts' arms. The selection comes from the dynamic pair profile
   over the benchmark suite: local.field reads, statement ticks glued to
   their first load, binops against a constant, and the store/increment
   plus back-edge of for loops cover over half of all executed pairs. *)
let fuse (prev : instr) (i : instr) : instr option =
  match (prev, i) with
  | ILoad n, IField (s, m) -> Some (ILoadField (n, s, m))
  | ITickLoad n, IField (s, m) -> Some (ITickLoadField (n, s, m))
  | IThis, IField (s, m) -> Some (IThisField (s, m))
  | IIndex, IField (s, m) -> Some (IIndexField (s, m))
  | ILoad n, ILocField (s, m) -> Some (ILoadLocField (n, s, m))
  | ITick, ILoad n -> Some (ITickLoad n)
  | ITick, ITick -> Some (ITickN 2)
  | ITickN n, ITick -> Some (ITickN (n + 1))
  | ITick, IPushScope s -> Some (ITickPushScope s)
  | IStoreLocalPop (n, ty), ITick -> Some (IStoreLocalPopT (n, ty))
  | IJumpIfFalse t, ITick -> Some (IJumpIfFalseT t)
  | IJumpCmpFalse (op, t), ITick -> Some (IJumpCmpFalseT (op, t))
  | IJumpCmpConstFalse (op, v, t), ITick ->
      Some (IJumpCmpConstFalseT (op, v, t))
  | IJumpLocCmpConstFalse (n, op, v, t), ITick ->
      Some (IJumpLocCmpConstFalseT (n, op, v, t))
  | IJumpLocCmpFalse (op, n, t), ITick -> Some (IJumpLocCmpFalseT (op, n, t))
  | IJumpLoc2CmpFalse (op, x, y, t), ITick ->
      Some (IJumpLoc2CmpFalseT (op, x, y, t))
  | ITickLoadField (i, s, m), IStoreLocalPop (j, ty) ->
      Some (ITickLoadFieldStore (i, s, m, j, ty))
  | ITickLoadFieldStore (i, s, m, j, ty), IJump t ->
      Some (ITickLoadFieldStoreJump (i, s, m, j, ty, t))
  | IConst v, IBinop op -> Some (IBinopConst (op, v))
  | ILoadField (n, s, m), IBinop op -> Some (ILoadFieldBinop (n, s, m, op))
  | IField (s, m), IBinop op -> Some (IFieldBinop (s, m, op))
  | IAssign ty, IPop -> Some (IAssignPop ty)
  | IStoreLocalPop (n, ty), IJump t -> Some (IStoreLocalPopJump (n, ty, t))
  | IIncDecLocalPop (w, n), IJump t -> Some (IIncDecLocalJump (w, n, t))
  | IIncDecLocal (w, _, n), IPop -> Some (IIncDecLocalPop (w, n))
  | IStoreLocal (n, ty), IPop -> Some (IStoreLocalPop (n, ty))
  | ILoad n, IIndex -> Some (ILoadIndex n)
  | ILoadFieldBinop (n, s, m, op1), IBinop op2 ->
      Some (ILoadFieldBinop2 (n, s, m, op1, op2))
  | ITickLoadField (n, s, m), IJumpLocCmpFalse (op, y, t) ->
      Some (ITickLoadFieldCmpLocFalse (n, s, m, op, y, t))
  | ITickLoadFieldCmpLocFalse (n, s, m, op, y, t), ITick ->
      Some (ITickLoadFieldCmpLocFalseT (n, s, m, op, y, t))
  | IBinopConst (op, v), IAndFalse t -> Some (IBinopConstAndFalse (op, v, t))
  | IJumpIfFalseT t, IPushScope s -> Some (IJumpIfFalseTPushScope (t, s))
  | ILoadFieldBinop (n, s, m, op), IJumpIfFalse t ->
      Some (ILoadFieldBinopJumpFalse (n, s, m, op, t))
  | ILoadFieldBinopJumpFalse (n, s, m, op, t), ITick ->
      Some (ILoadFieldBinopJumpFalseT (n, s, m, op, t))
  | IJumpBCCmpFalse (o1, v, o2, false, t), ITick ->
      Some (IJumpBCCmpFalse (o1, v, o2, true, t))
  | IThisField (s, m), IBinop op -> Some (IThisFieldBinop (s, m, op))
  | IBinop op1, IBinop op2 -> Some (IBinop2 (op1, op2))
  | ILoadFieldBC (n, s, m, op, v), IAndFalse t ->
      Some (ILoadFieldBCAndFalse (n, s, m, op, v, t))
  | IJumpLocFCmpFalse (i, j, s, m, op, t), ITick ->
      Some (IJumpLocFCmpFalseT (i, j, s, m, op, t))
  | IJumpLL2FBCCmpFalse (i, j, s, m, op1, v, op2, t), ITick ->
      Some (IJumpLL2FBCCmpFalseT (i, j, s, m, op1, v, op2, t))
  (* -- typed mirrors ---------------------------------------------------- *)
  | IConstI n, IBoxI -> Some (IConst (vint n))
  | IConstF f, IBoxF -> Some (IConst (VFloat f))
  | ILoadI n, IBoxI -> Some (ILoadIB n)
  | ILoadF n, IBoxF -> Some (ILoadFB n)
  | ILoadFieldI (n, s, m), IBoxI -> Some (ILoadFieldIB (n, s, m))
  | ILoadFieldF (n, s, m), IBoxF -> Some (ILoadFieldFB (n, s, m))
  | IConstI n, ICastIF -> Some (IConstF (float_of_int n))
  | IConstF f, ICastFI -> Some (IConstI (int_of_float f))
  | ITick, ILoadI n -> Some (ITickLoadI n)
  | ILoad n, IFieldI (s, m) -> Some (ILoadFieldI (n, s, m))
  | ILoad n, IFieldF (s, m) -> Some (ILoadFieldF (n, s, m))
  | ITickLoad n, IFieldI (s, m) -> Some (ITickLoadFieldI (n, s, m))
  | IThis, IFieldI (s, m) -> Some (IThisFieldI (s, m))
  | IThis, IFieldF (s, m) -> Some (IThisFieldF (s, m))
  | IIndexI, IFieldI (s, m) -> Some (IIndexFieldI (s, m))
  | IConstI k, IBinopII op -> Some (IBinopConstI (op, k))
  | ILoadFieldI (n, s, m), IBinopII op -> Some (ILoadFieldBinopI (n, s, m, op))
  | IThisFieldI (s, m), IBinopII op -> Some (IThisFieldBinopI (s, m, op))
  | IBinopConstI (op, k), IAndFalseI t -> Some (IBinopConstAndFalseI (op, k, t))
  | IStoreLocalI (ic, n), IPopI -> Some (IStoreLocalPopI (ic, n))
  | IStoreLocalF n, IPopF -> Some (IStoreLocalPopF n)
  | IStoreLocalIB (ty, n), IPop -> Some (IStoreLocalIBPop (ty, n))
  | IStoreLocalFB (ty, n), IPop -> Some (IStoreLocalFBPop (ty, n))
  | IIncDecLocalI (w, _, n), IPopI -> Some (IIncDecLocalPopI (w, n))
  | IIncDecLocalF (w, _, n), IPopF -> Some (IIncDecLocalPopF (w, n))
  | ICompoundLocalI (op, ic, n), IPopI -> Some (ICompoundLocalIPop (op, ic, n))
  | ICompoundLocalF (op, n), IPopF -> Some (ICompoundLocalFPop (op, n))
  | ICompoundLocalB (op, ty, n, bk), IPop ->
      Some (ICompoundLocalBPop (op, ty, n, bk))
  | IAssignFieldI ic, IPopI -> Some (IAssignFieldIPop ic)
  | IAssignFieldF, IPopF -> Some IAssignFieldFPop
  | IAssignFieldIB ty, IPop -> Some (IAssignFieldIBPop ty)
  | IAssignFieldFB ty, IPop -> Some (IAssignFieldFBPop ty)
  | ICompoundFieldI (op, ic), IPopI -> Some (ICompoundFieldIPop (op, ic))
  | ICompoundFieldF op, IPopF -> Some (ICompoundFieldFPop op)
  | ICompoundFieldB (op, ty, bk), IPop -> Some (ICompoundFieldBPop (op, ty, bk))
  | IIncDecFieldI (w, _), IPopI -> Some (IIncDecFieldIPop w)
  | IIncDecFieldF (w, _), IPopF -> Some (IIncDecFieldFPop w)
  | IStoreLocalPopI (ic, n), ITick -> Some (IStoreLocalPopTI (ic, n))
  | IStoreLocalPopI (ic, n), IJump t -> Some (IStoreLocalPopJumpI (ic, n, t))
  | IIncDecLocalPopI (w, n), IJump t -> Some (IIncDecLocalJumpI (w, n, t))
  | IJumpIfFalseI (false, t), ITick -> Some (IJumpIfFalseI (true, t))
  | IJumpIfFalseF (false, t), ITick -> Some (IJumpIfFalseF (true, t))
  | IJumpCmpFalseI (op, false, t), ITick -> Some (IJumpCmpFalseI (op, true, t))
  | IJumpCmpConstFalseI (op, k, false, t), ITick ->
      Some (IJumpCmpConstFalseI (op, k, true, t))
  | IJumpLocCmpConstFalseI (n, op, k, false, t), ITick ->
      Some (IJumpLocCmpConstFalseI (n, op, k, true, t))
  | IJumpLocCmpFalseI (op, n, false, t), ITick ->
      Some (IJumpLocCmpFalseI (op, n, true, t))
  | IJumpLoc2CmpFalseI (op, x, y, false, t), ITick ->
      Some (IJumpLoc2CmpFalseI (op, x, y, true, t))
  | IJumpLocFCmpFalseI (i, j, s, m, op, false, t), ITick ->
      Some (IJumpLocFCmpFalseI (i, j, s, m, op, true, t))
  | IJumpBCCmpFalseI (o1, k, o2, false, t), ITick ->
      Some (IJumpBCCmpFalseI (o1, k, o2, true, t))
  | IJumpLL2FBCCmpFalseI (i, j, s, m, op1, k, op2, false, t), ITick ->
      Some (IJumpLL2FBCCmpFalseI (i, j, s, m, op1, k, op2, true, t))
  | IJumpLocFieldBCFalseI (tp, n, s, m, op, k, false, t), ITick ->
      Some (IJumpLocFieldBCFalseI (tp, n, s, m, op, k, true, t))
  | ITLFIndexIStoreJumpFBCI (st, br, false, t), ITick ->
      Some (ITLFIndexIStoreJumpFBCI (st, br, true, t))
  | IJumpThisFieldBCFalseI (tp, s, m, op, k, false, t), ITick ->
      Some (IJumpThisFieldBCFalseI (tp, s, m, op, k, true, t))
  | ILoadFieldBCI (n, s, m, op, k), IJumpIfFalseI (false, t) ->
      Some (IJumpLocFieldBCFalseI (false, n, s, m, op, k, false, t))
  | ITickLoadFieldI (n, s, m), IJumpLocCmpFalseI (op, y, tk, t) ->
      Some (ITickLoadFieldCmpLocFalseI (n, s, m, op, y, tk, t))
  | ITickLoadFieldCmpLocFalseI (n, s, m, op, y, false, t), ITick ->
      Some (ITickLoadFieldCmpLocFalseI (n, s, m, op, y, true, t))
  | ILoadFieldBinopI (n, s, m, op), IJumpIfFalseI (false, t) ->
      Some (ILoadFieldBinopJumpFalseI (n, s, m, op, false, t))
  | ILoadFieldBinopJumpFalseI (n, s, m, op, false, t), ITick ->
      Some (ILoadFieldBinopJumpFalseI (n, s, m, op, true, t))
  | ILoadI i, IIndexI -> Some (ILoadIndexI i)
  | ILoadI i, IBinopII op -> Some (ILoadBinopI (op, i))
  | ILoadLoadFieldI (x, y, s, m), IBinopII op ->
      Some (ILoadLoadFieldBinopI (x, y, s, m, op))
  | ILoad n, ILocFieldI (s, m) -> Some (ILoadLocFieldI (n, s, m))
  | ITickLoad n, ILocFieldI (s, m) -> Some (ITickLocFieldI (n, s, m))
  | IThis, ILocFieldI (s, m) -> Some (IThisLocFieldI (s, m))
  | IThis, ICallMethod { m_func; m_argc = 0; m_arrow = _ } ->
      Some (ITickThisCallM (false, m_func))
  | ITick, IThisXAssignI (0, sd, md, ss, ms, xf, ic) ->
      Some (IThisXAssignI (1, sd, md, ss, ms, xf, ic))
  | ITickN n, IThisXAssignI (0, sd, md, ss, ms, xf, ic) ->
      Some (IThisXAssignI (n, sd, md, ss, ms, xf, ic))
  | ITickThisCallM (tk, f), IBinopConstCastStoreI (op, v, ty, i) ->
      Some (IThisCallMStoreI (tk, f, op, v, ty, i))
  | IThisFieldIdxFStoreI (lt, s, m, j, s2, m2, s3, m3, ic, i, false), ITick ->
      Some (IThisFieldIdxFStoreI (lt, s, m, j, s2, m2, s3, m3, ic, i, true))
  | ILoadFieldBCI (n, s, m, op, k), IAndFalseI t ->
      Some (ILoadFieldBCAndFalseI (n, s, m, op, k, t))
  (* assignment/initialization whose rhs is a local or a constant *)
  | ILoadI i, IAssignFieldIPop ic -> Some (IAssignFieldLIPop (ic, i))
  | ILoadFieldI (j, s, m), IAssignFieldIPop ic ->
      Some (IAssignFieldLFIPop (ic, j, s, m))
  | IConstI k, IAssignFieldIPop ic -> Some (IAssignFieldCIPop (ic, k))
  | ILoadI i, IInitFieldScalarI (s, m, ic) -> Some (IInitFieldLI (s, m, ic, i))
  | IConstI k, IInitFieldScalarI (s, m, ic) ->
      Some (IInitFieldConstI (s, m, ic, k))
  (* unary operators on an int literal fold at compile time; the images
     below are exactly the [IUnaryI] arm's *)
  | IConstI k, IUnaryI op ->
      Some
        (IConstI
           (match op with
           | Ast.Neg -> -k
           | Ast.Not -> if k = 0 then 1 else 0
           | Ast.BitNot -> lnot k
           | Ast.UPlus -> k))
  | ILoadFieldBCI (n, s, m, op1, k), IBinopII op2 ->
      Some (ILoadFieldBCBinopI (n, s, m, op1, k, op2))
  | IJumpLocTFCmpFalseI (op, x, s, m, false, t), ITick ->
      Some (IJumpLocTFCmpFalseI (op, x, s, m, true, t))
  (* a comparison already leaves exactly 0/1 on the int stack, so the
     [&&]/[||] rhs normalization to bool is the identity on it *)
  | IBinopII op, IToBoolI when is_cmp op -> Some (IBinopII op)
  | IBinopConstI (op, k), IToBoolI when is_cmp op -> Some (IBinopConstI (op, k))
  | ILoadBinopConstI (n, op, k), IToBoolI when is_cmp op ->
      Some (ILoadBinopConstI (n, op, k))
  | ILoadFieldBCI (n, s, m, op, k), IToBoolI when is_cmp op ->
      Some (ILoadFieldBCI (n, s, m, op, k))
  | ILoadBinopI (op, i), IToBoolI when is_cmp op -> Some (ILoadBinopI (op, i))
  | ILoadFieldBinopI (n, s, m, op), IToBoolI when is_cmp op ->
      Some (ILoadFieldBinopI (n, s, m, op))
  | ILoadLoadFieldBinopI (x, y, s, m, op), IToBoolI when is_cmp op ->
      Some (ILoadLoadFieldBinopI (x, y, s, m, op))
  | (IBinopConst2I (_, _, op, _) as p), IToBoolI when is_cmp op -> Some p
  | (IBinopConst3I (_, _, _, _, op, _) as p), IToBoolI when is_cmp op -> Some p
  | (ILoadFieldBCBinopI (_, _, _, _, _, op) as p), IToBoolI when is_cmp op ->
      Some p
  | (ITickLoadBCI (_, op, _) as p), IToBoolI when is_cmp op -> Some p
  | ((ICmpFF _ | ICmpIF _ | ICmpFI _ | INotF | IToBoolI) as p), IToBoolI ->
      Some p
  | IUnaryI Ast.Not, IToBoolI -> Some (IUnaryI Ast.Not)
  | _ -> None

(* The cascade table: after [fuse] lands a combined instruction, try
   fusing it with *its* predecessor. Only forms whose consumed halves
   carry no pending patch site may appear here (no branch instruction is
   ever on the right, and no vacated slot may hold a branch), so the
   recorded patch positions stay valid when the frontier shrinks. *)
let fuse2 (prev : instr) (f : instr) : instr option =
  match (prev, f) with
  | ILoad n, IBinopConst (op, v) -> Some (ILoadBinopConst (n, op, v))
  | ILoadField (n, s, m), IBinopConst (op, v) ->
      Some (ILoadFieldBC (n, s, m, op, v))
  | ILoadField (n, s, m), ILoadBinopConst (j, op, v) ->
      Some (ILoadFieldLoadBC (n, s, m, j, op, v))
  | ILoadFieldLoadBC (n, s, m, j, op, v), IIndexField (s2, m2) ->
      Some (IFieldIdxField (n, s, m, j, op, v, s2, m2))
  | IBinop op, IAssignPop ty -> Some (IBinopAssignPop (op, ty))
  | ITick, IThisField (s, m) -> Some (ITickThisField (s, m))
  | ITick, ITickThisCallM (false, f) -> Some (ITickThisCallM (true, f))
  | ILoadIB a, ILoadIB c -> Some (ILoadIBn [| a; c |])
  | ILoadIBn a, ILoadIB c -> Some (ILoadIBn (Array.append a [| c |]))
  | ILoad i, ILoadFieldBinop (j, s, m, op) ->
      Some (ILoad2FieldBinop (i, j, s, m, op))
  | ILoad i, ILoadField (j, s, m) -> Some (ILoadLoadField (i, j, s, m))
  | ILocField (s1, m1), ILoadField (j, s2, m2) ->
      Some (ILocFieldLoadField (s1, m1, j, s2, m2))
  | IStoreLocalPopT (i, ty), ILoadField (j, s, m) ->
      Some (IStoreTLoadField (i, ty, j, s, m))
  | ITickLoadField (a, s, m), ILoadIndex i ->
      Some (ITickLoadFieldIndex (a, s, m, i))
  | ITickLoadFieldIndex (a, s, m, i), IStoreLocalPopT (x, ty) ->
      Some (ITLFIndexStoreT (a, s, m, i, x, ty))
  | IBinop op, ILoadField (j, s, m) -> Some (IBinopLoadField (op, j, s, m))
  | ILoadFieldBinop2 (n, s, m, op1, op2), IAssignPop ty ->
      Some (IFieldBinop2AssignPop (n, s, m, op1, op2, ty))
  | IBinop2 (op1, op2), IAssignPop ty -> Some (IBinop2AssignPop (op1, op2, ty))
  | IConst v, ILoadFieldBinop2 (n, s, m, op1, op2) ->
      Some (IConstFieldBinop2 (v, n, s, m, op1, op2))
  | ILoadLocField (n, s, m), ILoadField (j, s2, m2) ->
      Some (ILoadLocFieldLoadField (n, s, m, j, s2, m2))
  (* -- typed mirrors ---------------------------------------------------- *)
  | ILoadI n, IBinopConstI (op, k) -> Some (ILoadBinopConstI (n, op, k))
  | ILoadFieldI (n, s, m), IBinopConstI (op, k) ->
      Some (ILoadFieldBCI (n, s, m, op, k))
  | ILoadField (n, s, m), ILoadBinopConstI (j, op, k) ->
      Some (ILoadFieldLoadBCI (n, s, m, j, op, k))
  | ILoadFieldLoadBCI (n, s, m, j, op, k), IIndexFieldI (s2, m2) ->
      Some (IFieldIdxFieldI (n, s, m, j, op, k, s2, m2))
  | ILoadI i, ILoadFieldI (j, s, m) -> Some (ILoadLoadFieldI (i, j, s, m))
  | IBinopII op, ILoadFieldI (j, s, m) -> Some (IBinopLoadFieldI (op, j, s, m))
  | ITick, IThisFieldI (s, m) -> Some (ITickThisFieldI (s, m))
  | ILoadField (a, s, m), ILoadIndexI i -> Some (ILoadFieldIndexI (a, s, m, i))
  | ITickLoadField (a, s, m), ILoadIndexI i ->
      Some (ITickLoadFieldIndexI (a, s, m, i))
  | ITickLoadFieldIndexI (a, s, m, i), IStoreLocalPopT (x, ty) ->
      Some (ITLFIndexIStoreT (a, s, m, i, x, ty))
  | IConstI k, ILoadFieldBinopI (j, s, m, op) when commutes op ->
      Some (ILoadFieldBCI (j, s, m, op, k))
  | ILoadI i, IAssignFieldIPop ic -> Some (IAssignFieldLIPop (ic, i))
  | ILoadFieldI (j, s, m), IAssignFieldIPop ic ->
      Some (IAssignFieldLFIPop (ic, j, s, m))
  | ILoadLocFieldI (n, s, m), IAssignFieldLIPop (ic, i) ->
      Some (IFieldStoreLI (false, ic, n, s, m, i))
  | ITickLocFieldI (n, s, m), IAssignFieldLIPop (ic, i) ->
      Some (IFieldStoreLI (true, ic, n, s, m, i))
  | ILoadLocFieldI (a, s1, m1), IAssignFieldLFIPop (ic, j, s2, m2) ->
      Some (IFieldCopyII (false, ic, a, s1, m1, j, s2, m2))
  | ITickLocFieldI (a, s1, m1), IAssignFieldLFIPop (ic, j, s2, m2) ->
      Some (IFieldCopyII (true, ic, a, s1, m1, j, s2, m2))
  | IBinopConstI (o1, k1), IBinopConstI (o2, k2) ->
      Some (IBinopConst2I (o1, k1, o2, k2))
  | IBinopConst2I (o1, k1, o2, k2), IBinopConstI (o3, k3) ->
      Some (IBinopConst3I (o1, k1, o2, k2, o3, k3))
  | ITickLoadI n, IBinopConstI (op, k) -> Some (ITickLoadBCI (n, op, k))
  (* constructor-prologue init runs: [IInitFieldLI]/[IInitFieldConstI]
     only ever appear via fusion, so the chain rules live here (the
     [settle] cascade) rather than in the pairwise table *)
  | IInitFieldLI (s1, m1, c1, i1), IInitFieldLI (s2, m2, c2, i2) ->
      Some (IInitFieldsI [| FInitL (s1, m1, c1, i1); FInitL (s2, m2, c2, i2) |])
  | IInitFieldLI (s1, m1, c1, i1), IInitFieldConstI (s2, m2, c2, k2) ->
      Some (IInitFieldsI [| FInitL (s1, m1, c1, i1); FInitC (s2, m2, c2, k2) |])
  | IInitFieldConstI (s1, m1, c1, k1), IInitFieldLI (s2, m2, c2, i2) ->
      Some (IInitFieldsI [| FInitC (s1, m1, c1, k1); FInitL (s2, m2, c2, i2) |])
  | IInitFieldConstI (s1, m1, c1, k1), IInitFieldConstI (s2, m2, c2, k2) ->
      Some (IInitFieldsI [| FInitC (s1, m1, c1, k1); FInitC (s2, m2, c2, k2) |])
  | IInitFieldsI a, IInitFieldLI (s, m, c, i) ->
      Some (IInitFieldsI (Array.append a [| FInitL (s, m, c, i) |]))
  | IInitFieldsI a, IInitFieldConstI (s, m, c, k) ->
      Some (IInitFieldsI (Array.append a [| FInitC (s, m, c, k) |]))
  | ( ITLFIndexIStoreT (a, s, m, i, x, ty),
      IFieldCopyII (false, ic, a2, s1, m1, j, s2, m2) ) ->
      Some (ITLFIStoreFieldCopyII ((a, s, m, i, x, ty), (ic, a2, s1, m1, j, s2, m2)))
  | ( ITLFIndexIStoreT (a, s0, m0, i0, x0, ty0),
      IJumpLocFieldBCFalseI (false, n, s, m, op, k, ta, t) ) ->
      (* the indexed-load statement supplies the guard's leading tick
         itself (its trailing tick), so only the tickless form fuses *)
      Some
        (ITLFIndexIStoreJumpFBCI
           ((a, s0, m0, i0, x0, ty0), (n, s, m, op, k), ta, t))
  | _ -> None

let emit (b : buf) (i : instr) =
  match
    if b.len > 0 && b.lastlab <> b.len then fuse b.code.(b.len - 1) i else None
  with
  | Some f ->
      b.code.(b.len - 1) <- f;
      (* [prev]'s delta is already in [od]; the fused form adds [i]'s *)
      bump b i;
      (* cascade: the combined instruction may fuse again with its own
         predecessor. A label on the surviving slot is fine (the fused
         run starts there); one on the vacated slot blocks it. *)
      let rec settle () =
        if b.len >= 2 && b.lastlab < b.len - 1 then
          match fuse2 b.code.(b.len - 2) b.code.(b.len - 1) with
          | Some g ->
              b.len <- b.len - 1;
              b.code.(b.len - 1) <- g;
              settle ()
          | None -> ()
      in
      settle ()
  | None ->
      if b.len = Array.length b.code then begin
        let nc = Array.make (2 * b.len) IReturnUnit in
        Array.blit b.code 0 nc 0 b.len;
        b.code <- nc
      end;
      b.code.(b.len) <- i;
      b.len <- b.len + 1;
      bump b i

(* Emit a forward jump with a placeholder target; returns the patch site
   (the fused slot, when the jump merged into its predecessor). *)
let emit_patch b i =
  emit b i;
  b.len - 1

(* Collapse a settled [this->arr[ix]->f = rhs] statement tail into one
   [IThisIdxFieldStoreI] dispatch. Runs right after the statement's
   final store lands (and its pairwise fusions settle), so the tail
   shapes below are exactly what the disassembly shows for the hot
   dependency-edge stores. Every matched run is stack-neutral, so
   [b.od]/[b.iod] need no rollback; a label is allowed only on the
   first collapsed slot. *)
let fuse_this_idx_store b =
  let n = b.len in
  if n >= 4 && b.lastlab < n - 3 then
    match (b.code.(n - 4), b.code.(n - 3), b.code.(n - 2), b.code.(n - 1)) with
    | ( (ITickThisField (s1, m1) | IThisField (s1, m1)),
        ILoadIndexI i,
        ILocFieldI (s2, m2),
        IAssignFieldCIPop (ic, k) ) ->
        let tk =
          match b.code.(n - 4) with ITickThisField _ -> true | _ -> false
        in
        b.len <- n - 4;
        emit b
          (IThisIdxFieldStoreI (tk, s1, m1, IxLocal i, s2, m2, ic, RConst k))
    | ( (ITickThisField (s1, m1) | IThisField (s1, m1)),
        ILoadIndexI i,
        ILocFieldI (s2, m2),
        IAssignFieldLIPop (ic, j) ) ->
        let tk =
          match b.code.(n - 4) with ITickThisField _ -> true | _ -> false
        in
        b.len <- n - 4;
        emit b
          (IThisIdxFieldStoreI (tk, s1, m1, IxLocal i, s2, m2, ic, RLocal j))
    | _ ->
        if n >= 5 && b.lastlab < n - 4 then
          match
            ( b.code.(n - 5),
              b.code.(n - 4),
              b.code.(n - 3),
              b.code.(n - 2),
              b.code.(n - 1) )
          with
          | ( ITickThisField (s1, m1),
              ILoadFieldI (j, s2, m2),
              IIndexI,
              ILocFieldI (s3, m3),
              IAssignFieldLIPop (ic, i) ) ->
              b.len <- n - 5;
              emit b
                (IThisIdxFieldStoreI
                   (true, s1, m1, IxLocField (j, s2, m2), s3, m3, ic, RLocal i))
          | ( ITickThisField (s1, m1),
              ILoadFieldI (j, s2, m2),
              IIndexI,
              ILocFieldI (s3, m3),
              IAssignFieldCIPop (ic, k) ) ->
              b.len <- n - 5;
              emit b
                (IThisIdxFieldStoreI
                   (true, s1, m1, IxLocField (j, s2, m2), s3, m3, ic, RConst k))
          | _ ->
              if n >= 9 && b.lastlab < n - 8 then
                match
                  ( b.code.(n - 9),
                    b.code.(n - 8),
                    b.code.(n - 7),
                    b.code.(n - 6),
                    b.code.(n - 5),
                    b.code.(n - 4),
                    b.code.(n - 3),
                    b.code.(n - 2),
                    b.code.(n - 1) )
                with
                | ( ITickThisField (s1, m1),
                    ILoadFieldI (j, s2, m2),
                    IIndexI,
                    ILocFieldI (s3, m3),
                    IThisField (s4, m4),
                    ILoadFieldI (j2, s5, m5),
                    IIndexFieldI (s6, m6),
                    IBinopConstI (op, k),
                    IAssignFieldIPop ic ) ->
                    b.len <- n - 9;
                    emit b
                      (IThisIdxFieldStoreI
                         ( true,
                           s1,
                           m1,
                           IxLocField (j, s2, m2),
                           s3,
                           m3,
                           ic,
                           RThisIdxField
                             (s4, m4, IxLocField (j2, s5, m5), s6, m6, op, k) ))
                | _ -> ()

(* RPN decomposition of the opcodes allowed inside a fused int store.
   Ticked variants are deliberately absent: the destination carries the
   statement tick, and no other tick may move. *)
let rpn_of_instr = function
  | IConstI k -> Some [ RpConst k ]
  | ILoadI i -> Some [ RpLocal i ]
  | ILoadFieldI (j, s, m) -> Some [ RpLoadField (j, s, m) ]
  | IThisFieldI (s, m) -> Some [ RpThisField (s, m) ]
  | IFieldIdxFieldI (i, s, m, j, op, k, s2, m2) ->
      Some [ RpFieldIdxField (i, s, m, j, op, k, s2, m2) ]
  | IBinopII op -> Some [ RpBinop op ]
  | IBinopConstI (op, k) -> Some [ RpBinopConst (op, k) ]
  | IBinopLoadFieldI (op, j, s, m) ->
      Some [ RpBinop op; RpLoadField (j, s, m) ]
  | IThisFieldBinopI (s, m, op) -> Some [ RpThisField (s, m); RpBinop op ]
  | ILoadFieldBinopI (j, s, m, op) ->
      Some [ RpLoadField (j, s, m); RpBinop op ]
  | ILoadFieldBCBinopI (n, s, m, op1, k, op2) ->
      Some [ RpLoadField (n, s, m); RpBinopConst (op1, k); RpBinop op2 ]
  | ILoadFieldBCI (n, s, m, op, k) ->
      Some [ RpLoadField (n, s, m); RpBinopConst (op, k) ]
  | ILoadLoadFieldI (i, j, s, m) ->
      Some [ RpLocal i; RpLoadField (j, s, m) ]
  | _ -> None

let rpn_delta = function
  | RpConst _ | RpLocal _ | RpLoadField _ | RpThisField _
  | RpFieldIdxField _ | RpFieldField _ ->
      1
  | RpBinop _ -> -1
  | RpBinopConst _ -> 0

(* Collapse a settled pure-int assignment statement into one
   [IRpnStoreI]. Walks back from the just-landed [IAssignFieldIPop]
   over rpn-able opcodes until the destination-resolution shape, then
   replaces the whole run. Fires only when it saves at least four
   dispatches, so the short statements keep their specialized
   superinstructions. The collapsed run is stack-neutral, so no depth
   rollback; a label is allowed only on the first collapsed slot. *)
let fuse_rpn_store b =
  let n = b.len in
  match if n >= 1 then b.code.(n - 1) else IReturnUnit with
  | IAssignFieldIPop ic ->
      let rec walk p acc =
        if p < 1 || n - 1 - p > 16 then None
        else
          match rpn_of_instr b.code.(p) with
          | Some ops -> walk (p - 1) (ops @ acc)
          | None
            when p >= 2
                 &&
                 (match (b.code.(p - 1), b.code.(p)) with
                 | ILoadField _, IFieldI _ -> true
                 | _ -> false) -> (
              (* the boxed-intermediate pair [l->a->b]: one int leaf *)
              match (b.code.(p - 1), b.code.(p)) with
              | ILoadField (j, s, m), IFieldI (s2, m2) ->
                  walk (p - 2) (RpFieldField (j, s, m, s2, m2) :: acc)
              | _ -> None)
          | None -> (
              (* [p] must be the destination shape, fully before [acc],
                 and the rhs run must produce exactly one int *)
              if List.fold_left (fun d r -> d + rpn_delta r) 0 acc <> 1 then
                None
              else
                match b.code.(p) with
                | ITickLocFieldI (a, s, m) when b.lastlab <= p ->
                    Some (p, DTickLocField (a, s, m), acc)
                | ILocFieldI (s2, m2) when p >= 1 && b.lastlab <= p - 1 -> (
                    match b.code.(p - 1) with
                    | ILoadFieldIndexI (a, s, m, i) ->
                        Some (p - 1, DFieldIdx (a, s, m, i, s2, m2), acc)
                    | ITickLoadField (i, s, m) ->
                        Some (p - 1, DTickFieldLocField (i, s, m, s2, m2), acc)
                    | _ -> None)
                | _ -> None)
      in
      if n >= 6 && b.lastlab < n - 1 then begin
        match walk (n - 2) [] with
        | Some (p, dst, ops) when n - p >= 5 ->
            b.len <- p;
            emit b (IRpnStoreI (dst, Array.of_list ops, ic))
        | _ -> ()
      end
  | _ -> ()

(* Store a boxed value into an int local, collapsing the
   [IBinopConst; ICastInt] coercion tail (the post-call shape) into the
   store when present. *)
let emit_store_ib_pop b ty i =
  if b.len >= 2 && b.lastlab < b.len - 1 then
    match (b.code.(b.len - 2), b.code.(b.len - 1)) with
    | IBinopConst (op, v), ICastInt ->
        b.len <- b.len - 2;
        emit b (IBinopConstCastStoreI (op, v, ty, i))
    | _ -> emit b (IStoreLocalIBPop (ty, i))
  else emit b (IStoreLocalIBPop (ty, i))

(* After an int-local store lands, collapse the dependency-chase shape
   [tick?; push this->arr; push objlocal->idx; index-and-read ->field;
   store intlocal] into one [IThisFieldIdxFStoreI] dispatch. All four
   instructions are stack-neutral as a group, so no depth rollback is
   needed. *)
let fuse_tfield_idx_store b =
  let n = b.len - 1 in
  if n >= 3 && b.lastlab <= n - 3 then
    match (b.code.(n - 3), b.code.(n - 2), b.code.(n - 1), b.code.(n)) with
    | ( (ITickThisField (s, m) | IThisField (s, m)),
        ILoadFieldI (j, s2, m2),
        IIndexFieldI (s3, m3),
        IStoreLocalPopI (ic, i) ) ->
        let lt =
          match b.code.(n - 3) with ITickThisField _ -> true | _ -> false
        in
        b.len <- b.len - 4;
        emit b (IThisFieldIdxFStoreI (lt, s, m, j, s2, m2, s3, m3, ic, i, false))
    | _ -> ()

(* Mark the frontier as a jump target (blocks fusion across it). *)
let here b =
  b.lastlab <- b.len;
  b.len

let patch_to (b : buf) (t : int) (i : int) =
  b.code.(i) <-
    (match b.code.(i) with
    | IJump _ -> IJump t
    | IJumpIfFalse _ -> IJumpIfFalse t
    | IJumpIfFalseT _ -> IJumpIfFalseT t
    | IJumpIfTrue _ -> IJumpIfTrue t
    | IJumpCmpFalse (op, _) -> IJumpCmpFalse (op, t)
    | IJumpCmpFalseT (op, _) -> IJumpCmpFalseT (op, t)
    | IJumpCmpConstFalse (op, v, _) -> IJumpCmpConstFalse (op, v, t)
    | IJumpCmpConstFalseT (op, v, _) -> IJumpCmpConstFalseT (op, v, t)
    | IJumpLocCmpConstFalse (n, op, v, _) -> IJumpLocCmpConstFalse (n, op, v, t)
    | IJumpLocCmpConstFalseT (n, op, v, _) ->
        IJumpLocCmpConstFalseT (n, op, v, t)
    | IJumpLocCmpFalse (op, n, _) -> IJumpLocCmpFalse (op, n, t)
    | IJumpLocCmpFalseT (op, n, _) -> IJumpLocCmpFalseT (op, n, t)
    | IJumpLoc2CmpFalse (op, x, y, _) -> IJumpLoc2CmpFalse (op, x, y, t)
    | IJumpLoc2CmpFalseT (op, x, y, _) -> IJumpLoc2CmpFalseT (op, x, y, t)
    | ITickLoadFieldStoreJump (i, s, m, j, ty, _) ->
        ITickLoadFieldStoreJump (i, s, m, j, ty, t)
    | IStoreLocalPopJump (n, ty, _) -> IStoreLocalPopJump (n, ty, t)
    | IIncDecLocalJump (w, n, _) -> IIncDecLocalJump (w, n, t)
    | IAndFalse _ -> IAndFalse t
    | ITickLoadFieldCmpLocFalse (n, s, m, op, y, _) ->
        ITickLoadFieldCmpLocFalse (n, s, m, op, y, t)
    | ITickLoadFieldCmpLocFalseT (n, s, m, op, y, _) ->
        ITickLoadFieldCmpLocFalseT (n, s, m, op, y, t)
    | IBinopConstAndFalse (op, v, _) -> IBinopConstAndFalse (op, v, t)
    | IJumpIfFalseTPushScope (_, s) -> IJumpIfFalseTPushScope (t, s)
    | ILoadFieldBinopJumpFalse (n, s, m, op, _) ->
        ILoadFieldBinopJumpFalse (n, s, m, op, t)
    | ILoadFieldBinopJumpFalseT (n, s, m, op, _) ->
        ILoadFieldBinopJumpFalseT (n, s, m, op, t)
    | IJumpBCCmpFalse (o1, v, o2, tk, _) -> IJumpBCCmpFalse (o1, v, o2, tk, t)
    | ILoadFieldBCAndFalse (n, s, m, op, v, _) ->
        ILoadFieldBCAndFalse (n, s, m, op, v, t)
    | IJumpLocFCmpFalse (i, j, s, m, op, _) ->
        IJumpLocFCmpFalse (i, j, s, m, op, t)
    | IJumpLocFCmpFalseT (i, j, s, m, op, _) ->
        IJumpLocFCmpFalseT (i, j, s, m, op, t)
    | IJumpLL2FBCCmpFalse (i, j, s, m, op1, v, op2, _) ->
        IJumpLL2FBCCmpFalse (i, j, s, m, op1, v, op2, t)
    | IJumpLL2FBCCmpFalseT (i, j, s, m, op1, v, op2, _) ->
        IJumpLL2FBCCmpFalseT (i, j, s, m, op1, v, op2, t)
    | IOrTrue _ -> IOrTrue t
    (* typed branch forms *)
    | IJumpIfFalseI (tk, _) -> IJumpIfFalseI (tk, t)
    | IJumpIfTrueI _ -> IJumpIfTrueI t
    | IJumpIfFalseF (tk, _) -> IJumpIfFalseF (tk, t)
    | IJumpIfTrueF _ -> IJumpIfTrueF t
    | IAndFalseI _ -> IAndFalseI t
    | IOrTrueI _ -> IOrTrueI t
    | IJumpCmpFalseI (op, tk, _) -> IJumpCmpFalseI (op, tk, t)
    | IJumpCmpConstFalseI (op, k, tk, _) -> IJumpCmpConstFalseI (op, k, tk, t)
    | IJumpLocCmpConstFalseI (n, op, k, tk, _) ->
        IJumpLocCmpConstFalseI (n, op, k, tk, t)
    | IJumpLocCmpFalseI (op, n, tk, _) -> IJumpLocCmpFalseI (op, n, tk, t)
    | IJumpLoc2CmpFalseI (op, x, y, tk, _) ->
        IJumpLoc2CmpFalseI (op, x, y, tk, t)
    | IJumpLocFCmpFalseI (i, j, s, m, op, tk, _) ->
        IJumpLocFCmpFalseI (i, j, s, m, op, tk, t)
    | IJumpBCCmpFalseI (o1, k, o2, tk, _) -> IJumpBCCmpFalseI (o1, k, o2, tk, t)
    | IJumpLL2FBCCmpFalseI (i, j, s, m, op1, k, op2, tk, _) ->
        IJumpLL2FBCCmpFalseI (i, j, s, m, op1, k, op2, tk, t)
    | IBinopConstAndFalseI (op, k, _) -> IBinopConstAndFalseI (op, k, t)
    | ILoadFieldBCAndFalseI (n, s, m, op, k, _) ->
        ILoadFieldBCAndFalseI (n, s, m, op, k, t)
    | IJumpLocTFCmpFalseI (op, x, s, m, tk, _) ->
        IJumpLocTFCmpFalseI (op, x, s, m, tk, t)
    | IJumpLocFieldBCFalseI (tp, n, s, m, op, k, ta, _) ->
        IJumpLocFieldBCFalseI (tp, n, s, m, op, k, ta, t)
    | ITLFIndexIStoreJumpFBCI (st, br, ta, _) ->
        ITLFIndexIStoreJumpFBCI (st, br, ta, t)
    | IJumpThisFieldBCFalseI (tp, s, m, op, k, ta, _) ->
        IJumpThisFieldBCFalseI (tp, s, m, op, k, ta, t)
    | ITickLoadFieldCmpLocFalseI (n, s, m, op, y, tk, _) ->
        ITickLoadFieldCmpLocFalseI (n, s, m, op, y, tk, t)
    | ILoadFieldBinopJumpFalseI (n, s, m, op, tk, _) ->
        ILoadFieldBinopJumpFalseI (n, s, m, op, tk, t)
    | IStoreLocalPopJumpI (ic, n, _) -> IStoreLocalPopJumpI (ic, n, t)
    | IIncDecLocalJumpI (w, n, _) -> IIncDecLocalJumpI (w, n, t)
    | _ -> assert false)

(* Land the given patch sites on the frontier. *)
let land_patches b sites =
  if sites <> [] then begin
    let t = b.len in
    List.iter (patch_to b t) sites;
    b.lastlab <- b.len
  end

(* Branch on a falsy condition, fusing the comparison just emitted into
   the branch: [a CMP b] becomes one compare-and-branch, [a CMP const]
   folds the constant in, and [local CMP const] — the canonical for-loop
   condition — folds the load too, deleting its slot. The fused
   instructions run the same [value_eq] / [compare_test] the tree engine
   ran, so errors are unchanged. Deleting a slot additionally requires
   that no label lands on it. *)
let emit_branch_false b =
  if b.len > 0 && b.lastlab <> b.len then
    match b.code.(b.len - 1) with
    | IBinop op when is_cmp op -> (
        match
          if b.lastlab < b.len - 1 then b.code.(b.len - 2) else IReturnUnit
        with
        | ILoad y
          when b.len >= 3 && b.lastlab < b.len - 2
               && (match b.code.(b.len - 3) with ILoad _ -> true | _ -> false)
          ->
            (* [ILoad x; ILoad y; CMP]: the whole condition in one *)
            let x =
              match b.code.(b.len - 3) with ILoad x -> x | _ -> assert false
            in
            b.len <- b.len - 3;
            b.od <- b.od - 1;  (* roll back +1 +1 -1 *)
            emit_patch b (IJumpLoc2CmpFalse (op, x, y, -1))
        | ILoad y ->
            b.len <- b.len - 2;  (* roll back +1 -1 *)
            emit_patch b (IJumpLocCmpFalse (op, y, -1))
        | ILoadLoadField (x, y, s, m) ->
            (* [lx; ly.f; CMP]: the whole condition in one instruction *)
            b.len <- b.len - 1;
            b.od <- b.od - 1;  (* +2 -1 applied; the fused branch is 0 *)
            b.code.(b.len - 1) <- IJumpLocFCmpFalse (x, y, s, m, op, -1);
            b.len - 1
        | IBinopConst (op1, cv)
          when b.len >= 3
               && b.lastlab < b.len - 2
               && match b.code.(b.len - 3) with
                  | ILoadLoadField _ -> true
                  | _ -> false -> (
            (* [lx; ly.f; (.. OP1 k); CMP] in one instruction *)
            match b.code.(b.len - 3) with
            | ILoadLoadField (x, y, s, m) ->
                b.len <- b.len - 2;
                b.od <- b.od - 1;  (* +2 0 -1 applied; the fused branch is 0 *)
                b.code.(b.len - 1) <-
                  IJumpLL2FBCCmpFalse (x, y, s, m, op1, cv, op, -1);
                b.len - 1
            | _ -> assert false)
        | IBinopConst (op1, cv) ->
            (* [x; (a OP1 k); CMP]: fold the constant binop into the
               branch (the scrutinee guard excludes a label here) *)
            b.len <- b.len - 1;
            b.od <- b.od - 1;  (* 0 -1 applied; the fused branch is -2 *)
            b.code.(b.len - 1) <- IJumpBCCmpFalse (op1, cv, op, false, -1);
            b.len - 1
        | _ ->
            b.code.(b.len - 1) <- IJumpCmpFalse (op, -1);
            b.od <- b.od - 1;  (* IBinop's -1 was applied; fused is -2 *)
            b.len - 1)
    | ILoadBinopConst (n, op, v) when is_cmp op ->
        (* the cascade already folded [ILoad; IConst; CMP]; turn it into
           the canonical for-loop branch in place *)
        b.code.(b.len - 1) <- IJumpLocCmpConstFalse (n, op, v, -1);
        b.od <- b.od - 1;  (* +1 applied; the fused branch is net 0 *)
        b.len - 1
    | IBinopConst (op, v) when is_cmp op -> (
        match
          if b.len >= 2 && b.lastlab < b.len - 1 then b.code.(b.len - 2)
          else IReturnUnit
        with
        | ILoad n ->
            (* roll back [ILoad; IBinopConst] (net +1); the fused branch
               is net 0 *)
            b.len <- b.len - 2;
            b.od <- b.od - 1;
            emit_patch b (IJumpLocCmpConstFalse (n, op, v, -1))
        | _ ->
            b.code.(b.len - 1) <- IJumpCmpConstFalse (op, v, -1);
            b.od <- b.od - 1;  (* IBinopConst's 0 was applied; fused is -1 *)
            b.len - 1)
    | _ -> emit_patch b (IJumpIfFalse (-1))
  else emit_patch b (IJumpIfFalse (-1))

(* The typed image of [emit_branch_false] for an int-shaped condition:
   same folds, same label guards, with the depth bookkeeping on the
   untagged int stack. *)
let emit_branch_false_i b =
  if b.len > 0 && b.lastlab <> b.len then
    match b.code.(b.len - 1) with
    | IBinopII op when is_cmp op -> (
        match
          if b.lastlab < b.len - 1 then b.code.(b.len - 2) else IReturnUnit
        with
        | ILoadI y
          when b.len >= 3 && b.lastlab < b.len - 2
               && (match b.code.(b.len - 3) with ILoadI _ -> true | _ -> false)
          ->
            let x =
              match b.code.(b.len - 3) with ILoadI x -> x | _ -> assert false
            in
            b.len <- b.len - 3;
            b.iod <- b.iod - 1;
            emit_patch b (IJumpLoc2CmpFalseI (op, x, y, false, -1))
        | ILoadI y ->
            b.len <- b.len - 2;
            emit_patch b (IJumpLocCmpFalseI (op, y, false, -1))
        | ILoadLoadFieldI (x, y, s, m) ->
            b.len <- b.len - 1;
            b.iod <- b.iod - 1;
            b.code.(b.len - 1) <- IJumpLocFCmpFalseI (x, y, s, m, op, false, -1);
            b.len - 1
        | IBinopConstI (op1, k)
          when b.len >= 3
               && b.lastlab < b.len - 2
               && match b.code.(b.len - 3) with
                  | ILoadLoadFieldI _ -> true
                  | _ -> false -> (
            match b.code.(b.len - 3) with
            | ILoadLoadFieldI (x, y, s, m) ->
                b.len <- b.len - 2;
                b.iod <- b.iod - 1;
                b.code.(b.len - 1) <-
                  IJumpLL2FBCCmpFalseI (x, y, s, m, op1, k, op, false, -1);
                b.len - 1
            | _ -> assert false)
        | IBinopConstI (op1, k) ->
            b.len <- b.len - 1;
            b.iod <- b.iod - 1;
            b.code.(b.len - 1) <- IJumpBCCmpFalseI (op1, k, op, false, -1);
            b.len - 1
        | _ ->
            b.code.(b.len - 1) <- IJumpCmpFalseI (op, false, -1);
            b.iod <- b.iod - 1;
            b.len - 1)
    | ILoadBinopConstI (n, op, k) when is_cmp op ->
        b.code.(b.len - 1) <- IJumpLocCmpConstFalseI (n, op, k, false, -1);
        b.iod <- b.iod - 1;
        b.len - 1
    | IBinopConstI (op, k) when is_cmp op -> (
        match
          if b.len >= 2 && b.lastlab < b.len - 1 then b.code.(b.len - 2)
          else IReturnUnit
        with
        | ILoadI n ->
            b.len <- b.len - 2;
            b.iod <- b.iod - 1;
            emit_patch b (IJumpLocCmpConstFalseI (n, op, k, false, -1))
        | ILoadFieldI (n, s, m) -> (
            (* a preceding indexed-load statement fuses in too: the
               list-walk loops test a member of the object the previous
               statement just fetched *)
            match
              if b.len >= 3 && b.lastlab < b.len - 2 then b.code.(b.len - 3)
              else IReturnUnit
            with
            | ITLFIndexIStoreT (a, s0, m0, i0, x0, ty0) ->
                b.len <- b.len - 3;
                b.iod <- b.iod - 1;
                emit_patch b
                  (ITLFIndexIStoreJumpFBCI
                     ((a, s0, m0, i0, x0, ty0), (n, s, m, op, k), false, -1))
            | _ ->
                b.len <- b.len - 2;
                b.iod <- b.iod - 1;
                emit_patch b
                  (IJumpLocFieldBCFalseI (false, n, s, m, op, k, false, -1)))
        | ITickLoadFieldI (n, s, m) ->
            b.len <- b.len - 2;
            b.iod <- b.iod - 1;
            emit_patch b (IJumpLocFieldBCFalseI (true, n, s, m, op, k, false, -1))
        | IThisFieldI (s, m) ->
            b.len <- b.len - 2;
            b.iod <- b.iod - 1;
            emit_patch b (IJumpThisFieldBCFalseI (false, s, m, op, k, false, -1))
        | ITickThisFieldI (s, m) ->
            b.len <- b.len - 2;
            b.iod <- b.iod - 1;
            emit_patch b (IJumpThisFieldBCFalseI (true, s, m, op, k, false, -1))
        | _ ->
            b.code.(b.len - 1) <- IJumpCmpConstFalseI (op, k, false, -1);
            b.iod <- b.iod - 1;
            b.len - 1)
    | ILoadBinopI (op, y) when is_cmp op -> (
        (* eager fusion already folded [ILoadI y; CMP]; recover the
           local-compare branches it used to feed *)
        match
          if b.lastlab < b.len - 1 then b.code.(b.len - 2) else IReturnUnit
        with
        | ILoadI x ->
            b.len <- b.len - 2;
            b.iod <- b.iod - 1;
            emit_patch b (IJumpLoc2CmpFalseI (op, x, y, false, -1))
        | _ ->
            (* re-emit (rather than replace in place) so the branch can
               still fuse with its new predecessor, e.g. into
               [ITickLoadFieldCmpLocFalseI] *)
            b.len <- b.len - 1;
            emit_patch b (IJumpLocCmpFalseI (op, y, false, -1)))
    | ILoadLoadFieldBinopI (x, y, s, m, op) when is_cmp op ->
        b.code.(b.len - 1) <- IJumpLocFCmpFalseI (x, y, s, m, op, false, -1);
        b.iod <- b.iod - 1;
        b.len - 1
    | IThisFieldBinopI (s, m, op)
      when is_cmp op && b.len >= 2
           && b.lastlab < b.len - 1
           && (match b.code.(b.len - 2) with ILoadI _ -> true | _ -> false) ->
        (* [local CMP this.f] — the canonical [i < this->n] loop guard *)
        let x =
          match b.code.(b.len - 2) with ILoadI x -> x | _ -> assert false
        in
        b.len <- b.len - 2;
        b.iod <- b.iod - 1;
        emit_patch b (IJumpLocTFCmpFalseI (op, x, s, m, false, -1))
    | _ -> emit_patch b (IJumpIfFalseI (false, -1))
  else emit_patch b (IJumpIfFalseI (false, -1))

(* Branch on a falsy condition whose compiled shape is [sh]. *)
let emit_cond_false b (sh : shape) =
  match sh with
  | SBox -> emit_branch_false b
  | SInt -> emit_branch_false_i b
  | SFlt -> emit_patch b (IJumpIfFalseF (false, -1))

(* Move the top of a typed stack over to the boxed stack. *)
let box_top b (sh : shape) =
  match sh with SBox -> () | SInt -> emit b IBoxI | SFlt -> emit b IBoxF

(* Same, but the boxed stack already holds one later value on top: the
   bridged value is inserted *under* it (pure stack juggling, used when
   a binop's lhs turned out typed while its rhs is boxed). *)
let box_under b (sh : shape) =
  match sh with SBox -> () | SInt -> emit b IBoxIU | SFlt -> emit b IBoxFU

let bop_of_assign (op : Ast.assign_op) : Ast.binop =
  match op with
  | Ast.AddAssign -> Ast.Add
  | Ast.SubAssign -> Ast.Sub
  | Ast.MulAssign -> Ast.Mul
  | Ast.DivAssign -> Ast.Div
  | Ast.ModAssign -> Ast.Mod
  | Ast.AndAssign -> Ast.BAnd
  | Ast.OrAssign -> Ast.BOr
  | Ast.XorAssign -> Ast.BXor
  | Ast.ShlAssign -> Ast.Shl
  | Ast.ShrAssign -> Ast.Shr
  | Ast.Assign -> assert false

(* Static shape prediction. Needed only where the compiler must commit
   to a stack before a subexpression is emitted (the lhs of a binop
   whose rhs is boxed, [&&]/[||] arms). It is syntax-directed over the
   same cases as [compile_expr], so the two always agree; even if they
   ever diverged, the cost would be an extra box bridge, never a
   semantic change — [compile_expr]'s returned shape is authoritative. *)
let rec shape_of (e : rexpr) : shape =
  match e with
  | RConst (VInt _) -> SInt
  | RConst (VFloat _) -> SFlt
  | RLocalI _ | RFieldI _ -> SInt
  | RLocalF _ | RFieldF _ -> SFlt
  | RUnary (op, a) -> (
      match shape_of a with
      | SInt -> SInt
      | SFlt -> (
          match op with
          | Ast.Neg | Ast.UPlus -> SFlt
          | Ast.Not -> SInt
          | Ast.BitNot -> SBox)
      | SBox -> SBox)
  | RBinary ((Ast.LAnd | Ast.LOr), x, y) ->
      if shape_of x = SInt && shape_of y = SInt then SInt else SBox
  | RBinary (op, x, y) -> (
      match (shape_of x, shape_of y) with
      | SInt, SInt -> SInt
      | (SInt | SFlt), (SInt | SFlt) -> if is_cmp op then SInt else SFlt
      | _ -> SBox)
  | RAssign (lhs, rhs, _) | RCompound (_, lhs, rhs, _) -> (
      match lhs with
      | LvLocalI _ | LvFieldI _ -> if shape_of rhs = SInt then SInt else SBox
      | LvLocalF _ | LvFieldF _ -> (
          match shape_of rhs with SInt | SFlt -> SFlt | SBox -> SBox)
      | _ -> SBox)
  | RIncDec (_, _, (LvLocalI _ | LvFieldI _)) -> SInt
  | RIncDec (_, _, (LvLocalF _ | LvFieldF _)) -> SFlt
  | RCastInt a -> ( match shape_of a with SBox -> SBox | _ -> SInt)
  | RCastFloat a -> ( match shape_of a with SBox -> SBox | _ -> SFlt)
  | _ -> SBox

type loopctx = { mutable brk : int list; mutable cont : int list; base : int }

(* [compile_expr] returns the shape of the value it left behind: which
   operand stack holds the result. Typed results stay untagged until a
   consumer genuinely needs a boxed value ([compile_expr_box]); the box
   bridges are ordinary instructions, so a conservative prediction can
   only cost a bridge dispatch, never change semantics. *)
let rec compile_expr b (e : rexpr) : shape =
  match e with
  | RConst (VInt n) -> emit b (IConstI n); SInt
  | RConst (VFloat f) -> emit b (IConstF f); SFlt
  | RConst v -> emit b (IConst v); SBox
  | RLocal i -> emit b (ILoad i); SBox
  | RLocalI i -> emit b (ILoadI i); SInt
  | RLocalF i -> emit b (ILoadF i); SFlt
  | RLocalRef i -> emit b (ILoadRef i); SBox
  | RGlobal i -> emit b (IGlobal i); SBox
  | RStatic i -> emit b (IStatic i); SBox
  | RThis -> emit b IThis; SBox
  | RUnary (op, a) -> (
      match compile_expr b a with
      | SInt ->
          emit b (IUnaryI op);
          SInt
      | SFlt -> (
          match op with
          | Ast.Neg ->
              emit b INegF;
              SFlt
          | Ast.UPlus -> SFlt
          | Ast.Not ->
              emit b INotF;
              SInt
          | Ast.BitNot ->
              (* "invalid unary operand" comes from the generic arm *)
              emit b IBoxF;
              emit b (IUnary op);
              SBox)
      | SBox ->
          emit b (IUnary op);
          SBox)
  | RBinary (Ast.LAnd, x, y) ->
      if shape_of x = SInt && shape_of y = SInt then begin
        (match compile_expr b x with SInt -> () | _ -> assert false);
        let j = emit_patch b (IAndFalseI (-1)) in
        (match compile_expr b y with SInt -> () | _ -> assert false);
        emit b IToBoolI;
        land_patches b [ j ];
        SInt
      end
      else begin
        compile_expr_box b x;
        let j = emit_patch b (IAndFalse (-1)) in
        compile_expr_box b y;
        emit b IToBool;
        land_patches b [ j ];
        SBox
      end
  | RBinary (Ast.LOr, x, y) ->
      if shape_of x = SInt && shape_of y = SInt then begin
        (match compile_expr b x with SInt -> () | _ -> assert false);
        let j = emit_patch b (IOrTrueI (-1)) in
        (match compile_expr b y with SInt -> () | _ -> assert false);
        emit b IToBoolI;
        land_patches b [ j ];
        SInt
      end
      else begin
        compile_expr_box b x;
        let j = emit_patch b (IOrTrue (-1)) in
        compile_expr_box b y;
        emit b IToBool;
        land_patches b [ j ];
        SBox
      end
  | RBinary (op, x, y) -> (
      let sx = compile_expr b x in
      (* if the rhs will be boxed, bridge the lhs now so the two reach
         the boxed stack in evaluation order (boxing is pure) *)
      let sx =
        if sx <> SBox && shape_of y = SBox then begin
          box_top b sx;
          SBox
        end
        else sx
      in
      let sy = compile_expr b y in
      match (sx, sy) with
      | SBox, sy ->
          box_top b sy;
          emit b (IBinop op);
          SBox
      | SInt, SInt ->
          emit b (IBinopII op);
          SInt
      | SFlt, SFlt ->
          if is_cmp op then begin
            emit b (ICmpFF op);
            SInt
          end
          else begin
            emit b (IArithFF op);
            SFlt
          end
      | SInt, SFlt ->
          if is_cmp op then begin
            emit b (ICmpIF op);
            SInt
          end
          else begin
            emit b (IArithIF op);
            SFlt
          end
      | SFlt, SInt ->
          if is_cmp op then begin
            emit b (ICmpFI op);
            SInt
          end
          else begin
            emit b (IArithFI op);
            SFlt
          end
      | (SInt | SFlt), SBox ->
          (* the prediction promised a typed rhs; bridge the lhs under
             the boxed rhs instead *)
          box_under b sx;
          emit b (IBinop op);
          SBox)
  | RAssign (lhs, rhs, ty) -> compile_assign b lhs rhs ty ~keep:true
  | RCompound (op, lhs, rhs, ty) -> compile_compound b op lhs rhs ty ~keep:true
  | RIncDec (w, fx, lv) -> compile_incdec b w fx lv ~keep:true
  | RCond (c, t, f) ->
      let shc = compile_expr b c in
      let j1 = emit_cond_false b shc in
      let d0 = b.od and di0 = b.iod and df0 = b.fod in
      compile_expr_box b t;
      let j2 = emit_patch b (IJump (-1)) in
      land_patches b [ j1 ];
      (* the two arms join at the same depth on all three stacks *)
      b.od <- d0;
      b.iod <- di0;
      b.fod <- df0;
      compile_expr_box b f;
      land_patches b [ j2 ];
      SBox
  | RCastInt a -> (
      match compile_expr b a with
      | SInt -> SInt
      | SFlt ->
          emit b ICastFI;
          SInt
      | SBox ->
          emit b ICastInt;
          SBox)
  | RCastFloat a -> (
      match compile_expr b a with
      | SFlt -> SFlt
      | SInt ->
          emit b ICastIF;
          SFlt
      | SBox ->
          emit b ICastFloat;
          SBox)
  | RField (oe, slots, m) ->
      compile_expr_box b oe;
      emit b (IField (slots, m));
      SBox
  | RFieldI (oe, slots, m) ->
      compile_expr_box b oe;
      emit b (IFieldI (slots, m));
      SInt
  | RFieldF (oe, slots, m) ->
      compile_expr_box b oe;
      emit b (IFieldF (slots, m));
      SFlt
  | RCall c ->
      compile_call b c;
      SBox
  | RAddrOf lv ->
      compile_lval b lv;
      emit b IAddrOf;
      SBox
  | RDeref a ->
      compile_expr_box b a;
      emit b IDeref;
      SBox
  | RIndex (a, i) ->
      compile_expr_box b a;
      (match compile_expr b i with
      | SInt -> emit b IIndexI
      | SFlt ->
          (* as_int (VFloat f) = int_of_float f *)
          emit b ICastFI;
          emit b IIndexI
      | SBox -> emit b IIndex);
      SBox
  | RMemPtrDeref (recv, pm) ->
      (* the receiver must be an object before the member pointer is even
         evaluated — same error order as the tree engine *)
      compile_expr_box b recv;
      emit b IAsObj;
      compile_expr_box b pm;
      emit b IMemPtrDeref;
      SBox
  | RNewObj { no_cid; no_cls; no_ctor; no_args } ->
      compile_args b no_args;
      emit b
        (INewObj
           {
             n_cid = no_cid;
             n_cls = no_cls;
             n_ctor = no_ctor;
             n_argc = Array.length no_args;
           });
      SBox
  | RNewScalar { ns_bytes; ns_ty } ->
      emit b (INewScalar (ns_bytes, ns_ty));
      SBox
  | RNewArrObj { na_cid; na_cls; na_ctor; na_len } ->
      compile_expr_box b na_len;
      emit b (INewArrObj { w_cid = na_cid; w_cls = na_cls; w_ctor = na_ctor });
      SBox
  | RNewArrScalar { nas_ty; nas_elem_bytes; nas_len } ->
      compile_expr_box b nas_len;
      emit b (INewArrScalar (nas_ty, nas_elem_bytes));
      SBox
  | RInvalid msg ->
      emit b (IRaise msg);
      SBox

and compile_expr_box b (e : rexpr) = box_top b (compile_expr b e)

(* Assignment, in expression ([~keep:true]: the stored value stays for
   the surrounding expression) or statement position. The lhs location
   is established before the rhs runs, exactly as the tree engine's
   [eval_lval]-then-[eval] order; for unboxed members that means
   [ILocFieldI]/[ILocFieldF] resolve the slot (and raise any
   missing-member error) first. Cross-shape stores bridge through the
   boxed instruction forms, which run the same [coerce] the tree engine
   ran. *)
and compile_assign b (lhs : rlval) rhs ty ~keep : shape =
  match lhs with
  | LvLocal i ->
      compile_expr_box b rhs;
      emit b (if keep then IStoreLocal (i, ty) else IStoreLocalPop (i, ty));
      SBox
  | LvLocalI i -> (
      match compile_expr b rhs with
      | SInt ->
          let ic = ic_of_ty ty in
          emit b
            (if keep then IStoreLocalI (ic, i) else IStoreLocalPopI (ic, i));
          if not keep then fuse_tfield_idx_store b;
          SInt
      | sh ->
          box_top b sh;
          if keep then emit b (IStoreLocalIB (ty, i))
          else emit_store_ib_pop b ty i;
          SBox)
  | LvLocalF i -> (
      match compile_expr b rhs with
      | SBox ->
          emit b
            (if keep then IStoreLocalFB (ty, i) else IStoreLocalFBPop (ty, i));
          SBox
      | sh ->
          (* coerce to float = float_of_int on an int rhs *)
          if sh = SInt then emit b ICastIF;
          emit b (if keep then IStoreLocalF i else IStoreLocalPopF i);
          SFlt)
  | LvFieldI (oe, s, m) -> (
      compile_expr_box b oe;
      emit b (ILocFieldI (s, m));
      match compile_expr b rhs with
      | SInt ->
          let ic = ic_of_ty ty in
          (* [this->dst = xform(this->src)]: fold the whole statement
             into one dispatch (the PRNG-step shape in hot loops) *)
          let fused =
            (not keep) && b.len >= 3
            && b.lastlab < b.len - 2
            &&
            match
              (b.code.(b.len - 3), b.code.(b.len - 2), b.code.(b.len - 1))
            with
            | ( IThisLocFieldI (sd, md),
                IThisFieldI (ss, ms),
                IBinopConst3I (o1, k1, o2, k2, o3, k3) ) ->
                b.len <- b.len - 3;
                b.od <- b.od - 1;
                b.iod <- b.iod - 2;
                emit b
                  (IThisXAssignI
                     (0, sd, md, ss, ms, XBc3 (o1, k1, o2, k2, o3, k3), ic));
                true
            | IThisLocFieldI (sd, md), IThisFieldI (ss, ms), IUnaryI op ->
                b.len <- b.len - 3;
                b.od <- b.od - 1;
                b.iod <- b.iod - 2;
                emit b (IThisXAssignI (0, sd, md, ss, ms, XUn op, ic));
                true
            | _ -> false
          in
          if not fused then begin
            emit b (if keep then IAssignFieldI ic else IAssignFieldIPop ic);
            (* [this->arr[ix]->f = rhs]: after the tail fusions above
               settle, collapse the whole statement (the dependency-edge
               stores dominating hot graph-building loops). The removed
               run is stack-neutral, so no depth rollback is needed. *)
            if not keep then begin
              fuse_this_idx_store b;
              fuse_rpn_store b
            end
          end;
          SInt
      | sh ->
          box_top b sh;
          emit b (if keep then IAssignFieldIB ty else IAssignFieldIBPop ty);
          SBox)
  | LvFieldF (oe, s, m) -> (
      compile_expr_box b oe;
      emit b (ILocFieldF (s, m));
      match compile_expr b rhs with
      | SBox ->
          emit b (if keep then IAssignFieldFB ty else IAssignFieldFBPop ty);
          SBox
      | sh ->
          if sh = SInt then emit b ICastIF;
          emit b (if keep then IAssignFieldF else IAssignFieldFPop);
          SFlt)
  | _ ->
      compile_lval b lhs;
      compile_expr_box b rhs;
      emit b (IAssign ty);
      if not keep then emit b IPop;
      SBox

and compile_compound b op (lhs : rlval) rhs ty ~keep : shape =
  match lhs with
  | LvLocalI i -> (
      match compile_expr b rhs with
      | SInt ->
          let bop = bop_of_assign op and ic = ic_of_ty ty in
          emit b
            (if keep then ICompoundLocalI (bop, ic, i)
             else ICompoundLocalIPop (bop, ic, i));
          SInt
      | sh ->
          box_top b sh;
          emit b
            (if keep then ICompoundLocalB (op, ty, i, BInt)
             else ICompoundLocalBPop (op, ty, i, BInt));
          SBox)
  | LvLocalF i -> (
      match compile_expr b rhs with
      | SBox ->
          emit b
            (if keep then ICompoundLocalB (op, ty, i, BFlt)
             else ICompoundLocalBPop (op, ty, i, BFlt));
          SBox
      | sh ->
          (* float-bank compound: [arith] converts an int rhs with
             [as_float] before the float operation *)
          if sh = SInt then emit b ICastIF;
          let bop = bop_of_assign op in
          emit b
            (if keep then ICompoundLocalF (bop, i)
             else ICompoundLocalFPop (bop, i));
          SFlt)
  | LvFieldI (oe, s, m) -> (
      compile_expr_box b oe;
      emit b (ILocFieldI (s, m));
      match compile_expr b rhs with
      | SInt ->
          let bop = bop_of_assign op and ic = ic_of_ty ty in
          emit b
            (if keep then ICompoundFieldI (bop, ic)
             else ICompoundFieldIPop (bop, ic));
          SInt
      | sh ->
          box_top b sh;
          emit b
            (if keep then ICompoundFieldB (op, ty, BInt)
             else ICompoundFieldBPop (op, ty, BInt));
          SBox)
  | LvFieldF (oe, s, m) -> (
      compile_expr_box b oe;
      emit b (ILocFieldF (s, m));
      match compile_expr b rhs with
      | SBox ->
          emit b
            (if keep then ICompoundFieldB (op, ty, BFlt)
             else ICompoundFieldBPop (op, ty, BFlt));
          SBox
      | sh ->
          if sh = SInt then emit b ICastIF;
          let bop = bop_of_assign op in
          emit b
            (if keep then ICompoundFieldF bop else ICompoundFieldFPop bop);
          SFlt)
  | _ ->
      compile_lval b lhs;
      compile_expr_box b rhs;
      emit b (ICompound (op, ty));
      if not keep then emit b IPop;
      SBox

and compile_incdec b w fx (lv : rlval) ~keep : shape =
  match lv with
  | LvLocal i ->
      if keep then emit b (IIncDecLocal (w, fx, i))
      else emit b (IIncDecLocalPop (w, i));
      SBox
  | LvLocalI i ->
      if keep then emit b (IIncDecLocalI (w, fx, i))
      else emit b (IIncDecLocalPopI (w, i));
      SInt
  | LvLocalF i ->
      if keep then emit b (IIncDecLocalF (w, fx, i))
      else emit b (IIncDecLocalPopF (w, i));
      SFlt
  | LvFieldI (oe, s, m) ->
      compile_expr_box b oe;
      emit b (ILocFieldI (s, m));
      if keep then emit b (IIncDecFieldI (w, fx))
      else emit b (IIncDecFieldIPop w);
      SInt
  | LvFieldF (oe, s, m) ->
      compile_expr_box b oe;
      emit b (ILocFieldF (s, m));
      if keep then emit b (IIncDecFieldF (w, fx))
      else emit b (IIncDecFieldFPop w);
      SFlt
  | _ ->
      compile_lval b lv;
      emit b (IIncDec (w, fx));
      if not keep then emit b IPop;
      SBox

and compile_lval b (lv : rlval) =
  match lv with
  | LvLocal i -> emit b (ILocLocal i)
  | LvLocalRef i -> emit b (ILocLocalRef i)
  | LvGlobal i -> emit b (ILocGlobal i)
  | LvStatic i -> emit b (ILocStatic i)
  | LvField (oe, slots, m) ->
      compile_expr_box b oe;
      emit b (ILocField (slots, m))
  | LvLocalI _ | LvLocalF _ | LvFieldI _ | LvFieldF _ ->
      (* unreachable from well-banked IR: resolve demotes every
         address-taken or reference-bound slot to the boxed bank, and
         the typed store/compound/incdec paths intercept the rest. The
         tree engine would fail at [ptr_of_loc] with this message. *)
      emit b (IRaise "cannot take the address of an unboxed slot")
  | LvDeref a ->
      compile_expr_box b a;
      emit b ILocDeref
  | LvIndex (a, i) ->
      compile_expr_box b a;
      compile_expr_box b i;
      emit b ILocIndex
  | LvMemPtrDeref (recv, pm) ->
      compile_expr_box b recv;
      emit b IAsObj;
      compile_expr_box b pm;
      emit b ILocMemPtr
  | LvInvalid msg -> emit b (IRaise msg)

and compile_arg b (a : arg_mode) =
  match a with
  | AVal e -> compile_expr_box b e
  | ARefScalar lv ->
      compile_lval b lv;
      emit b ILocToPtr
  | ARefObj e ->
      compile_expr_box b e;
      emit b IObjToPtr

and compile_args b (args : arg_mode array) = Array.iter (compile_arg b) args

and compile_call b (c : rcall) =
  match c with
  | RBuiltin (bi, args) ->
      Array.iter (compile_expr_box b) args;
      emit b (IBuiltin (bi, Array.length args))
  | RCallFunc { cf_func; cf_args } ->
      compile_args b cf_args;
      emit b (ICallFunc (cf_func, Array.length cf_args))
  | RCallMethod { cm_recv; cm_arrow; cm_func; cm_args } ->
      compile_expr_box b cm_recv;
      compile_args b cm_args;
      emit b
        (ICallMethod
           { m_func = cm_func; m_argc = Array.length cm_args; m_arrow = cm_arrow })
  | RCallVirtual { cv_recv; cv_name; cv_table; cv_args } ->
      compile_expr_box b cv_recv;
      compile_args b cv_args;
      emit b
        (ICallVirtual
           { v_name = cv_name; v_table = cv_table; v_argc = Array.length cv_args })
  | RCallFunPtr { fp_fn; fp_args } ->
      compile_expr_box b fp_fn;
      compile_args b fp_args;
      emit b (ICallFunPtr (Array.length fp_args))

and compile_decl b (d : rdecl) =
  match d with
  | DScalar { d_slot; d_ty } -> emit b (IDeclScalar (d_slot, d_ty))
  | DScalarI d_slot -> emit b (IDeclScalarI d_slot)
  | DScalarF d_slot -> emit b (IDeclScalarF d_slot)
  | DStackArrObj { d_slot; d_cid; d_cls; d_ctor; d_len } ->
      emit b
        (IDeclStackArr
           {
             ds_slot = d_slot;
             ds_cid = d_cid;
             ds_cls = d_cls;
             ds_ctor = d_ctor;
             ds_len = d_len;
           })
  | DExpr { d_slot; d_coerce; d_init } ->
      compile_expr_box b d_init;
      emit b (IStoreLocalPop (d_slot, d_coerce))
  | DExprI { d_slot; d_coerce; d_init } -> (
      match compile_expr b d_init with
      | SInt ->
          emit b (IStoreLocalPopI (ic_of_ty d_coerce, d_slot));
          fuse_tfield_idx_store b
      | sh ->
          box_top b sh;
          emit_store_ib_pop b d_coerce d_slot)
  | DExprF { d_slot; d_coerce; d_init } -> (
      match compile_expr b d_init with
      | SBox -> emit b (IStoreLocalFBPop (d_coerce, d_slot))
      | sh ->
          if sh = SInt then emit b ICastIF;
          emit b (IStoreLocalPopF d_slot))
  | DRefExpr { d_slot; d_init; d_lv } ->
      (* the initializer is evaluated for its value first, then again as
         a location, exactly as the tree engine did *)
      compile_expr_box b d_init;
      emit b IPop;
      compile_lval b d_lv;
      emit b ILocToPtr;
      emit b (IStoreRawPop d_slot)
  | DCtor { d_slot; d_cid; d_cls; d_ctor; d_args } ->
      compile_args b d_args;
      emit b
        (IDeclCtor
           {
             dc_slot = d_slot;
             dc_cid = d_cid;
             dc_cls = d_cls;
             dc_ctor = d_ctor;
             dc_argc = Array.length d_args;
           })
  | DFail msg -> emit b (IRaise msg)

(* An expression in statement position: its value is dropped, so route
   stores/compounds/incdecs to their pop forms directly (the direct
   forms keep the statement-level superinstruction fusions reachable). *)
(* Compile a condition in branch context: fall through when [c] is
   true, jump via the returned patch sites when it is false. A typed
   [&&] chain becomes cascaded branch-falses instead of a materialized
   boolean: each arm short-circuits straight to the join, and every
   comparison lands adjacent to its own branch, where
   [emit_branch_false_i] can fuse it. Restricted to int-shaped arms so
   falsiness is exactly [= 0] on both paths. *)
and compile_cond_false b (c : rexpr) : int list =
  match c with
  | RBinary (Ast.LAnd, x, y) when shape_of x = SInt && shape_of y = SInt ->
      let jx = compile_cond_false b x in
      let jy = compile_cond_false b y in
      jx @ jy
  | _ ->
      let sh = compile_expr b c in
      [ emit_cond_false b sh ]

and compile_expr_stmt b (e : rexpr) =
  match e with
  | RAssign (lhs, rhs, ty) -> ignore (compile_assign b lhs rhs ty ~keep:false)
  | RCompound (op, lhs, rhs, ty) ->
      ignore (compile_compound b op lhs rhs ty ~keep:false)
  | RIncDec (w, fx, lv) -> ignore (compile_incdec b w fx lv ~keep:false)
  | e -> (
      match compile_expr b e with
      | SBox -> emit b IPop
      | SInt -> emit b IPopI
      | SFlt -> emit b IPopF)

and compile_stmt b (lc : loopctx option) (s : rstmt) =
  emit b ITick;
  match s with
  | RSExpr e -> compile_expr_stmt b e
  | RSDecl ds -> List.iter (compile_decl b) ds
  | RSBlock (body, destroy) ->
      if Array.length destroy = 0 then Array.iter (compile_stmt b lc) body
      else begin
        emit b (IPushScope destroy);
        b.sdepth <- b.sdepth + 1;
        b.scoped <- true;
        Array.iter (compile_stmt b lc) body;
        b.sdepth <- b.sdepth - 1;
        emit b IPopScope
      end
  | RSIf (c, t, e) -> (
      let js = compile_cond_false b c in
      compile_stmt b lc t;
      match e with
      | None -> land_patches b js
      | Some es ->
          let j2 = emit_patch b (IJump (-1)) in
          land_patches b js;
          compile_stmt b lc es;
          land_patches b [ j2 ])
  | RSWhile (c, body) ->
      let top = here b in
      let jend = compile_cond_false b c in
      let lc' = { brk = []; cont = []; base = b.sdepth } in
      compile_stmt b (Some lc') body;
      emit b (IJump top);
      List.iter (patch_to b top) lc'.cont;  (* continue re-tests the condition *)
      land_patches b (jend @ lc'.brk)
  | RSDoWhile (body, c) ->
      let top = here b in
      let lc' = { brk = []; cont = []; base = b.sdepth } in
      compile_stmt b (Some lc') body;
      land_patches b lc'.cont;  (* continue falls into the condition *)
      (match compile_expr b c with
      | SBox -> emit b (IJumpIfTrue top)
      | SInt -> emit b (IJumpIfTrueI top)
      | SFlt -> emit b (IJumpIfTrueF top));
      land_patches b lc'.brk
  | RSFor { rf_init; rf_cond; rf_step; rf_body; rf_destroy } ->
      (* the destroy scope covers init + body, as the tree engine's
         [Fun.protect] around [exec_for] did; break exits to the scope
         pop, not past it *)
      let scoped = Array.length rf_destroy > 0 in
      if scoped then begin
        emit b (IPushScope rf_destroy);
        b.sdepth <- b.sdepth + 1;
        b.scoped <- true
      end;
      Option.iter (compile_stmt b lc) rf_init;
      let top = here b in
      let jend =
        match rf_cond with Some c -> compile_cond_false b c | None -> []
      in
      let lc' = { brk = []; cont = []; base = b.sdepth } in
      compile_stmt b (Some lc') rf_body;
      land_patches b lc'.cont;
      (match rf_step with Some e -> compile_expr_stmt b e | None -> ());
      emit b (IJump top);
      land_patches b (jend @ lc'.brk);
      if scoped then begin
        b.sdepth <- b.sdepth - 1;
        emit b IPopScope
      end
  | RSReturn None -> emit b IReturnUnit
  | RSReturn (Some e) -> (
      compile_expr_box b e;
      (* [return this->f] on an int member compiles to
         [ITickThisFieldI; IBoxI]; fold the box and the return in *)
      match
        if b.len >= 2 && b.lastlab < b.len - 1 then
          (b.code.(b.len - 2), b.code.(b.len - 1))
        else (IReturnUnit, IReturnUnit)
      with
      | ITickThisFieldI (s, m), IBoxI ->
          b.len <- b.len - 2;
          b.od <- b.od - 1;
          emit b (IReturnThisFieldI (s, m))
      | _ -> emit b IReturn)
  | RSBreak -> (
      match lc with
      | Some l ->
          let n = b.sdepth - l.base in
          if n > 0 then emit b (IExitScopes n);
          l.brk <- emit_patch b (IJump (-1)) :: l.brk
      | None -> emit b (IRaise "break outside a loop"))
  | RSContinue -> (
      match lc with
      | Some l ->
          let n = b.sdepth - l.base in
          if n > 0 then emit b (IExitScopes n);
          l.cont <- emit_patch b (IJump (-1)) :: l.cont
      | None -> emit b (IRaise "continue outside a loop"))
  | RSDelete e ->
      compile_expr_box b e;
      emit b IDelete
  | RSEmpty -> ()

let finish (b : buf) : cbody =
  let code = Array.sub b.code 0 b.len in
  (* Branch-target inlining, after all patching: a list-scan loop runs
     [guard -> (false edge) -> step -> back edge] with the step only
     *jump*-adjacent to the guard, so emit-time fusion can never see
     the pair. Replicate the step into the guard's false arm instead;
     the step's slot stays for the fall-in (then-branch) path. The tick
     and error sequence of the combined arm is the exact concatenation
     of the two instructions. *)
  Array.iteri
    (fun i ins ->
      match ins with
      | ITickLoadFieldCmpLocFalseT (j, s, m, op, n, texit)
        when texit >= 0 && texit < Array.length code -> (
          match code.(texit) with
          | ITickLoadFieldStoreJump (a, s2, m2, bdst, ty, tback) ->
              code.(i) <-
                IScanStep (j, s, m, op, n, a, s2, m2, bdst, ty, tback)
          | _ -> ())
      | _ -> ())
    code;
  Array.iteri
    (fun i ins ->
      match ins with
      | IJumpLocCmpConstFalseT (x, op0, v0, texit0)
        when i + 1 < Array.length code -> (
          match code.(i + 1) with
          | IScanStep (j, s, m, op, n, a, s2, m2, bdst, ty, tback)
            when tback = i ->
              code.(i) <-
                ILoopScan
                  (x, op0, v0, texit0, j, s, m, op, n, a, s2, m2, bdst, ty)
          | _ -> ())
      | _ -> ())
    code;
  (* The typed images of the two scan peepholes: an int guard member
     with a boxed (pointer) step member. *)
  Array.iteri
    (fun i ins ->
      match ins with
      | ITickLoadFieldCmpLocFalseI (j, s, m, op, n, true, texit)
        when texit >= 0 && texit < Array.length code -> (
          match code.(texit) with
          | ITickLoadFieldStoreJump (a, s2, m2, bdst, ty, tback) ->
              code.(i) <-
                IScanStepI (j, s, m, op, n, a, s2, m2, bdst, ty, tback)
          | _ -> ())
      | _ -> ())
    code;
  Array.iteri
    (fun i ins ->
      match ins with
      | IJumpLocCmpConstFalseI (x, op0, k0, true, texit0)
        when i + 1 < Array.length code -> (
          match code.(i + 1) with
          | IScanStepI (j, s, m, op, n, a, s2, m2, bdst, ty, tback)
            when tback = i ->
              code.(i) <-
                ILoopScanI
                  (x, op0, k0, texit0, j, s, m, op, n, a, s2, m2, bdst, ty)
          | _ -> ())
      | _ -> ())
    code;
  (* Back-edge guard inlining: a counted loop runs
     [guard -> body -> inc-and-jump-to-guard]; replicate the guard into
     the back edge so each iteration costs one dispatch less. The guard
     slot stays for the fall-in (loop entry) path. *)
  Array.iteri
    (fun i ins ->
      match ins with
      | IIncDecLocalJumpI (w, n, t) when t >= 0 && t < Array.length code -> (
          match code.(t) with
          | IJumpLocFCmpFalseI (x, y, s, m, op, tk, texit) ->
              code.(i) <-
                IIncDecJumpLocFCmpI (w, n, (x, y, s, m, op, tk, texit), t + 1)
          | IJumpLL2FBCCmpFalseI (x, y, s, m, op1, k, op2, tk, texit) ->
              code.(i) <-
                IIncDecJumpLL2FBCI
                  (w, n, (x, y, s, m, op1, k, op2, tk, texit), t + 1)
          | _ -> ())
      | _ -> ())
    code;
  {
    b_code = code;
    b_omax = b.omax + 8;  (* slack over the conservative linear estimate *)
    b_imax = (if b.iomax = 0 then 0 else b.iomax + 8);
    b_fmax = (if b.fomax = 0 then 0 else b.fomax + 8);
    b_scoped = b.scoped;
    b_id = -1;
  }

(* A statement body (function, constructor tail, destructor): falls off
   the end returning [VUnit], like the tree engine's implicit return. *)
let compile_body_stmt (s : rstmt) : cbody =
  let b = mk_buf () in
  compile_stmt b None s;
  emit b IReturnUnit;
  finish b

(* Constructor: virtual-base calls first (skipped via [kc_entry] when
   not most-derived), then direct bases, member initializers, body.
   The per-level tick is issued by the VM's [run_ctor], not in code. *)
let compile_ctor (plan : ctor_plan) : int * cbody =
  let b = mk_buf () in
  Array.iter
    (fun (bp : base_plan) ->
      compile_args b bp.bp_args;
      emit b (ICallCtor (bp.bp_ctor, Array.length bp.bp_args)))
    plan.cp_vbases;
  let entry = b.len in
  Array.iter
    (fun (bp : base_plan) ->
      compile_args b bp.bp_args;
      emit b (ICallCtor (bp.bp_ctor, Array.length bp.bp_args)))
    plan.cp_bases;
  Array.iter
    (fun fp ->
      match fp with
      | FPClass { fc_slots; fc_member; fc_cid; fc_cls; fc_ctor; fc_args } ->
          compile_args b fc_args;
          emit b
            (IInitField
               {
                 if_slots = fc_slots;
                 if_member = fc_member;
                 if_cid = fc_cid;
                 if_cls = fc_cls;
                 if_ctor = fc_ctor;
                 if_argc = Array.length fc_args;
               })
      | FPClassArr { fa_slots; fa_member; fa_cid; fa_cls; fa_ctor; fa_len } ->
          emit b
            (IInitFieldArr
               {
                 ia_slots = fa_slots;
                 ia_member = fa_member;
                 ia_cid = fa_cid;
                 ia_cls = fa_cls;
                 ia_ctor = fa_ctor;
                 ia_len = fa_len;
               })
      | FPScalar { fs_slots; fs_member; fs_bank; fs_coerce; fs_init } -> (
          (* initializer evaluated and coerced before the slot lookup,
             matching the tree engine's store order *)
          match fs_bank with
          | BBox ->
              compile_expr_box b fs_init;
              emit b
                (IInitFieldScalar
                   {
                     is_slots = fs_slots;
                     is_member = fs_member;
                     is_coerce = fs_coerce;
                   })
          | BInt -> (
              match compile_expr b fs_init with
              | SInt ->
                  emit b
                    (IInitFieldScalarI (fs_slots, fs_member, ic_of_ty fs_coerce))
              | sh ->
                  box_top b sh;
                  emit b
                    (IInitFieldScalarB (fs_slots, fs_member, fs_coerce, BInt)))
          | BFlt -> (
              match compile_expr b fs_init with
              | SBox ->
                  emit b
                    (IInitFieldScalarB (fs_slots, fs_member, fs_coerce, BFlt))
              | sh ->
                  if sh = SInt then emit b ICastIF;
                  emit b (IInitFieldScalarF (fs_slots, fs_member))))
      | FPBadInit -> emit b (IRaise "bad scalar member initializer"))
    plan.cp_fields;
  (match plan.cp_body with None -> () | Some body -> compile_stmt b None body);
  emit b IReturnUnit;
  (entry, finish b)

(* Global initializer: the bare expression (no tick — the tree engine
   evaluated these outside any statement). *)
let compile_ginit (e : rexpr) : cbody =
  let b = mk_buf () in
  compile_expr_box b e;
  emit b IReturn;
  finish b

let compile (rp : rprogram) : cprogram =
  Telemetry.Span.with_ "bytecode" @@ fun () ->
  let total = ref 0 in
  let bodies_rev = ref [] in
  let owners_rev = ref [] in
  let nbodies = ref 0 in
  (* register a compiled body: assign its id and remember its owner so
     the profiler can attribute per-pc counts back to a name *)
  let fin ~owner ?fidx (cb : cbody) =
    total := !total + Array.length cb.b_code;
    cb.b_id <- !nbodies;
    incr nbodies;
    bodies_rev := cb :: !bodies_rev;
    owners_rev := (owner, fidx) :: !owners_rev;
    cb
  in
  let cp_funcs =
    Array.mapi
      (fun fidx (rf : rfunc) ->
        let owner = Func_id.to_string rf.rf_id in
        let kind =
          match rf.rf_code with
          | CBody s -> KBody (fin ~owner ~fidx (compile_body_stmt s))
          | CCtor plan ->
              let entry, cb = compile_ctor plan in
              KCtor { kc_body = fin ~owner ~fidx cb; kc_entry = entry }
          | CDtor -> KDtor
          | CUnknown -> KUnknown
          | CUndefined -> KUndefined
          | CMissingCtor -> KMissingCtor
        in
        {
          c_id = rf.rf_id;
          c_frame = rf.rf_frame;
          c_params = rf.rf_params;
          c_kind = kind;
        })
      rp.rp_funcs
  in
  let cp_destroy =
    Array.map
      (fun (ci : class_info) ->
        let dp = ci.ci_destroy in
        {
          cd_dtor =
            Option.map
              (fun (fsize, body) ->
                ( fsize,
                  fin
                    ~owner:(Printf.sprintf "%s::~%s" ci.ci_name ci.ci_name)
                    (compile_body_stmt body) ))
              dp.dp_dtor;
          cd_fields = dp.dp_fields;
          cd_nv_bases = dp.dp_nv_bases;
          cd_vbases_rev = ci.ci_vbases_rev;
        })
      rp.rp_classes
  in
  let cp_ginit =
    Array.map
      (fun (g : rglobal) ->
        Option.map
          (fun e ->
            fin
              ~owner:(Printf.sprintf "global-init:%s" g.rg_name)
              (compile_ginit e))
          g.rg_init)
      rp.rp_globals
  in
  Telemetry.Counter.add instrs_counter !total;
  Telemetry.Counter.add bodies_counter !nbodies;
  {
    cp_rp = rp;
    cp_funcs;
    cp_destroy;
    cp_ginit;
    cp_bodies = Array.of_list (List.rev !bodies_rev);
    cp_owners = Array.of_list (List.rev !owners_rev);
  }

(* == virtual machine ========================================================== *)

type vm = {
  cp : cprogram;
  funcs : cfunc array;
  classes : class_info array;
  destroy : cdestroy array;
  profile : Profile.t;
  globals : harray;
  statics : harray;
  output : Buffer.t;
  mutable obj_counter : int;
  mutable steps : int;
  step_limit : int;
  (* nearer of [step_limit] and the next deadline checkpoint: the hot
     tick is one compare against it, everything else is cold *)
  mutable next_stop : int;
  mutable call_depth : int;
  mutable max_call_depth : int;
  call_depth_limit : int;
  heap_object_limit : int;
  (* hot-site profiler rows, or [[||]] when profiling is off: the
     dispatch loop tests emptiness once per body entry, the call path
     once per call — one predictable branch each when disabled *)
  prof_counts : int array array;
  prof_calls : int array;
}

let empty_vals : value array = [||]

(* shared sentinel: "no profiling rows for this body" *)
let no_prof_row : int array = [||]

(* Shared scope stack for bodies that never open a destroy scope
   ([b_scoped = false] implies no [IPushScope] in the code). *)
let no_scopes : int array list ref = ref []

let fresh_obj_id vm =
  let id = vm.obj_counter in
  if id >= vm.heap_object_limit then
    limit_exceeded "object limit exceeded (%d): possible runaway allocation"
      vm.heap_object_limit;
  vm.obj_counter <- id + 1;
  id

(* Reached every [deadline_check_interval] steps, or past the step
   limit — never on the per-step fast path (same scheme, and so the
   same raising step counts, as the tree engine). *)
let[@inline never] slow_tick vm =
  if vm.steps > vm.step_limit then
    limit_exceeded "step limit exceeded (%d): possible non-termination"
      vm.step_limit;
  check_deadline ();
  vm.next_stop <- min vm.step_limit (vm.steps + deadline_check_interval)

(* [ITickN]'s cold half: [s] is the already-batched step count. *)
let[@inline never] slow_tick_n vm s =
  if s > vm.step_limit then begin
    (* the raising tick leaves the same count the tree engine did *)
    vm.steps <- vm.step_limit + 1;
    limit_exceeded "step limit exceeded (%d): possible non-termination"
      vm.step_limit
  end;
  check_deadline ();
  vm.next_stop <- min vm.step_limit (s + deadline_check_interval)

let[@inline] tick vm =
  vm.steps <- vm.steps + 1;
  if vm.steps > vm.next_stop then slow_tick vm

(* Locations on the operand stack are pointer values (see the
   instruction-set comment). *)
let loc_read = function
  | VPtr (PCell r) -> !r
  | VPtr (PArr (h, i)) -> h.cells.(i)
  | _ -> assert false

let loc_write l v =
  match l with
  | VPtr (PCell r) -> r := v
  | VPtr (PArr (h, i)) -> h.cells.(i) <- v
  | _ -> assert false

(* [Value.ptr_of_loc]'s arr_id = -1 re-wrap, applied when a location
   escapes as a pointer value. *)
let loc_to_ptr = function
  | VPtr (PArr (h, i)) when h.arr_id <> -1 ->
      VPtr (PArr ({ arr_id = -1; cells = h.cells }, i))
  | l -> l

let this_obj (frame : frame) : obj =
  match frame.this with Some o -> o | None -> assert false

let cmp_test_slow op va vb =
  match op with
  | Ast.Eq -> value_eq va vb
  | Ast.Ne -> not (value_eq va vb)
  | _ -> compare_test op va vb

(* Int-int is the overwhelmingly common case in every benchmark's loop
   conditions; dispatch on the operator directly instead of computing a
   three-way compare first. Semantically identical to the slow path. *)
let[@inline] cmp_test op va vb =
  match (va, vb) with
  | VInt x, VInt y -> (
      match op with
      | Ast.Lt -> x < y
      | Ast.Gt -> x > y
      | Ast.Le -> x <= y
      | Ast.Ge -> x >= y
      | Ast.Eq -> x = y
      | Ast.Ne -> x <> y
      | _ -> assert false)
  | _ -> cmp_test_slow op va vb

let binop_slow op va vb =
  match op with
  | Ast.Eq -> VInt (if value_eq va vb then 1 else 0)
  | Ast.Ne -> VInt (if value_eq va vb then 0 else 1)
  | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge -> compare_values op va vb
  | _ -> arith op va vb

(* Same fast path for value-producing binops; results go through the
   shared [vint] cache so loop-counter arithmetic stays off the minor
   heap. Error strings on Div/Mod match [Value.arith] exactly. *)
let[@inline] binop op va vb =
  match (va, vb) with
  | VInt x, VInt y -> (
      match op with
      | Ast.Add -> vint (x + y)
      | Ast.Sub -> vint (x - y)
      | Ast.Mul -> vint (x * y)
      | Ast.Div ->
          if y = 0 then runtime_error "division by zero" else vint (x / y)
      | Ast.Mod ->
          if y = 0 then runtime_error "modulo by zero" else vint (x mod y)
      | Ast.Lt -> if x < y then vtrue else vfalse
      | Ast.Gt -> if x > y then vtrue else vfalse
      | Ast.Le -> if x <= y then vtrue else vfalse
      | Ast.Ge -> if x >= y then vtrue else vfalse
      | Ast.Eq -> if x = y then vtrue else vfalse
      | Ast.Ne -> if x <> y then vtrue else vfalse
      | Ast.BAnd -> vint (x land y)
      | Ast.BOr -> vint (x lor y)
      | Ast.BXor -> vint (x lxor y)
      | Ast.Shl -> vint (x lsl y)
      | Ast.Shr -> vint (x asr y)
      | _ -> binop_slow op va vb)
  | _ -> binop_slow op va vb

let[@inline] incdec_new which old =
  let delta = match which with Ast.Incr -> 1 | Ast.Decr -> -1 in
  match old with
  | VInt n -> vint (n + delta)
  | VFloat f -> VFloat (f +. float_of_int delta)
  | VPtr (PArr (h, i)) -> VPtr (PArr (h, i + delta))
  | _ -> runtime_error "cannot increment this value"

(* The [a[i]] read shared by IIndex and its fused forms; [iv] is the
   already-coerced integer index. Error strings are the tree engine's. *)
let[@inline] index_read av iv =
  match av with
  | VArr h | VPtr (PArr (h, 0)) ->
      if iv < 0 || iv >= Array.length h.cells then
        runtime_error "array index %d out of bounds (size %d)" iv
          (Array.length h.cells);
      h.cells.(iv)
  | VPtr (PArr (h, off)) ->
      let j = off + iv in
      if j < 0 || j >= Array.length h.cells then
        runtime_error "array index out of bounds";
      h.cells.(j)
  | VStr s ->
      if iv < 0 || iv >= String.length s then VInt 0
      else VInt (Char.code s.[iv])
  | VNull -> runtime_error "indexing a null pointer"
  | _ -> runtime_error "indexing a non-array value"

(* ------------------------------------------------------------------ *)
(* Typed (untagged) operator semantics: the unboxed images of [binop], *)
(* [cmp_test] and [Value.arith] on operands whose tags the compiler    *)
(* already proved. Same results, same error strings, no dispatch.      *)
(* ------------------------------------------------------------------ *)

let[@inline] ibinop_i op (x : int) (y : int) : int =
  match op with
  | Ast.Add -> x + y
  | Ast.Sub -> x - y
  | Ast.Mul -> x * y
  | Ast.Div -> if y = 0 then runtime_error "division by zero" else x / y
  | Ast.Mod -> if y = 0 then runtime_error "modulo by zero" else x mod y
  | Ast.Lt -> if x < y then 1 else 0
  | Ast.Gt -> if x > y then 1 else 0
  | Ast.Le -> if x <= y then 1 else 0
  | Ast.Ge -> if x >= y then 1 else 0
  | Ast.Eq -> if x = y then 1 else 0
  | Ast.Ne -> if x <> y then 1 else 0
  | Ast.BAnd -> x land y
  | Ast.BOr -> x lor y
  | Ast.BXor -> x lxor y
  | Ast.Shl -> x lsl y
  | Ast.Shr -> x asr y
  | Ast.LAnd | Ast.LOr -> assert false (* never emitted as a binop *)

let[@inline] icmp op (x : int) (y : int) : bool =
  match op with
  | Ast.Lt -> x < y
  | Ast.Gt -> x > y
  | Ast.Le -> x <= y
  | Ast.Ge -> x >= y
  | Ast.Eq -> x = y
  | Ast.Ne -> x <> y
  | _ -> assert false

(* Float relationals go through [compare] (total order, nan smallest)
   and equality through IEEE [=]/[<>], exactly like [Value.compare_test]
   and [value_eq] on two [VFloat]s. *)
let[@inline] fcmp_test op (x : float) (y : float) : bool =
  match op with
  | Ast.Eq -> x = y
  | Ast.Ne -> x <> y
  | Ast.Lt -> compare x y < 0
  | Ast.Gt -> compare x y > 0
  | Ast.Le -> compare x y <= 0
  | Ast.Ge -> compare x y >= 0
  | _ -> assert false

(* [Value.arith]'s float branch: only these four exist there. *)
let[@inline] fbinop op (x : float) (y : float) : float =
  match op with
  | Ast.Add -> x +. y
  | Ast.Sub -> x -. y
  | Ast.Mul -> x *. y
  | Ast.Div ->
      if y = 0.0 then runtime_error "floating division by zero" else x /. y
  | _ -> runtime_error "invalid floating operands"

let[@inline] incdec_delta which =
  match which with Ast.Incr -> 1 | Ast.Decr -> -1

let frame_of_shape (sh : fshape) this =
  mk_frame ~ints:sh.nint ~flts:sh.nflt sh.nbox this

let rec bind_params vm frame (cf : cfunc) (src : value array) base argc =
  ignore vm;
  let n = Array.length cf.c_params in
  if n <> argc then
    runtime_error "arity mismatch calling %s" (Func_id.to_string cf.c_id);
  for i = 0 to n - 1 do
    let p = cf.c_params.(i) in
    match p.rp_bank with
    | BInt -> frame.ilocals.(p.rp_slot) <- as_int (coerce p.rp_coerce src.(base + i))
    | BFlt ->
        frame.flocals.(p.rp_slot) <- as_float (coerce p.rp_coerce src.(base + i))
    | BBox ->
        frame.locals.cells.(p.rp_slot) <-
          (if p.rp_ref then src.(base + i) (* references carry locations *)
           else coerce p.rp_coerce src.(base + i))
  done

(* Same protocol as the tree engine's [call_function]: depth guard and
   tick happen before the depth-restoring handler is installed, so a
   limit hit there leaves the depth incremented, exactly as the tree
   engine's pre-[Fun.protect] tick did. *)
and call_function vm fi ~this (src : value array) base argc : value =
  if Array.length vm.prof_calls <> 0 then
    Array.unsafe_set vm.prof_calls fi (Array.unsafe_get vm.prof_calls fi + 1);
  vm.call_depth <- vm.call_depth + 1;
  if vm.call_depth > vm.max_call_depth then
    vm.max_call_depth <- vm.call_depth;
  if vm.call_depth > vm.call_depth_limit then
    limit_exceeded "call depth limit exceeded (%d): possible runaway recursion"
      vm.call_depth_limit;
  tick vm;
  match invoke vm fi ~this src base argc with
  | v ->
      vm.call_depth <- vm.call_depth - 1;
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      vm.call_depth <- vm.call_depth - 1;
      Printexc.raise_with_backtrace e bt

and invoke vm fi ~this (src : value array) base argc : value =
  let cf = vm.funcs.(fi) in
  match cf.c_kind with
  | KBody body ->
      let frame = frame_of_shape cf.c_frame this in
      bind_params vm frame cf src base argc;
      exec_code vm frame body 0
  | KCtor { kc_body; kc_entry } -> (
      match this with
      | Some o ->
          run_ctor vm o cf kc_body kc_entry ~most_derived:false src base argc;
          VUnit
      | None -> runtime_error "constructor called without an object")
  | KDtor -> (
      match this with
      | Some o ->
          destroy_complete vm o;
          VUnit
      | None -> runtime_error "destructor called without an object")
  | KMissingCtor -> (
      match this with
      | Some _ ->
          (* constructor dispatch ticked before discovering the body was
             missing, as in the tree engine *)
          tick vm;
          runtime_error "missing constructor %s" (Func_id.to_string cf.c_id)
      | None -> runtime_error "constructor called without an object")
  | KUnknown ->
      runtime_error "call to unknown function %s" (Func_id.to_string cf.c_id)
  | KUndefined ->
      runtime_error "call to undefined (external) function %s"
        (Func_id.to_string cf.c_id)

and run_ctor vm (o : obj) (cf : cfunc) kc_body kc_entry ~most_derived
    (src : value array) base argc =
  tick vm;
  let frame = frame_of_shape cf.c_frame (Some o) in
  bind_params vm frame cf src base argc;
  ignore (exec_code vm frame kc_body (if most_derived then 0 else kc_entry))

(* Constructor dispatch without the call-depth protocol: base, virtual
   base and member-subobject constructors run at the caller's depth,
   matching the tree engine's direct [run_ctor_idx]. *)
and run_ctor_idx vm (o : obj) fi ~most_derived (src : value array) base argc =
  let cf = vm.funcs.(fi) in
  match cf.c_kind with
  | KCtor { kc_body; kc_entry } ->
      run_ctor vm o cf kc_body kc_entry ~most_derived src base argc
  | _ ->
      tick vm;
      runtime_error "missing constructor %s" (Func_id.to_string cf.c_id)

and construct_raw vm cid cls ctor (src : value array) base argc : obj =
  let id = fresh_obj_id vm in
  let o = new_obj_of vm.classes cid cls id in
  run_ctor_idx vm o ctor ~most_derived:true src base argc;
  o

and construct_journalled vm ~kind cid cls ctor (src : value array) base argc :
    obj =
  let id = fresh_obj_id vm in
  let o = new_obj_of vm.classes cid cls id in
  Profile.record_alloc vm.profile ~id ~kind ~cls ~count:1;
  run_ctor_idx vm o ctor ~most_derived:true src base argc;
  o

and destroy_complete vm (o : obj) = destroy_from vm o o.obj_cid ~most_derived:true

and destroy_from vm (o : obj) cid ~most_derived =
  tick vm;
  if cid >= 0 then begin
    let cd = vm.destroy.(cid) in
    (match cd.cd_dtor with
    | Some (fsize, body) ->
        let frame = frame_of_shape fsize (Some o) in
        ignore (exec_code vm frame body 0)
    | None -> ());
    (* member subobjects, reverse declaration order *)
    Array.iter
      (fun df ->
        match df with
        | DFClass slots -> (
            let s = if o.obj_cid >= 0 then slots.(o.obj_cid) else -1 in
            if s >= 0 then
              match o.fields.cells.(s) with
              | VObj sub -> destroy_complete vm sub
              | _ -> ())
        | DFClassArr slots -> (
            let s = if o.obj_cid >= 0 then slots.(o.obj_cid) else -1 in
            if s >= 0 then
              match o.fields.cells.(s) with
              | VArr h ->
                  Array.iter
                    (function VObj sub -> destroy_complete vm sub | _ -> ())
                    h.cells
              | _ -> ()))
      cd.cd_fields;
    Array.iter
      (fun bcid -> destroy_from vm o bcid ~most_derived:false)
      cd.cd_nv_bases;
    if most_derived then
      Array.iter
        (fun vcid -> destroy_from vm o vcid ~most_derived:false)
        cd.cd_vbases_rev
  end

and destroy_slots vm (locals : value array) (slots : int array) =
  Array.iter
    (fun s ->
      match locals.(s) with
      | VObj o ->
          destroy_complete vm o;
          Profile.record_free vm.profile o.obj_id;
          locals.(s) <- VUnit
      | VArr h when h.arr_id >= 0 ->
          Array.iter
            (function VObj o -> destroy_complete vm o | _ -> ())
            h.cells;
          Profile.record_free vm.profile h.arr_id;
          locals.(s) <- VUnit
      | _ -> ())
    slots

(* Unwind this invocation's destroy scopes around an in-flight
   exception: each scope's destructor failure replaces the exception
   with [Fun.Finally_raised], exactly as the nested [Fun.protect]s of
   the tree engine did. *)
and unwind_exn vm (locals : value array) scopes e =
  match !scopes with
  | [] -> e
  | slots :: rest -> (
      scopes := rest;
      match destroy_slots vm locals slots with
      | () -> unwind_exn vm locals scopes e
      | exception fe -> unwind_exn vm locals scopes (Fun.Finally_raised fe))

(* Scope destruction on the normal return path; a failure surfaces as
   [Finally_raised] and the in-loop handler unwinds the rest. *)
and ret_unwind vm (locals : value array) scopes =
  match !scopes with
  | [] -> ()
  | slots :: rest ->
      scopes := rest;
      (try destroy_slots vm locals slots
       with fe -> raise (Fun.Finally_raised fe));
      ret_unwind vm locals scopes

and exec_builtin vm (ost : value array) base (b : builtin) argc : unit =
  match (b, argc) with
  | BPrintInt, 1 ->
      Buffer.add_string vm.output (string_of_int (as_int ost.(base)))
  | BPrintChar, 1 ->
      Buffer.add_char vm.output (Char.chr (as_int ost.(base) land 255))
  | BPrintFloat, 1 ->
      Buffer.add_string vm.output (Printf.sprintf "%g" (as_float ost.(base)))
  | BPrintStr, 1 -> (
      match ost.(base) with
      | VStr s -> Buffer.add_string vm.output s
      | VNull -> runtime_error "print_str(NULL)"
      | _ -> runtime_error "bad builtin call")
  | BPrintNl, 0 -> Buffer.add_char vm.output '\n'
  | BFree, 1 -> (
      match ost.(base) with
      | VPtr (PObj o) -> Profile.record_free vm.profile o.obj_id
      | VPtr (PArr (h, _)) when h.arr_id >= 0 ->
          Profile.record_free vm.profile h.arr_id
      | VNull | VPtr _ -> ()
      | _ -> runtime_error "free of a non-pointer")
  | BAbort, 0 -> raise Abort_called
  | _ -> runtime_error "bad builtin call"

and exec_code vm (frame : frame) (b : cbody) (start : int) : value =
  let code = b.b_code in
  let ost = if b.b_omax > 0 then Array.make b.b_omax VUnit else empty_vals in
  (* Untagged operand stacks: int and float operands live here, never
     boxed; purely generic bodies keep both bounds at 0 and share the
     empty arrays. *)
  let ist = if b.b_imax > 0 then Array.make b.b_imax 0 else no_ints in
  let fstk = if b.b_fmax > 0 then Array.make b.b_fmax 0.0 else no_floats in
  let locals = frame.locals.cells in
  let ilocals = frame.ilocals in
  let flocals = frame.flocals in
  let scopes = if b.b_scoped then ref [] else no_scopes in
  let prow =
    if Array.length vm.prof_counts = 0 || b.b_id < 0 then no_prof_row
    else Array.unsafe_get vm.prof_counts b.b_id
  in
  let profiling = prow != no_prof_row in
  let rec loop pc sp isp fsp : value =
    if profiling then
      Array.unsafe_set prow pc (Array.unsafe_get prow pc + 1);
    match Array.unsafe_get code pc with
    | ITick ->
        vm.steps <- vm.steps + 1;
        if vm.steps > vm.next_stop then slow_tick vm;
        loop (pc + 1) sp isp fsp
    | IConst v ->
        ost.(sp) <- v;
        loop (pc + 1) (sp + 1) isp fsp
    | ILoad i ->
        ost.(sp) <- Array.unsafe_get locals i;
        loop (pc + 1) (sp + 1) isp fsp
    | ILoadRef i ->
        ost.(sp) <-
          (match Array.unsafe_get locals i with
          | VPtr (PCell r) -> !r
          | VPtr (PArr (h, j)) -> h.cells.(j)
          | VPtr (PObj o) -> VObj o
          | v -> v);
        loop (pc + 1) (sp + 1) isp fsp
    | IGlobal i ->
        ost.(sp) <- vm.globals.cells.(i);
        loop (pc + 1) (sp + 1) isp fsp
    | IStatic i ->
        ost.(sp) <- vm.statics.cells.(i);
        loop (pc + 1) (sp + 1) isp fsp
    | IThis ->
        ost.(sp) <-
          (match frame.this with
          | Some o -> VPtr (PObj o)
          | None -> runtime_error "'this' outside a method");
        loop (pc + 1) (sp + 1) isp fsp
    | IPop -> loop (pc + 1) (sp - 1) isp fsp
    | IUnary op ->
        ost.(sp - 1) <- unary op ost.(sp - 1);
        loop (pc + 1) sp isp fsp
    | IBinop op ->
        ost.(sp - 2) <- binop op ost.(sp - 2) ost.(sp - 1);
        loop (pc + 1) (sp - 1) isp fsp
    | IToBool ->
        ost.(sp - 1) <- (if truthy ost.(sp - 1) then vtrue else vfalse);
        loop (pc + 1) sp isp fsp
    | ICastInt ->
        (match ost.(sp - 1) with
        | VInt _ -> ()
        | v -> ost.(sp - 1) <- vint (as_int v));
        loop (pc + 1) sp isp fsp
    | ICastFloat ->
        ost.(sp - 1) <- VFloat (as_float ost.(sp - 1));
        loop (pc + 1) sp isp fsp
    | IField (slots, m) ->
        let o = as_obj ost.(sp - 1) in
        ost.(sp - 1) <- o.fields.cells.(field_slot o slots m);
        loop (pc + 1) sp isp fsp
    | IDeref ->
        ost.(sp - 1) <-
          (match ost.(sp - 1) with
          | VPtr (PCell r) -> !r
          | VPtr (PObj o) -> VObj o
          | VPtr (PArr (h, i)) ->
              if i < 0 || i >= Array.length h.cells then
                runtime_error "pointer dereference out of bounds";
              h.cells.(i)
          | VNull -> runtime_error "null pointer dereference"
          | VStr s ->
              if String.length s > 0 then VInt (Char.code s.[0]) else VInt 0
          | _ -> runtime_error "dereference of a non-pointer");
        loop (pc + 1) sp isp fsp
    | IIndex ->
        let iv = as_int ost.(sp - 1) in
        ost.(sp - 2) <-
          (match ost.(sp - 2) with
          | VArr h | VPtr (PArr (h, 0)) ->
              if iv < 0 || iv >= Array.length h.cells then
                runtime_error "array index %d out of bounds (size %d)" iv
                  (Array.length h.cells);
              h.cells.(iv)
          | VPtr (PArr (h, off)) ->
              let j = off + iv in
              if j < 0 || j >= Array.length h.cells then
                runtime_error "array index out of bounds";
              h.cells.(j)
          | VStr s ->
              if iv < 0 || iv >= String.length s then VInt 0
              else VInt (Char.code s.[iv])
          | VNull -> runtime_error "indexing a null pointer"
          | _ -> runtime_error "indexing a non-array value");
        loop (pc + 1) (sp - 1) isp fsp
    | IAsObj ->
        ost.(sp - 1) <- VObj (as_obj ost.(sp - 1));
        loop (pc + 1) sp isp fsp
    | IMemPtrDeref ->
        let o = as_obj ost.(sp - 2) in
        ost.(sp - 2) <-
          (match ost.(sp - 1) with
          | VMemPtr m -> o.fields.cells.(memptr_slot_of vm.classes o m)
          | VNull -> runtime_error "null member pointer dereference"
          | _ -> runtime_error ".*/->* with a non-member-pointer");
        loop (pc + 1) (sp - 1) isp fsp
    | IAddrOf ->
        let l = ost.(sp - 1) in
        ost.(sp - 1) <-
          (* taking the address of an embedded object yields an object
             pointer, not a cell pointer *)
          (match loc_read l with VObj o -> VPtr (PObj o) | _ -> loc_to_ptr l);
        loop (pc + 1) sp isp fsp
    | ILocLocal i ->
        ost.(sp) <- VPtr (PArr (frame.locals, i));
        loop (pc + 1) (sp + 1) isp fsp
    | ILocLocalRef i ->
        ost.(sp) <-
          (match Array.unsafe_get locals i with
          | VPtr (PCell _) as p -> p
          | VPtr (PArr _) as p -> p
          | _ -> VPtr (PArr (frame.locals, i)));
        loop (pc + 1) (sp + 1) isp fsp
    | ILocGlobal i ->
        ost.(sp) <- VPtr (PArr (vm.globals, i));
        loop (pc + 1) (sp + 1) isp fsp
    | ILocStatic i ->
        ost.(sp) <- VPtr (PArr (vm.statics, i));
        loop (pc + 1) (sp + 1) isp fsp
    | ILocField (slots, m) ->
        let o = as_obj ost.(sp - 1) in
        ost.(sp - 1) <- VPtr (PArr (o.fields, field_slot o slots m));
        loop (pc + 1) sp isp fsp
    | ILocDeref ->
        ost.(sp - 1) <-
          (match ost.(sp - 1) with
          | VPtr (PCell _) as p -> p
          | VPtr (PArr _) as p -> p
          | VPtr (PObj _) ->
              runtime_error "cannot assign whole objects through a pointer"
          | VNull -> runtime_error "null pointer dereference"
          | _ -> runtime_error "dereference of a non-pointer");
        loop (pc + 1) sp isp fsp
    | ILocIndex ->
        let iv = as_int ost.(sp - 1) in
        ost.(sp - 2) <-
          (match ost.(sp - 2) with
          | VArr h -> VPtr (PArr (h, iv))
          | VPtr (PArr (h, off)) -> VPtr (PArr (h, off + iv))
          | _ -> runtime_error "indexing a non-array value");
        loop (pc + 1) (sp - 1) isp fsp
    | ILocMemPtr ->
        let o = as_obj ost.(sp - 2) in
        ost.(sp - 2) <-
          (match ost.(sp - 1) with
          | VMemPtr m -> VPtr (PArr (o.fields, memptr_slot_of vm.classes o m))
          | _ -> runtime_error ".*/->* with a non-member-pointer");
        loop (pc + 1) (sp - 1) isp fsp
    | ILocToPtr ->
        ost.(sp - 1) <- loc_to_ptr ost.(sp - 1);
        loop (pc + 1) sp isp fsp
    | IObjToPtr ->
        (match ost.(sp - 1) with
        | VObj o -> ost.(sp - 1) <- VPtr (PObj o)
        | _ -> ());
        loop (pc + 1) sp isp fsp
    | IAssign ty ->
        let v = coerce ty ost.(sp - 1) in
        loc_write ost.(sp - 2) v;
        ost.(sp - 2) <- v;
        loop (pc + 1) (sp - 1) isp fsp
    | ICompound (op, ty) ->
        let l = ost.(sp - 2) in
        let v = compound_op op (loc_read l) ost.(sp - 1) ty in
        loc_write l v;
        ost.(sp - 2) <- v;
        loop (pc + 1) (sp - 1) isp fsp
    | IIncDec (which, fix) ->
        let l = ost.(sp - 1) in
        let old = loc_read l in
        let nv = incdec_new which old in
        loc_write l nv;
        ost.(sp - 1) <- (match fix with Ast.Prefix -> nv | Ast.Postfix -> old);
        loop (pc + 1) sp isp fsp
    | IStoreLocal (i, ty) ->
        let v = coerce ty ost.(sp - 1) in
        Array.unsafe_set locals i v;
        ost.(sp - 1) <- v;
        loop (pc + 1) sp isp fsp
    | IStoreLocalPop (i, ty) ->
        Array.unsafe_set locals i (coerce ty ost.(sp - 1));
        loop (pc + 1) (sp - 1) isp fsp
    | IStoreRawPop i ->
        Array.unsafe_set locals i ost.(sp - 1);
        loop (pc + 1) (sp - 1) isp fsp
    | IIncDecLocal (which, fix, i) ->
        let old = Array.unsafe_get locals i in
        let nv = incdec_new which old in
        Array.unsafe_set locals i nv;
        ost.(sp) <- (match fix with Ast.Prefix -> nv | Ast.Postfix -> old);
        loop (pc + 1) (sp + 1) isp fsp
    | IIncDecLocalPop (which, i) ->
        Array.unsafe_set locals i (incdec_new which (Array.unsafe_get locals i));
        loop (pc + 1) sp isp fsp
    | IJump t -> loop t sp isp fsp
    | IJumpIfFalse t ->
        if truthy ost.(sp - 1) then loop (pc + 1) (sp - 1) isp fsp
        else loop t (sp - 1) isp fsp
    | IJumpIfTrue t ->
        if truthy ost.(sp - 1) then loop t (sp - 1) isp fsp
        else loop (pc + 1) (sp - 1) isp fsp
    | IJumpCmpFalse (op, t) ->
        if cmp_test op ost.(sp - 2) ost.(sp - 1) then loop (pc + 1) (sp - 2) isp fsp
        else loop t (sp - 2) isp fsp
    | IAndFalse t ->
        if truthy ost.(sp - 1) then loop (pc + 1) (sp - 1) isp fsp
        else begin
          ost.(sp - 1) <- VInt 0;
          loop t sp isp fsp
        end
    | IOrTrue t ->
        if truthy ost.(sp - 1) then begin
          ost.(sp - 1) <- VInt 1;
          loop t sp isp fsp
        end
        else loop (pc + 1) (sp - 1) isp fsp
    | IPushScope slots ->
        scopes := slots :: !scopes;
        loop (pc + 1) sp isp fsp
    | IPopScope ->
        (match !scopes with
        | slots :: rest ->
            scopes := rest;
            (try destroy_slots vm locals slots
             with fe -> raise (Fun.Finally_raised fe))
        | [] -> assert false);
        loop (pc + 1) sp isp fsp
    | IExitScopes n ->
        for _ = 1 to n do
          match !scopes with
          | slots :: rest ->
              scopes := rest;
              (try destroy_slots vm locals slots
               with fe -> raise (Fun.Finally_raised fe))
          | [] -> assert false
        done;
        loop (pc + 1) sp isp fsp
    | IReturn ->
        let v = ost.(sp - 1) in
        if b.b_scoped then ret_unwind vm locals scopes;
        v
    | IReturnUnit ->
        if b.b_scoped then ret_unwind vm locals scopes;
        VUnit
    | IRaise msg -> runtime_error "%s" msg
    | INewObj { n_cid; n_cls; n_ctor; n_argc } ->
        let base = sp - n_argc in
        let o =
          construct_journalled vm ~kind:Profile.Heap n_cid n_cls n_ctor ost base
            n_argc
        in
        ost.(base) <- VPtr (PObj o);
        loop (pc + 1) (base + 1) isp fsp
    | INewScalar (bytes, ty) ->
        ignore (Profile.record_scalar_alloc vm.profile ~bytes);
        ost.(sp) <- VPtr (PArr ({ arr_id = -1; cells = [| default_value ty |] }, 0));
        loop (pc + 1) (sp + 1) isp fsp
    | INewArrObj { w_cid; w_cls; w_ctor } ->
        let n = as_int ost.(sp - 1) in
        if n < 0 then runtime_error "negative array size in new[]";
        let id = fresh_obj_id vm in
        Profile.record_alloc vm.profile ~id ~kind:Profile.HeapArray ~cls:w_cls
          ~count:n;
        let cells =
          Array.init n (fun _ ->
              VObj (construct_raw vm w_cid w_cls w_ctor empty_vals 0 0))
        in
        ost.(sp - 1) <- VPtr (PArr ({ arr_id = id; cells }, 0));
        loop (pc + 1) sp isp fsp
    | INewArrScalar (ty, elem_bytes) ->
        let n = as_int ost.(sp - 1) in
        if n < 0 then runtime_error "negative array size in new[]";
        let id = Profile.record_scalar_alloc vm.profile ~bytes:(n * elem_bytes) in
        let cells = Array.init n (fun _ -> default_value ty) in
        ost.(sp - 1) <- VPtr (PArr ({ arr_id = id; cells }, 0));
        loop (pc + 1) sp isp fsp
    | IDelete ->
        (match ost.(sp - 1) with
        | VNull -> ()
        | VPtr (PObj o) ->
            destroy_complete vm o;
            Profile.record_free vm.profile o.obj_id
        | VPtr (PArr (h, _)) ->
            Array.iter
              (function VObj o -> destroy_complete vm o | _ -> ())
              h.cells;
            if h.arr_id >= 0 then Profile.record_free vm.profile h.arr_id
        | _ -> runtime_error "delete of a non-pointer value");
        loop (pc + 1) (sp - 1) isp fsp
    | IDeclScalar (slot, ty) ->
        Array.unsafe_set locals slot (default_value ty);
        loop (pc + 1) sp isp fsp
    | IDeclStackArr { ds_slot; ds_cid; ds_cls; ds_ctor; ds_len } ->
        let id = fresh_obj_id vm in
        Profile.record_alloc vm.profile ~id ~kind:Profile.Stack ~cls:ds_cls
          ~count:ds_len;
        let cells =
          Array.init ds_len (fun _ ->
              VObj (construct_raw vm ds_cid ds_cls ds_ctor empty_vals 0 0))
        in
        locals.(ds_slot) <- VArr { arr_id = id; cells };
        loop (pc + 1) sp isp fsp
    | IDeclCtor { dc_slot; dc_cid; dc_cls; dc_ctor; dc_argc } ->
        let base = sp - dc_argc in
        let o =
          construct_journalled vm ~kind:Profile.Stack dc_cid dc_cls dc_ctor ost
            base dc_argc
        in
        locals.(dc_slot) <- VObj o;
        loop (pc + 1) base isp fsp
    | IBuiltin (bi, argc) ->
        let base = sp - argc in
        exec_builtin vm ost base bi argc;
        ost.(base) <- VUnit;
        loop (pc + 1) (base + 1) isp fsp
    | ICallFunc (fi, argc) ->
        let base = sp - argc in
        let v = call_function vm fi ~this:None ost base argc in
        ost.(base) <- v;
        loop (pc + 1) (base + 1) isp fsp
    | ICallMethod { m_func; m_argc; m_arrow } ->
        let base = sp - m_argc in
        let v =
          match ost.(base - 1) with
          | VNull when m_arrow -> runtime_error "method call on null pointer"
          | VObj o | VPtr (PObj o) ->
              call_function vm m_func ~this:(Some o) ost base m_argc
          | _ ->
              (* static member function *)
              call_function vm m_func ~this:None ost base m_argc
        in
        ost.(base - 1) <- v;
        loop (pc + 1) base isp fsp
    | ICallVirtual { v_name; v_table; v_argc } ->
        let base = sp - v_argc in
        let v =
          match ost.(base - 1) with
          | VObj o | VPtr (PObj o) ->
              let fi = if o.obj_cid >= 0 then v_table.(o.obj_cid) else -1 in
              if fi >= 0 then call_function vm fi ~this:(Some o) ost base v_argc
              else
                runtime_error "no virtual target for %s::%s" o.obj_class v_name
          | VNull -> runtime_error "virtual call on null pointer"
          | _ -> runtime_error "virtual call on a non-object"
        in
        ost.(base - 1) <- v;
        loop (pc + 1) base isp fsp
    | ICallFunPtr argc ->
        let base = sp - argc in
        let v =
          match ost.(base - 1) with
          | VFunPtr id -> (
              let this =
                match id with Func_id.FMethod _ -> frame.this | _ -> None
              in
              match Hashtbl.find_opt vm.cp.cp_rp.rp_func_idx id with
              | Some fi -> call_function vm fi ~this ost base argc
              | None ->
                  runtime_error "call to unknown function %s"
                    (Func_id.to_string id))
          | VNull -> runtime_error "call through a null function pointer"
          | _ -> runtime_error "call through a non-function value"
        in
        ost.(base - 1) <- v;
        loop (pc + 1) base isp fsp
    | ICallCtor (fi, argc) ->
        let base = sp - argc in
        run_ctor_idx vm (this_obj frame) fi ~most_derived:false ost base argc;
        loop (pc + 1) base isp fsp
    | IInitField { if_slots; if_member; if_cid; if_cls; if_ctor; if_argc } ->
        let base = sp - if_argc in
        let o = this_obj frame in
        let sub = construct_raw vm if_cid if_cls if_ctor ost base if_argc in
        o.fields.cells.(field_slot o if_slots if_member) <- VObj sub;
        loop (pc + 1) base isp fsp
    | IInitFieldArr { ia_slots; ia_member; ia_cid; ia_cls; ia_ctor; ia_len } ->
        let o = this_obj frame in
        let cells =
          Array.init ia_len (fun _ ->
              VObj (construct_raw vm ia_cid ia_cls ia_ctor empty_vals 0 0))
        in
        o.fields.cells.(field_slot o ia_slots ia_member) <-
          VArr { arr_id = -1; cells };
        loop (pc + 1) sp isp fsp
    | IInitFieldScalar { is_slots; is_member; is_coerce } ->
        let v = coerce is_coerce ost.(sp - 1) in
        let o = this_obj frame in
        o.fields.cells.(field_slot o is_slots is_member) <- v;
        loop (pc + 1) (sp - 1) isp fsp
    (* superinstructions: each arm is the exact concatenation of its
       parts' arms — same evaluation order, ticks and errors *)
    | ILoadField (i, slots, m) ->
        let o = as_obj (Array.get locals i) in
        ost.(sp) <- o.fields.cells.(field_slot o slots m);
        loop (pc + 1) (sp + 1) isp fsp
    | ITickLoad i ->
        tick vm;
        ost.(sp) <- Array.get locals i;
        loop (pc + 1) (sp + 1) isp fsp
    | ITickLoadField (i, slots, m) ->
        tick vm;
        let o = as_obj (Array.get locals i) in
        ost.(sp) <- o.fields.cells.(field_slot o slots m);
        loop (pc + 1) (sp + 1) isp fsp
    | IThisField (slots, m) ->
        (match frame.this with
        | Some o -> ost.(sp) <- o.fields.cells.(field_slot o slots m)
        | None -> runtime_error "'this' outside a method");
        loop (pc + 1) (sp + 1) isp fsp
    | IIndexField (slots, m) ->
        let iv = as_int ost.(sp - 1) in
        let elem =
          match ost.(sp - 2) with
          | VArr h | VPtr (PArr (h, 0)) ->
              if iv < 0 || iv >= Array.length h.cells then
                runtime_error "array index %d out of bounds (size %d)" iv
                  (Array.length h.cells);
              h.cells.(iv)
          | VPtr (PArr (h, off)) ->
              let j = off + iv in
              if j < 0 || j >= Array.length h.cells then
                runtime_error "array index out of bounds";
              h.cells.(j)
          | VStr s ->
              if iv < 0 || iv >= String.length s then VInt 0
              else VInt (Char.code s.[iv])
          | VNull -> runtime_error "indexing a null pointer"
          | _ -> runtime_error "indexing a non-array value"
        in
        let o = as_obj elem in
        ost.(sp - 2) <- o.fields.cells.(field_slot o slots m);
        loop (pc + 1) (sp - 1) isp fsp
    | ILoadIndex i ->
        let iv = as_int (Array.get locals i) in
        ost.(sp - 1) <-
          (match ost.(sp - 1) with
          | VArr h | VPtr (PArr (h, 0)) ->
              if iv < 0 || iv >= Array.length h.cells then
                runtime_error "array index %d out of bounds (size %d)" iv
                  (Array.length h.cells);
              h.cells.(iv)
          | VPtr (PArr (h, off)) ->
              let j = off + iv in
              if j < 0 || j >= Array.length h.cells then
                runtime_error "array index out of bounds";
              h.cells.(j)
          | VStr s ->
              if iv < 0 || iv >= String.length s then VInt 0
              else VInt (Char.code s.[iv])
          | VNull -> runtime_error "indexing a null pointer"
          | _ -> runtime_error "indexing a non-array value");
        loop (pc + 1) sp isp fsp
    | ILoadLocField (i, slots, m) ->
        let o = as_obj (Array.get locals i) in
        ost.(sp) <- VPtr (PArr (o.fields, field_slot o slots m));
        loop (pc + 1) (sp + 1) isp fsp
    | IFieldBinop (slots, m, op) ->
        let o = as_obj ost.(sp - 1) in
        ost.(sp - 2) <-
          binop op ost.(sp - 2) o.fields.cells.(field_slot o slots m);
        loop (pc + 1) (sp - 1) isp fsp
    | ILoadFieldBinop (i, slots, m, op) ->
        let o = as_obj (Array.get locals i) in
        ost.(sp - 1) <-
          binop op ost.(sp - 1) o.fields.cells.(field_slot o slots m);
        loop (pc + 1) sp isp fsp
    | IBinopConst (op, v) ->
        ost.(sp - 1) <- binop op ost.(sp - 1) v;
        loop (pc + 1) sp isp fsp
    | ITickN n ->
        let s = vm.steps + n in
        if s > vm.next_stop then slow_tick_n vm s;
        vm.steps <- s;
        loop (pc + 1) sp isp fsp
    | ITickPushScope slots ->
        tick vm;
        scopes := slots :: !scopes;
        loop (pc + 1) sp isp fsp
    | IAssignPop ty ->
        let v = coerce ty ost.(sp - 1) in
        loc_write ost.(sp - 2) v;
        loop (pc + 1) (sp - 2) isp fsp
    | IStoreLocalPopT (i, ty) ->
        Array.set locals i (coerce ty ost.(sp - 1));
        tick vm;
        loop (pc + 1) (sp - 1) isp fsp
    | IStoreLocalPopJump (i, ty, t) ->
        Array.set locals i (coerce ty ost.(sp - 1));
        loop t (sp - 1) isp fsp
    | IIncDecLocalJump (w, i, t) ->
        Array.set locals i (incdec_new w (Array.get locals i));
        loop t sp isp fsp
    | IJumpIfFalseT t ->
        if truthy ost.(sp - 1) then begin
          tick vm;
          loop (pc + 1) (sp - 1) isp fsp
        end
        else loop t (sp - 1) isp fsp
    | IJumpCmpFalseT (op, t) ->
        if cmp_test op ost.(sp - 2) ost.(sp - 1) then begin
          tick vm;
          loop (pc + 1) (sp - 2) isp fsp
        end
        else loop t (sp - 2) isp fsp
    | IJumpCmpConstFalse (op, v, t) ->
        if cmp_test op ost.(sp - 1) v then loop (pc + 1) (sp - 1) isp fsp
        else loop t (sp - 1) isp fsp
    | IJumpCmpConstFalseT (op, v, t) ->
        if cmp_test op ost.(sp - 1) v then begin
          tick vm;
          loop (pc + 1) (sp - 1) isp fsp
        end
        else loop t (sp - 1) isp fsp
    | IJumpLocCmpConstFalse (i, op, v, t) ->
        if cmp_test op (Array.get locals i) v then loop (pc + 1) sp isp fsp
        else loop t sp isp fsp
    | IJumpLocCmpConstFalseT (i, op, v, t) ->
        if cmp_test op (Array.get locals i) v then begin
          tick vm;
          loop (pc + 1) sp isp fsp
        end
        else loop t sp isp fsp
    | IJumpLocCmpFalse (op, i, t) ->
        if cmp_test op ost.(sp - 1) (Array.get locals i) then
          loop (pc + 1) (sp - 1) isp fsp
        else loop t (sp - 1) isp fsp
    | IJumpLocCmpFalseT (op, i, t) ->
        if cmp_test op ost.(sp - 1) (Array.get locals i) then begin
          tick vm;
          loop (pc + 1) (sp - 1) isp fsp
        end
        else loop t (sp - 1) isp fsp
    | IJumpLoc2CmpFalse (op, x, y, t) ->
        if cmp_test op (Array.get locals x) (Array.get locals y) then
          loop (pc + 1) sp isp fsp
        else loop t sp isp fsp
    | IJumpLoc2CmpFalseT (op, x, y, t) ->
        if cmp_test op (Array.get locals x) (Array.get locals y) then begin
          tick vm;
          loop (pc + 1) sp isp fsp
        end
        else loop t sp isp fsp
    | ITickLoadFieldStore (i, slots, m, j, ty) ->
        tick vm;
        let o = as_obj (Array.get locals i) in
        Array.set locals j (coerce ty o.fields.cells.(field_slot o slots m));
        loop (pc + 1) sp isp fsp
    | ITickLoadFieldStoreJump (i, slots, m, j, ty, t) ->
        tick vm;
        let o = as_obj (Array.get locals i) in
        Array.set locals j (coerce ty o.fields.cells.(field_slot o slots m));
        loop t sp isp fsp
    | ILoadBinopConst (i, op, v) ->
        ost.(sp) <- binop op (Array.get locals i) v;
        loop (pc + 1) (sp + 1) isp fsp
    | ILoadFieldBC (i, slots, m, op, v) ->
        let o = as_obj (Array.get locals i) in
        ost.(sp) <- binop op o.fields.cells.(field_slot o slots m) v;
        loop (pc + 1) (sp + 1) isp fsp
    | ILoadFieldLoadBC (i, slots, m, j, op, v) ->
        let o = as_obj (Array.get locals i) in
        ost.(sp) <- o.fields.cells.(field_slot o slots m);
        ost.(sp + 1) <- binop op (Array.get locals j) v;
        loop (pc + 1) (sp + 2) isp fsp
    | IFieldIdxField (i, slots, m, j, op, v, s2, m2) ->
        let o = as_obj (Array.get locals i) in
        let av = o.fields.cells.(field_slot o slots m) in
        let iv = as_int (binop op (Array.get locals j) v) in
        let eo = as_obj (index_read av iv) in
        ost.(sp) <- eo.fields.cells.(field_slot eo s2 m2);
        loop (pc + 1) (sp + 1) isp fsp
    | ILoadFieldBinop2 (i, slots, m, op1, op2) ->
        let o = as_obj (Array.get locals i) in
        ost.(sp - 2) <-
          binop op2 ost.(sp - 2)
            (binop op1 ost.(sp - 1) o.fields.cells.(field_slot o slots m));
        loop (pc + 1) (sp - 1) isp fsp
    | IBinopAssignPop (op, ty) ->
        let v = coerce ty (binop op ost.(sp - 2) ost.(sp - 1)) in
        loc_write ost.(sp - 3) v;
        loop (pc + 1) (sp - 3) isp fsp
    | ITickThisField (slots, m) ->
        tick vm;
        (match frame.this with
        | Some o -> ost.(sp) <- o.fields.cells.(field_slot o slots m)
        | None -> runtime_error "'this' outside a method");
        loop (pc + 1) (sp + 1) isp fsp
    | ILoad2FieldBinop (i, j, slots, m, op) ->
        let o = as_obj (Array.get locals j) in
        ost.(sp) <-
          binop op (Array.get locals i) o.fields.cells.(field_slot o slots m);
        loop (pc + 1) (sp + 1) isp fsp
    | ILoadLoadField (i, j, slots, m) ->
        ost.(sp) <- Array.get locals i;
        let o = as_obj (Array.get locals j) in
        ost.(sp + 1) <- o.fields.cells.(field_slot o slots m);
        loop (pc + 1) (sp + 2) isp fsp
    | ILocFieldLoadField (s1, m1, j, s2, m2) ->
        let o = as_obj ost.(sp - 1) in
        ost.(sp - 1) <- VPtr (PArr (o.fields, field_slot o s1 m1));
        let o2 = as_obj (Array.get locals j) in
        ost.(sp) <- o2.fields.cells.(field_slot o2 s2 m2);
        loop (pc + 1) (sp + 1) isp fsp
    | IStoreTLoadField (i, ty, j, slots, m) ->
        Array.set locals i (coerce ty ost.(sp - 1));
        tick vm;
        let o = as_obj (Array.get locals j) in
        ost.(sp - 1) <- o.fields.cells.(field_slot o slots m);
        loop (pc + 1) sp isp fsp
    | ITickLoadFieldIndex (a, slots, m, i) ->
        tick vm;
        let o = as_obj (Array.get locals a) in
        let av = o.fields.cells.(field_slot o slots m) in
        let iv = as_int (Array.get locals i) in
        ost.(sp) <- index_read av iv;
        loop (pc + 1) (sp + 1) isp fsp
    | ITLFIndexStoreT (a, slots, m, i, x, ty) ->
        tick vm;
        let o = as_obj (Array.get locals a) in
        let av = o.fields.cells.(field_slot o slots m) in
        let iv = as_int (Array.get locals i) in
        Array.set locals x (coerce ty (index_read av iv));
        tick vm;
        loop (pc + 1) sp isp fsp
    | ITickLoadFieldCmpLocFalse (j, slots, m, op, n, t) ->
        tick vm;
        let o = as_obj (Array.get locals j) in
        if cmp_test op o.fields.cells.(field_slot o slots m) (Array.get locals n)
        then loop (pc + 1) sp isp fsp
        else loop t sp isp fsp
    | ITickLoadFieldCmpLocFalseT (j, slots, m, op, n, t) ->
        tick vm;
        let o = as_obj (Array.get locals j) in
        if cmp_test op o.fields.cells.(field_slot o slots m) (Array.get locals n)
        then begin
          tick vm;
          loop (pc + 1) sp isp fsp
        end
        else loop t sp isp fsp
    | IBinopConstAndFalse (op, v, t) ->
        if truthy (binop op ost.(sp - 1) v) then loop (pc + 1) (sp - 1) isp fsp
        else begin
          ost.(sp - 1) <- VInt 0;
          loop t sp isp fsp
        end
    | IJumpIfFalseTPushScope (t, slots) ->
        if truthy ost.(sp - 1) then begin
          tick vm;
          scopes := slots :: !scopes;
          loop (pc + 1) (sp - 1) isp fsp
        end
        else loop t (sp - 1) isp fsp
    | ILoadFieldBinopJumpFalse (i, slots, m, op, t) ->
        let o = as_obj (Array.get locals i) in
        if truthy (binop op ost.(sp - 1) o.fields.cells.(field_slot o slots m))
        then loop (pc + 1) (sp - 1) isp fsp
        else loop t (sp - 1) isp fsp
    | ILoadFieldBinopJumpFalseT (i, slots, m, op, t) ->
        let o = as_obj (Array.get locals i) in
        if truthy (binop op ost.(sp - 1) o.fields.cells.(field_slot o slots m))
        then begin
          tick vm;
          loop (pc + 1) (sp - 1) isp fsp
        end
        else loop t (sp - 1) isp fsp
    | IJumpBCCmpFalse (op1, v, op2, tk, t) ->
        let rhs = binop op1 ost.(sp - 1) v in
        if cmp_test op2 ost.(sp - 2) rhs then begin
          if tk then tick vm;
          loop (pc + 1) (sp - 2) isp fsp
        end
        else loop t (sp - 2) isp fsp
    | IBinopLoadField (op, j, slots, m) ->
        ost.(sp - 2) <- binop op ost.(sp - 2) ost.(sp - 1);
        let o = as_obj (Array.get locals j) in
        ost.(sp - 1) <- o.fields.cells.(field_slot o slots m);
        loop (pc + 1) sp isp fsp
    | IBinop2 (op1, op2) ->
        ost.(sp - 3) <-
          binop op2 ost.(sp - 3) (binop op1 ost.(sp - 2) ost.(sp - 1));
        loop (pc + 1) (sp - 2) isp fsp
    | IThisFieldBinop (slots, m, op) ->
        (match frame.this with
        | Some o ->
            ost.(sp - 1) <-
              binop op ost.(sp - 1) o.fields.cells.(field_slot o slots m)
        | None -> runtime_error "'this' outside a method");
        loop (pc + 1) sp isp fsp
    | IFieldBinop2AssignPop (i, slots, m, op1, op2, ty) ->
        let o = as_obj (Array.get locals i) in
        let v =
          coerce ty
            (binop op2 ost.(sp - 2)
               (binop op1 ost.(sp - 1) o.fields.cells.(field_slot o slots m)))
        in
        loc_write ost.(sp - 3) v;
        loop (pc + 1) (sp - 3) isp fsp
    | IBinop2AssignPop (op1, op2, ty) ->
        let v =
          coerce ty
            (binop op2 ost.(sp - 3) (binop op1 ost.(sp - 2) ost.(sp - 1)))
        in
        loc_write ost.(sp - 4) v;
        loop (pc + 1) (sp - 4) isp fsp
    | IConstFieldBinop2 (v, i, slots, m, op1, op2) ->
        let o = as_obj (Array.get locals i) in
        ost.(sp - 1) <-
          binop op2 ost.(sp - 1)
            (binop op1 v o.fields.cells.(field_slot o slots m));
        loop (pc + 1) sp isp fsp
    | ILoadLocFieldLoadField (i, slots, m, j, s2, m2) ->
        let o = as_obj (Array.get locals i) in
        ost.(sp) <- VPtr (PArr (o.fields, field_slot o slots m));
        let o2 = as_obj (Array.get locals j) in
        ost.(sp + 1) <- o2.fields.cells.(field_slot o2 s2 m2);
        loop (pc + 1) (sp + 2) isp fsp
    | ILoadFieldBCAndFalse (i, slots, m, op, v, t) ->
        let o = as_obj (Array.get locals i) in
        if truthy (binop op o.fields.cells.(field_slot o slots m) v) then
          loop (pc + 1) sp isp fsp
        else begin
          ost.(sp) <- VInt 0;
          loop t (sp + 1) isp fsp
        end
    | IJumpLocFCmpFalse (i, j, slots, m, op, t) ->
        let o = as_obj (Array.get locals j) in
        if cmp_test op (Array.get locals i) o.fields.cells.(field_slot o slots m)
        then loop (pc + 1) sp isp fsp
        else loop t sp isp fsp
    | IJumpLocFCmpFalseT (i, j, slots, m, op, t) ->
        let o = as_obj (Array.get locals j) in
        if cmp_test op (Array.get locals i) o.fields.cells.(field_slot o slots m)
        then begin
          tick vm;
          loop (pc + 1) sp isp fsp
        end
        else loop t sp isp fsp
    | IJumpLL2FBCCmpFalse (i, j, slots, m, op1, v, op2, t) ->
        let o = as_obj (Array.get locals j) in
        let rhs = binop op1 o.fields.cells.(field_slot o slots m) v in
        if cmp_test op2 (Array.get locals i) rhs then loop (pc + 1) sp isp fsp
        else loop t sp isp fsp
    | IJumpLL2FBCCmpFalseT (i, j, slots, m, op1, v, op2, t) ->
        let o = as_obj (Array.get locals j) in
        let rhs = binop op1 o.fields.cells.(field_slot o slots m) v in
        if cmp_test op2 (Array.get locals i) rhs then begin
          tick vm;
          loop (pc + 1) sp isp fsp
        end
        else loop t sp isp fsp
    | IScanStep (j, slots, m, op, n, a, s2, m2, bdst, ty, tback) ->
        tick vm;
        let o = as_obj (Array.get locals j) in
        if cmp_test op o.fields.cells.(field_slot o slots m) (Array.get locals n)
        then begin
          tick vm;
          loop (pc + 1) sp isp fsp
        end
        else begin
          tick vm;
          let o2 = as_obj (Array.get locals a) in
          Array.set locals bdst
            (coerce ty o2.fields.cells.(field_slot o2 s2 m2));
          loop tback sp isp fsp
        end
    | ILoopScan (x, op0, v0, texit0, j, slots, m, op, n, a, s2, m2, bdst, ty)
      ->
        let rec scan () =
          if cmp_test op0 (Array.get locals x) v0 then begin
            tick vm;
            tick vm;
            let o = as_obj (Array.get locals j) in
            if
              cmp_test op
                o.fields.cells.(field_slot o slots m)
                (Array.get locals n)
            then begin
              tick vm;
              -1
            end
            else begin
              tick vm;
              let o2 = as_obj (Array.get locals a) in
              Array.set locals bdst
                (coerce ty o2.fields.cells.(field_slot o2 s2 m2));
              (* profiled count = guard evaluations, one per iteration:
                 the whole loop runs in this single dispatch, and a
                 count of 1 would hide exactly the hot loops the
                 profiler exists to surface *)
              if profiling then
                Array.unsafe_set prow pc (Array.unsafe_get prow pc + 1);
              scan ()
            end
          end
          else texit0
        in
        let t = scan () in
        if t >= 0 then loop t sp isp fsp else loop (pc + 2) sp isp fsp
    (* -- typed (untagged) arms: pushes, bridges ---------------------- *)
    | IConstI n ->
        ist.(isp) <- n;
        loop (pc + 1) sp (isp + 1) fsp
    | IConstF f ->
        fstk.(fsp) <- f;
        loop (pc + 1) sp isp (fsp + 1)
    | ILoadI i ->
        ist.(isp) <- Array.unsafe_get ilocals i;
        loop (pc + 1) sp (isp + 1) fsp
    | ILoadF i ->
        fstk.(fsp) <- Array.unsafe_get flocals i;
        loop (pc + 1) sp isp (fsp + 1)
    | IFieldI (slots, m) ->
        let o = as_obj ost.(sp - 1) in
        ist.(isp) <- o.ifields.(field_slot o slots m);
        loop (pc + 1) (sp - 1) (isp + 1) fsp
    | IFieldF (slots, m) ->
        let o = as_obj ost.(sp - 1) in
        fstk.(fsp) <- o.ffields.(field_slot o slots m);
        loop (pc + 1) (sp - 1) isp (fsp + 1)
    | IIndexI ->
        ost.(sp - 1) <- index_read ost.(sp - 1) ist.(isp - 1);
        loop (pc + 1) sp (isp - 1) fsp
    | IBoxI ->
        ost.(sp) <- vint ist.(isp - 1);
        loop (pc + 1) (sp + 1) (isp - 1) fsp
    | IBoxF ->
        ost.(sp) <- VFloat fstk.(fsp - 1);
        loop (pc + 1) (sp + 1) isp (fsp - 1)
    | IBoxIU ->
        ost.(sp) <- ost.(sp - 1);
        ost.(sp - 1) <- vint ist.(isp - 1);
        loop (pc + 1) (sp + 1) (isp - 1) fsp
    | IBoxFU ->
        ost.(sp) <- ost.(sp - 1);
        ost.(sp - 1) <- VFloat fstk.(fsp - 1);
        loop (pc + 1) (sp + 1) isp (fsp - 1)
    | IPopI -> loop (pc + 1) sp (isp - 1) fsp
    | IPopF -> loop (pc + 1) sp isp (fsp - 1)
    | ILoadIB i ->
        ost.(sp) <- vint (Array.unsafe_get ilocals i);
        loop (pc + 1) (sp + 1) isp fsp
    | ILoadFB i ->
        ost.(sp) <- VFloat (Array.unsafe_get flocals i);
        loop (pc + 1) (sp + 1) isp fsp
    | ILoadFieldIB (i, slots, m) ->
        let o = as_obj (Array.get locals i) in
        ost.(sp) <- vint o.ifields.(field_slot o slots m);
        loop (pc + 1) (sp + 1) isp fsp
    | ILoadFieldFB (i, slots, m) ->
        let o = as_obj (Array.get locals i) in
        ost.(sp) <- VFloat o.ffields.(field_slot o slots m);
        loop (pc + 1) (sp + 1) isp fsp
    | ICastFI ->
        ist.(isp) <- int_of_float fstk.(fsp - 1);
        loop (pc + 1) sp (isp + 1) (fsp - 1)
    | ICastIF ->
        fstk.(fsp) <- float_of_int ist.(isp - 1);
        loop (pc + 1) sp (isp - 1) (fsp + 1)
    (* -- typed operators --------------------------------------------- *)
    | IUnaryI op ->
        (match op with
        | Ast.Neg -> ist.(isp - 1) <- -ist.(isp - 1)
        | Ast.Not -> ist.(isp - 1) <- (if ist.(isp - 1) = 0 then 1 else 0)
        | Ast.BitNot -> ist.(isp - 1) <- lnot ist.(isp - 1)
        | Ast.UPlus -> ());
        loop (pc + 1) sp isp fsp
    | INegF ->
        fstk.(fsp - 1) <- -.fstk.(fsp - 1);
        loop (pc + 1) sp isp fsp
    | INotF ->
        (* [truthy (VFloat f)] is [f <> 0.0], so nan is truthy: [!nan]
           must be 0, which [= 0.0] gives for free *)
        ist.(isp) <- (if fstk.(fsp - 1) = 0.0 then 1 else 0);
        loop (pc + 1) sp (isp + 1) (fsp - 1)
    | IToBoolI ->
        ist.(isp - 1) <- (if ist.(isp - 1) <> 0 then 1 else 0);
        loop (pc + 1) sp isp fsp
    | IBinopII op ->
        ist.(isp - 2) <- ibinop_i op ist.(isp - 2) ist.(isp - 1);
        loop (pc + 1) sp (isp - 1) fsp
    | IArithFF op ->
        fstk.(fsp - 2) <- fbinop op fstk.(fsp - 2) fstk.(fsp - 1);
        loop (pc + 1) sp isp (fsp - 1)
    | ICmpFF op ->
        ist.(isp) <- (if fcmp_test op fstk.(fsp - 2) fstk.(fsp - 1) then 1 else 0);
        loop (pc + 1) sp (isp + 1) (fsp - 2)
    | IArithIF op ->
        fstk.(fsp - 1) <- fbinop op (float_of_int ist.(isp - 1)) fstk.(fsp - 1);
        loop (pc + 1) sp (isp - 1) fsp
    | IArithFI op ->
        fstk.(fsp - 1) <- fbinop op fstk.(fsp - 1) (float_of_int ist.(isp - 1));
        loop (pc + 1) sp (isp - 1) fsp
    | ICmpIF op ->
        ist.(isp - 1) <-
          (if fcmp_test op (float_of_int ist.(isp - 1)) fstk.(fsp - 1) then 1
           else 0);
        loop (pc + 1) sp isp (fsp - 1)
    | ICmpFI op ->
        ist.(isp - 1) <-
          (if fcmp_test op fstk.(fsp - 1) (float_of_int ist.(isp - 1)) then 1
           else 0);
        loop (pc + 1) sp isp (fsp - 1)
    (* -- typed local stores ------------------------------------------ *)
    | IStoreLocalI (ic, i) ->
        let v = apply_ic ic ist.(isp - 1) in
        Array.unsafe_set ilocals i v;
        ist.(isp - 1) <- v;
        loop (pc + 1) sp isp fsp
    | IStoreLocalPopI (ic, i) ->
        Array.unsafe_set ilocals i (apply_ic ic ist.(isp - 1));
        loop (pc + 1) sp (isp - 1) fsp
    | IStoreLocalF i ->
        Array.unsafe_set flocals i fstk.(fsp - 1);
        loop (pc + 1) sp isp fsp
    | IStoreLocalPopF i ->
        Array.unsafe_set flocals i fstk.(fsp - 1);
        loop (pc + 1) sp isp (fsp - 1)
    | IStoreLocalIB (ty, i) ->
        let v = coerce ty ost.(sp - 1) in
        Array.unsafe_set ilocals i (as_int v);
        ost.(sp - 1) <- v;
        loop (pc + 1) sp isp fsp
    | IStoreLocalIBPop (ty, i) ->
        Array.unsafe_set ilocals i (as_int (coerce ty ost.(sp - 1)));
        loop (pc + 1) (sp - 1) isp fsp
    | IStoreLocalFB (ty, i) ->
        let v = coerce ty ost.(sp - 1) in
        Array.unsafe_set flocals i (as_float v);
        ost.(sp - 1) <- v;
        loop (pc + 1) sp isp fsp
    | IStoreLocalFBPop (ty, i) ->
        Array.unsafe_set flocals i (as_float (coerce ty ost.(sp - 1)));
        loop (pc + 1) (sp - 1) isp fsp
    | IIncDecLocalI (which, fix, i) ->
        let old = Array.unsafe_get ilocals i in
        let nv = old + incdec_delta which in
        Array.unsafe_set ilocals i nv;
        ist.(isp) <- (match fix with Ast.Prefix -> nv | Ast.Postfix -> old);
        loop (pc + 1) sp (isp + 1) fsp
    | IIncDecLocalPopI (which, i) ->
        Array.unsafe_set ilocals i
          (Array.unsafe_get ilocals i + incdec_delta which);
        loop (pc + 1) sp isp fsp
    | IIncDecLocalF (which, fix, i) ->
        let old = Array.unsafe_get flocals i in
        let nv = old +. float_of_int (incdec_delta which) in
        Array.unsafe_set flocals i nv;
        fstk.(fsp) <- (match fix with Ast.Prefix -> nv | Ast.Postfix -> old);
        loop (pc + 1) sp isp (fsp + 1)
    | IIncDecLocalPopF (which, i) ->
        Array.unsafe_set flocals i
          (Array.unsafe_get flocals i +. float_of_int (incdec_delta which));
        loop (pc + 1) sp isp fsp
    | ICompoundLocalI (op, ic, i) ->
        let v =
          apply_ic ic (ibinop_i op (Array.unsafe_get ilocals i) ist.(isp - 1))
        in
        Array.unsafe_set ilocals i v;
        ist.(isp - 1) <- v;
        loop (pc + 1) sp isp fsp
    | ICompoundLocalIPop (op, ic, i) ->
        Array.unsafe_set ilocals i
          (apply_ic ic (ibinop_i op (Array.unsafe_get ilocals i) ist.(isp - 1)));
        loop (pc + 1) sp (isp - 1) fsp
    | ICompoundLocalF (op, i) ->
        let v = fbinop op (Array.unsafe_get flocals i) fstk.(fsp - 1) in
        Array.unsafe_set flocals i v;
        fstk.(fsp - 1) <- v;
        loop (pc + 1) sp isp fsp
    | ICompoundLocalFPop (op, i) ->
        Array.unsafe_set flocals i
          (fbinop op (Array.unsafe_get flocals i) fstk.(fsp - 1));
        loop (pc + 1) sp isp (fsp - 1)
    | ICompoundLocalB (aop, ty, i, bk) ->
        let old =
          match bk with
          | BInt -> vint ilocals.(i)
          | BFlt -> VFloat flocals.(i)
          | BBox -> assert false
        in
        let v = compound_op aop old ost.(sp - 1) ty in
        (match bk with
        | BInt -> ilocals.(i) <- as_int v
        | BFlt -> flocals.(i) <- as_float v
        | BBox -> assert false);
        ost.(sp - 1) <- v;
        loop (pc + 1) sp isp fsp
    | ICompoundLocalBPop (aop, ty, i, bk) ->
        let old =
          match bk with
          | BInt -> vint ilocals.(i)
          | BFlt -> VFloat flocals.(i)
          | BBox -> assert false
        in
        let v = compound_op aop old ost.(sp - 1) ty in
        (match bk with
        | BInt -> ilocals.(i) <- as_int v
        | BFlt -> flocals.(i) <- as_float v
        | BBox -> assert false);
        loop (pc + 1) (sp - 1) isp fsp
    (* -- typed member lvalues ---------------------------------------- *)
    | ILocFieldI (slots, m) ->
        let o = as_obj ost.(sp - 1) in
        ist.(isp) <- field_slot o slots m;
        ost.(sp - 1) <- VObj o;
        loop (pc + 1) sp (isp + 1) fsp
    | ILocFieldF (slots, m) ->
        let o = as_obj ost.(sp - 1) in
        ist.(isp) <- field_slot o slots m;
        ost.(sp - 1) <- VObj o;
        loop (pc + 1) sp (isp + 1) fsp
    | IAssignFieldI ic ->
        let v = apply_ic ic ist.(isp - 1) in
        let o = as_obj ost.(sp - 1) in
        o.ifields.(ist.(isp - 2)) <- v;
        ist.(isp - 2) <- v;
        loop (pc + 1) (sp - 1) (isp - 1) fsp
    | IAssignFieldIPop ic ->
        let o = as_obj ost.(sp - 1) in
        o.ifields.(ist.(isp - 2)) <- apply_ic ic ist.(isp - 1);
        loop (pc + 1) (sp - 1) (isp - 2) fsp
    | IAssignFieldF ->
        let o = as_obj ost.(sp - 1) in
        o.ffields.(ist.(isp - 1)) <- fstk.(fsp - 1);
        loop (pc + 1) (sp - 1) (isp - 1) fsp
    | IAssignFieldFPop ->
        let o = as_obj ost.(sp - 1) in
        o.ffields.(ist.(isp - 1)) <- fstk.(fsp - 1);
        loop (pc + 1) (sp - 1) (isp - 1) (fsp - 1)
    | IAssignFieldIB ty ->
        let v = coerce ty ost.(sp - 1) in
        let o = as_obj ost.(sp - 2) in
        o.ifields.(ist.(isp - 1)) <- as_int v;
        ost.(sp - 2) <- v;
        loop (pc + 1) (sp - 1) (isp - 1) fsp
    | IAssignFieldIBPop ty ->
        let o = as_obj ost.(sp - 2) in
        o.ifields.(ist.(isp - 1)) <- as_int (coerce ty ost.(sp - 1));
        loop (pc + 1) (sp - 2) (isp - 1) fsp
    | IAssignFieldFB ty ->
        let v = coerce ty ost.(sp - 1) in
        let o = as_obj ost.(sp - 2) in
        o.ffields.(ist.(isp - 1)) <- as_float v;
        ost.(sp - 2) <- v;
        loop (pc + 1) (sp - 1) (isp - 1) fsp
    | IAssignFieldFBPop ty ->
        let o = as_obj ost.(sp - 2) in
        o.ffields.(ist.(isp - 1)) <- as_float (coerce ty ost.(sp - 1));
        loop (pc + 1) (sp - 2) (isp - 1) fsp
    | ICompoundFieldI (op, ic) ->
        let o = as_obj ost.(sp - 1) in
        let s = ist.(isp - 2) in
        let v = apply_ic ic (ibinop_i op o.ifields.(s) ist.(isp - 1)) in
        o.ifields.(s) <- v;
        ist.(isp - 2) <- v;
        loop (pc + 1) (sp - 1) (isp - 1) fsp
    | ICompoundFieldIPop (op, ic) ->
        let o = as_obj ost.(sp - 1) in
        let s = ist.(isp - 2) in
        o.ifields.(s) <- apply_ic ic (ibinop_i op o.ifields.(s) ist.(isp - 1));
        loop (pc + 1) (sp - 1) (isp - 2) fsp
    | ICompoundFieldF op ->
        let o = as_obj ost.(sp - 1) in
        let s = ist.(isp - 1) in
        let v = fbinop op o.ffields.(s) fstk.(fsp - 1) in
        o.ffields.(s) <- v;
        fstk.(fsp - 1) <- v;
        loop (pc + 1) (sp - 1) (isp - 1) fsp
    | ICompoundFieldFPop op ->
        let o = as_obj ost.(sp - 1) in
        let s = ist.(isp - 1) in
        o.ffields.(s) <- fbinop op o.ffields.(s) fstk.(fsp - 1);
        loop (pc + 1) (sp - 1) (isp - 1) (fsp - 1)
    | ICompoundFieldB (aop, ty, bk) ->
        let o = as_obj ost.(sp - 2) in
        let s = ist.(isp - 1) in
        let old =
          match bk with
          | BInt -> vint o.ifields.(s)
          | BFlt -> VFloat o.ffields.(s)
          | BBox -> assert false
        in
        let v = compound_op aop old ost.(sp - 1) ty in
        (match bk with
        | BInt -> o.ifields.(s) <- as_int v
        | BFlt -> o.ffields.(s) <- as_float v
        | BBox -> assert false);
        ost.(sp - 2) <- v;
        loop (pc + 1) (sp - 1) (isp - 1) fsp
    | ICompoundFieldBPop (aop, ty, bk) ->
        let o = as_obj ost.(sp - 2) in
        let s = ist.(isp - 1) in
        let old =
          match bk with
          | BInt -> vint o.ifields.(s)
          | BFlt -> VFloat o.ffields.(s)
          | BBox -> assert false
        in
        let v = compound_op aop old ost.(sp - 1) ty in
        (match bk with
        | BInt -> o.ifields.(s) <- as_int v
        | BFlt -> o.ffields.(s) <- as_float v
        | BBox -> assert false);
        loop (pc + 1) (sp - 2) (isp - 1) fsp
    | IIncDecFieldI (which, fix) ->
        let o = as_obj ost.(sp - 1) in
        let s = ist.(isp - 1) in
        let old = o.ifields.(s) in
        let nv = old + incdec_delta which in
        o.ifields.(s) <- nv;
        ist.(isp - 1) <- (match fix with Ast.Prefix -> nv | Ast.Postfix -> old);
        loop (pc + 1) (sp - 1) isp fsp
    | IIncDecFieldIPop which ->
        let o = as_obj ost.(sp - 1) in
        let s = ist.(isp - 1) in
        o.ifields.(s) <- o.ifields.(s) + incdec_delta which;
        loop (pc + 1) (sp - 1) (isp - 1) fsp
    | IIncDecFieldF (which, fix) ->
        let o = as_obj ost.(sp - 1) in
        let s = ist.(isp - 1) in
        let old = o.ffields.(s) in
        let nv = old +. float_of_int (incdec_delta which) in
        o.ffields.(s) <- nv;
        fstk.(fsp) <- (match fix with Ast.Prefix -> nv | Ast.Postfix -> old);
        loop (pc + 1) (sp - 1) (isp - 1) (fsp + 1)
    | IIncDecFieldFPop which ->
        let o = as_obj ost.(sp - 1) in
        let s = ist.(isp - 1) in
        o.ffields.(s) <- o.ffields.(s) +. float_of_int (incdec_delta which);
        loop (pc + 1) (sp - 1) (isp - 1) fsp
    (* -- typed declarations / ctor member initializers ---------------- *)
    | IDeclScalarI i ->
        Array.unsafe_set ilocals i 0;
        loop (pc + 1) sp isp fsp
    | IDeclScalarF i ->
        Array.unsafe_set flocals i 0.0;
        loop (pc + 1) sp isp fsp
    | IInitFieldScalarI (slots, m, ic) ->
        let o = this_obj frame in
        o.ifields.(field_slot o slots m) <- apply_ic ic ist.(isp - 1);
        loop (pc + 1) sp (isp - 1) fsp
    | IInitFieldScalarF (slots, m) ->
        let o = this_obj frame in
        o.ffields.(field_slot o slots m) <- fstk.(fsp - 1);
        loop (pc + 1) sp isp (fsp - 1)
    | IInitFieldScalarB (slots, m, ty, bk) ->
        let v = coerce ty ost.(sp - 1) in
        let o = this_obj frame in
        let s = field_slot o slots m in
        (match bk with
        | BInt -> o.ifields.(s) <- as_int v
        | BFlt -> o.ffields.(s) <- as_float v
        | BBox -> assert false);
        loop (pc + 1) (sp - 1) isp fsp
    (* -- typed control ------------------------------------------------ *)
    | IJumpIfFalseI (tk, t) ->
        if ist.(isp - 1) <> 0 then begin
          if tk then tick vm;
          loop (pc + 1) sp (isp - 1) fsp
        end
        else loop t sp (isp - 1) fsp
    | IJumpIfTrueI t ->
        if ist.(isp - 1) <> 0 then loop t sp (isp - 1) fsp
        else loop (pc + 1) sp (isp - 1) fsp
    | IJumpIfFalseF (tk, t) ->
        if fstk.(fsp - 1) <> 0.0 then begin
          if tk then tick vm;
          loop (pc + 1) sp isp (fsp - 1)
        end
        else loop t sp isp (fsp - 1)
    | IJumpIfTrueF t ->
        if fstk.(fsp - 1) <> 0.0 then loop t sp isp (fsp - 1)
        else loop (pc + 1) sp isp (fsp - 1)
    | IAndFalseI t ->
        if ist.(isp - 1) <> 0 then loop (pc + 1) sp (isp - 1) fsp
        else begin
          ist.(isp - 1) <- 0;
          loop t sp isp fsp
        end
    | IOrTrueI t ->
        if ist.(isp - 1) <> 0 then begin
          ist.(isp - 1) <- 1;
          loop t sp isp fsp
        end
        else loop (pc + 1) sp (isp - 1) fsp
    | IJumpCmpFalseI (op, tk, t) ->
        if icmp op ist.(isp - 2) ist.(isp - 1) then begin
          if tk then tick vm;
          loop (pc + 1) sp (isp - 2) fsp
        end
        else loop t sp (isp - 2) fsp
    | IJumpCmpConstFalseI (op, k, tk, t) ->
        if icmp op ist.(isp - 1) k then begin
          if tk then tick vm;
          loop (pc + 1) sp (isp - 1) fsp
        end
        else loop t sp (isp - 1) fsp
    | IJumpLocCmpConstFalseI (i, op, k, tk, t) ->
        if icmp op (Array.unsafe_get ilocals i) k then begin
          if tk then tick vm;
          loop (pc + 1) sp isp fsp
        end
        else loop t sp isp fsp
    | IJumpLocCmpFalseI (op, i, tk, t) ->
        if icmp op ist.(isp - 1) (Array.unsafe_get ilocals i) then begin
          if tk then tick vm;
          loop (pc + 1) sp (isp - 1) fsp
        end
        else loop t sp (isp - 1) fsp
    | IJumpLoc2CmpFalseI (op, x, y, tk, t) ->
        if icmp op (Array.unsafe_get ilocals x) (Array.unsafe_get ilocals y)
        then begin
          if tk then tick vm;
          loop (pc + 1) sp isp fsp
        end
        else loop t sp isp fsp
    | IJumpLocFCmpFalseI (x, y, slots, m, op, tk, t) ->
        let o = as_obj (Array.get locals y) in
        if icmp op (Array.unsafe_get ilocals x) o.ifields.(field_slot o slots m)
        then begin
          if tk then tick vm;
          loop (pc + 1) sp isp fsp
        end
        else loop t sp isp fsp
    | IJumpLocFieldBCFalseI (tp, n, slots, m, op, k, ta, t) ->
        if tp then tick vm;
        let o = as_obj (Array.get locals n) in
        if ibinop_i op o.ifields.(field_slot o slots m) k <> 0 then begin
          if ta then tick vm;
          loop (pc + 1) sp isp fsp
        end
        else loop t sp isp fsp
    | IJumpThisFieldBCFalseI (tp, slots, m, op, k, ta, t) -> (
        if tp then tick vm;
        match frame.this with
        | Some o ->
            if ibinop_i op o.ifields.(field_slot o slots m) k <> 0 then begin
              if ta then tick vm;
              loop (pc + 1) sp isp fsp
            end
            else loop t sp isp fsp
        | None -> runtime_error "'this' outside a method")
    (* -- typed superinstructions -------------------------------------- *)
    | ITickLoadI i ->
        tick vm;
        ist.(isp) <- Array.unsafe_get ilocals i;
        loop (pc + 1) sp (isp + 1) fsp
    | ILoadFieldI (i, slots, m) ->
        let o = as_obj (Array.get locals i) in
        ist.(isp) <- o.ifields.(field_slot o slots m);
        loop (pc + 1) sp (isp + 1) fsp
    | ILoadFieldF (i, slots, m) ->
        let o = as_obj (Array.get locals i) in
        fstk.(fsp) <- o.ffields.(field_slot o slots m);
        loop (pc + 1) sp isp (fsp + 1)
    | ITickLoadFieldI (i, slots, m) ->
        tick vm;
        let o = as_obj (Array.get locals i) in
        ist.(isp) <- o.ifields.(field_slot o slots m);
        loop (pc + 1) sp (isp + 1) fsp
    | IThisFieldI (slots, m) ->
        (match frame.this with
        | Some o -> ist.(isp) <- o.ifields.(field_slot o slots m)
        | None -> runtime_error "'this' outside a method");
        loop (pc + 1) sp (isp + 1) fsp
    | IThisFieldF (slots, m) ->
        (match frame.this with
        | Some o -> fstk.(fsp) <- o.ffields.(field_slot o slots m)
        | None -> runtime_error "'this' outside a method");
        loop (pc + 1) sp isp (fsp + 1)
    | ITickThisFieldI (slots, m) ->
        tick vm;
        (match frame.this with
        | Some o -> ist.(isp) <- o.ifields.(field_slot o slots m)
        | None -> runtime_error "'this' outside a method");
        loop (pc + 1) sp (isp + 1) fsp
    | IIndexFieldI (slots, m) ->
        let elem = index_read ost.(sp - 1) ist.(isp - 1) in
        let o = as_obj elem in
        ist.(isp - 1) <- o.ifields.(field_slot o slots m);
        loop (pc + 1) (sp - 1) isp fsp
    | ILoadLoadFieldI (i, j, slots, m) ->
        ist.(isp) <- Array.unsafe_get ilocals i;
        let o = as_obj (Array.get locals j) in
        ist.(isp + 1) <- o.ifields.(field_slot o slots m);
        loop (pc + 1) sp (isp + 2) fsp
    | IBinopConstI (op, k) ->
        ist.(isp - 1) <- ibinop_i op ist.(isp - 1) k;
        loop (pc + 1) sp isp fsp
    | ILoadBinopConstI (i, op, k) ->
        ist.(isp) <- ibinop_i op (Array.unsafe_get ilocals i) k;
        loop (pc + 1) sp (isp + 1) fsp
    | ILoadFieldBCI (i, slots, m, op, k) ->
        let o = as_obj (Array.get locals i) in
        ist.(isp) <- ibinop_i op o.ifields.(field_slot o slots m) k;
        loop (pc + 1) sp (isp + 1) fsp
    | ILoadFieldLoadBCI (i, slots, m, j, op, k) ->
        let o = as_obj (Array.get locals i) in
        ost.(sp) <- o.fields.cells.(field_slot o slots m);
        ist.(isp) <- ibinop_i op (Array.unsafe_get ilocals j) k;
        loop (pc + 1) (sp + 1) (isp + 1) fsp
    | ILoadFieldBinopI (i, slots, m, op) ->
        let o = as_obj (Array.get locals i) in
        ist.(isp - 1) <-
          ibinop_i op ist.(isp - 1) o.ifields.(field_slot o slots m);
        loop (pc + 1) sp isp fsp
    | IBinopLoadFieldI (op, j, slots, m) ->
        ist.(isp - 2) <- ibinop_i op ist.(isp - 2) ist.(isp - 1);
        let o = as_obj (Array.get locals j) in
        ist.(isp - 1) <- o.ifields.(field_slot o slots m);
        loop (pc + 1) sp isp fsp
    | IThisFieldBinopI (slots, m, op) ->
        (match frame.this with
        | Some o ->
            ist.(isp - 1) <-
              ibinop_i op ist.(isp - 1) o.ifields.(field_slot o slots m)
        | None -> runtime_error "'this' outside a method");
        loop (pc + 1) sp isp fsp
    | IBinopConstAndFalseI (op, k, t) ->
        if ibinop_i op ist.(isp - 1) k <> 0 then loop (pc + 1) sp (isp - 1) fsp
        else begin
          ist.(isp - 1) <- 0;
          loop t sp isp fsp
        end
    | IStoreLocalPopTI (ic, i) ->
        Array.unsafe_set ilocals i (apply_ic ic ist.(isp - 1));
        tick vm;
        loop (pc + 1) sp (isp - 1) fsp
    | IStoreLocalPopJumpI (ic, i, t) ->
        Array.unsafe_set ilocals i (apply_ic ic ist.(isp - 1));
        loop t sp (isp - 1) fsp
    | IIncDecLocalJumpI (which, i, t) ->
        Array.unsafe_set ilocals i
          (Array.unsafe_get ilocals i + incdec_delta which);
        loop t sp isp fsp
    | IFieldIdxFieldI (i, slots, m, j, op, k, s2, m2) ->
        let o = as_obj (Array.get locals i) in
        let av = o.fields.cells.(field_slot o slots m) in
        let iv = ibinop_i op (Array.unsafe_get ilocals j) k in
        let eo = as_obj (index_read av iv) in
        ist.(isp) <- eo.ifields.(field_slot eo s2 m2);
        loop (pc + 1) sp (isp + 1) fsp
    | ITickLoadFieldCmpLocFalseI (j, slots, m, op, n, tk, t) ->
        tick vm;
        let o = as_obj (Array.get locals j) in
        if
          icmp op o.ifields.(field_slot o slots m) (Array.unsafe_get ilocals n)
        then begin
          if tk then tick vm;
          loop (pc + 1) sp isp fsp
        end
        else loop t sp isp fsp
    | ILoadFieldBinopJumpFalseI (i, slots, m, op, tk, t) ->
        let o = as_obj (Array.get locals i) in
        if ibinop_i op ist.(isp - 1) o.ifields.(field_slot o slots m) <> 0
        then begin
          if tk then tick vm;
          loop (pc + 1) sp (isp - 1) fsp
        end
        else loop t sp (isp - 1) fsp
    | IJumpBCCmpFalseI (op1, k, op2, tk, t) ->
        let rhs = ibinop_i op1 ist.(isp - 1) k in
        if icmp op2 ist.(isp - 2) rhs then begin
          if tk then tick vm;
          loop (pc + 1) sp (isp - 2) fsp
        end
        else loop t sp (isp - 2) fsp
    | IJumpLL2FBCCmpFalseI (i, j, slots, m, op1, k, op2, tk, t) ->
        let o = as_obj (Array.get locals j) in
        let rhs = ibinop_i op1 o.ifields.(field_slot o slots m) k in
        if icmp op2 (Array.unsafe_get ilocals i) rhs then begin
          if tk then tick vm;
          loop (pc + 1) sp isp fsp
        end
        else loop t sp isp fsp
    | ILoadIndexI i ->
        ost.(sp - 1) <- index_read ost.(sp - 1) (Array.unsafe_get ilocals i);
        loop (pc + 1) sp isp fsp
    | ILoadFieldIndexI (a, slots, m, i) ->
        let o = as_obj (Array.get locals a) in
        let av = o.fields.cells.(field_slot o slots m) in
        ost.(sp) <- index_read av (Array.unsafe_get ilocals i);
        loop (pc + 1) (sp + 1) isp fsp
    | ITickLoadFieldIndexI (a, slots, m, i) ->
        tick vm;
        let o = as_obj (Array.get locals a) in
        let av = o.fields.cells.(field_slot o slots m) in
        ost.(sp) <- index_read av (Array.unsafe_get ilocals i);
        loop (pc + 1) (sp + 1) isp fsp
    | ITLFIndexIStoreT (a, slots, m, i, x, ty) ->
        tick vm;
        let o = as_obj (Array.get locals a) in
        let av = o.fields.cells.(field_slot o slots m) in
        Array.set locals x
          (coerce ty (index_read av (Array.unsafe_get ilocals i)));
        tick vm;
        loop (pc + 1) sp isp fsp
    | ILoadBinopI (op, i) ->
        ist.(isp - 1) <- ibinop_i op ist.(isp - 1) (Array.unsafe_get ilocals i);
        loop (pc + 1) sp isp fsp
    | ILoadLoadFieldBinopI (x, y, slots, m, op) ->
        let a = Array.unsafe_get ilocals x in
        let o = as_obj (Array.get locals y) in
        ist.(isp) <- ibinop_i op a o.ifields.(field_slot o slots m);
        loop (pc + 1) sp (isp + 1) fsp
    | ILoadFieldBCAndFalseI (j, slots, m, op, k, t) ->
        let o = as_obj (Array.get locals j) in
        if ibinop_i op o.ifields.(field_slot o slots m) k <> 0 then
          loop (pc + 1) sp isp fsp
        else begin
          ist.(isp) <- 0;
          loop t sp (isp + 1) fsp
        end
    | ILoadLocFieldI (a, slots, m) ->
        let o = as_obj (Array.get locals a) in
        ist.(isp) <- field_slot o slots m;
        ost.(sp) <- VObj o;
        loop (pc + 1) (sp + 1) (isp + 1) fsp
    | ITickLocFieldI (a, slots, m) ->
        tick vm;
        let o = as_obj (Array.get locals a) in
        ist.(isp) <- field_slot o slots m;
        ost.(sp) <- VObj o;
        loop (pc + 1) (sp + 1) (isp + 1) fsp
    | IAssignFieldLIPop (ic, i) ->
        let o = as_obj ost.(sp - 1) in
        o.ifields.(ist.(isp - 1)) <- apply_ic ic (Array.unsafe_get ilocals i);
        loop (pc + 1) (sp - 1) (isp - 1) fsp
    | IAssignFieldLFIPop (ic, j, slots, m) ->
        let o2 = as_obj (Array.get locals j) in
        let v = apply_ic ic o2.ifields.(field_slot o2 slots m) in
        let o = as_obj ost.(sp - 1) in
        o.ifields.(ist.(isp - 1)) <- v;
        loop (pc + 1) (sp - 1) (isp - 1) fsp
    | IFieldStoreLI (tk, ic, n, slots, m, i) ->
        if tk then tick vm;
        let o = as_obj (Array.get locals n) in
        o.ifields.(field_slot o slots m) <-
          apply_ic ic (Array.unsafe_get ilocals i);
        loop (pc + 1) sp isp fsp
    | IFieldCopyII (tk, ic, a, s1, m1, j, s2, m2) ->
        if tk then tick vm;
        let o1 = as_obj (Array.get locals a) in
        let d = field_slot o1 s1 m1 in
        let o2 = as_obj (Array.get locals j) in
        o1.ifields.(d) <- apply_ic ic o2.ifields.(field_slot o2 s2 m2);
        loop (pc + 1) sp isp fsp
    | IThisLocFieldI (slots, m) ->
        (match frame.this with
        | Some o ->
            ist.(isp) <- field_slot o slots m;
            ost.(sp) <- VObj o
        | None -> runtime_error "'this' outside a method");
        loop (pc + 1) (sp + 1) (isp + 1) fsp
    | IAssignFieldCIPop (ic, k) ->
        let o = as_obj ost.(sp - 1) in
        o.ifields.(ist.(isp - 1)) <- apply_ic ic k;
        loop (pc + 1) (sp - 1) (isp - 1) fsp
    | IInitFieldLI (slots, m, ic, i) ->
        let o = this_obj frame in
        o.ifields.(field_slot o slots m) <-
          apply_ic ic (Array.unsafe_get ilocals i);
        loop (pc + 1) sp isp fsp
    | IInitFieldConstI (slots, m, ic, k) ->
        let o = this_obj frame in
        o.ifields.(field_slot o slots m) <- apply_ic ic k;
        loop (pc + 1) sp isp fsp
    | IInitFieldsI inits ->
        let o = this_obj frame in
        Array.iter
          (fun f ->
            match f with
            | FInitL (slots, m, ic, i) ->
                o.ifields.(field_slot o slots m) <-
                  apply_ic ic (Array.unsafe_get ilocals i)
            | FInitC (slots, m, ic, k) ->
                o.ifields.(field_slot o slots m) <- apply_ic ic k)
          inits;
        loop (pc + 1) sp isp fsp
    | IThisIdxFieldStoreI (tk, s1, m1, ix, s2, m2, ic, rhs) ->
        if tk then tick vm;
        (match frame.this with
        | Some o ->
            (* destination resolves fully before the rhs, matching the
               unfused evaluation order (and its error order) *)
            let av = o.fields.cells.(field_slot o s1 m1) in
            let idx =
              match ix with
              | IxLocal i -> Array.unsafe_get ilocals i
              | IxLocField (j, s, m) ->
                  let oj = as_obj (Array.get locals j) in
                  oj.ifields.(field_slot oj s m)
            in
            let o2 = as_obj (index_read av idx) in
            let d = field_slot o2 s2 m2 in
            let v =
              match rhs with
              | RConst k -> k
              | RLocal i -> Array.unsafe_get ilocals i
              | RThisIdxField (s4, m4, ix2, s6, m6, op, k) ->
                  let av2 = o.fields.cells.(field_slot o s4 m4) in
                  let idx2 =
                    match ix2 with
                    | IxLocal i -> Array.unsafe_get ilocals i
                    | IxLocField (j, s, m) ->
                        let oj = as_obj (Array.get locals j) in
                        oj.ifields.(field_slot oj s m)
                  in
                  let o3 = as_obj (index_read av2 idx2) in
                  ibinop_i op o3.ifields.(field_slot o3 s6 m6) k
            in
            o2.ifields.(d) <- apply_ic ic v
        | None -> runtime_error "'this' outside a method");
        loop (pc + 1) sp isp fsp
    | ITLFIndexIStoreJumpFBCI ((a, s0, m0, i0, x0, ty0), (n, s, m, op, k), ta, t)
      ->
        tick vm;
        let o = as_obj (Array.get locals a) in
        let av = o.fields.cells.(field_slot o s0 m0) in
        Array.set locals x0
          (coerce ty0 (index_read av (Array.unsafe_get ilocals i0)));
        tick vm;
        let o2 = as_obj (Array.get locals n) in
        if ibinop_i op o2.ifields.(field_slot o2 s m) k <> 0 then begin
          if ta then tick vm;
          loop (pc + 1) sp isp fsp
        end
        else loop t sp isp fsp
    | IRpnStoreI (dst, ops, ic) ->
        (* destination resolves first, then the rpn leaves left to
           right — the unfused statement's evaluation and error order.
           The int stack above [isp] is free scratch: the collapsed run
           was stack-neutral, so the recorded bound still covers it. *)
        let o, d =
          match dst with
          | DTickLocField (a, s, m) ->
              tick vm;
              let o = as_obj (Array.get locals a) in
              (o, field_slot o s m)
          | DFieldIdx (a, s, m, i, s2, m2) ->
              let oa = as_obj (Array.get locals a) in
              let av = oa.fields.cells.(field_slot oa s m) in
              let o = as_obj (index_read av (Array.unsafe_get ilocals i)) in
              (o, field_slot o s2 m2)
          | DTickFieldLocField (i, s, m, s2, m2) ->
              tick vm;
              let oi = as_obj (Array.get locals i) in
              let o = as_obj oi.fields.cells.(field_slot oi s m) in
              (o, field_slot o s2 m2)
        in
        let top =
          Array.fold_left
            (fun p r ->
              match r with
              | RpConst k ->
                  ist.(p) <- k;
                  p + 1
              | RpLocal i ->
                  ist.(p) <- Array.unsafe_get ilocals i;
                  p + 1
              | RpLoadField (j, s, m) ->
                  let oj = as_obj (Array.get locals j) in
                  ist.(p) <- oj.ifields.(field_slot oj s m);
                  p + 1
              | RpThisField (s, m) -> (
                  match frame.this with
                  | Some t ->
                      ist.(p) <- t.ifields.(field_slot t s m);
                      p + 1
                  | None -> runtime_error "'this' outside a method")
              | RpFieldIdxField (i, s, m, j, op, k, s2, m2) ->
                  let oi = as_obj (Array.get locals i) in
                  let av = oi.fields.cells.(field_slot oi s m) in
                  let iv = ibinop_i op (Array.unsafe_get ilocals j) k in
                  let eo = as_obj (index_read av iv) in
                  ist.(p) <- eo.ifields.(field_slot eo s2 m2);
                  p + 1
              | RpFieldField (j, s, m, s2, m2) ->
                  let oj = as_obj (Array.get locals j) in
                  let eo = as_obj oj.fields.cells.(field_slot oj s m) in
                  ist.(p) <- eo.ifields.(field_slot eo s2 m2);
                  p + 1
              | RpBinop op ->
                  ist.(p - 2) <- ibinop_i op ist.(p - 2) ist.(p - 1);
                  p - 1
              | RpBinopConst (op, k) ->
                  ist.(p - 1) <- ibinop_i op ist.(p - 1) k;
                  p)
            isp ops
        in
        o.ifields.(d) <- apply_ic ic ist.(top - 1);
        loop (pc + 1) sp isp fsp
    | IBinopConstCastStoreI (op, v, ty, i) ->
        let r = binop op ost.(sp - 1) v in
        let r = match r with VInt _ -> r | x -> vint (as_int x) in
        Array.unsafe_set ilocals i (as_int (coerce ty r));
        loop (pc + 1) (sp - 1) isp fsp
    | ILoadIBn idxs ->
        let k = Array.length idxs in
        for j = 0 to k - 1 do
          ost.(sp + j) <-
            vint (Array.unsafe_get ilocals (Array.unsafe_get idxs j))
        done;
        loop (pc + 1) (sp + k) isp fsp
    | ITickThisCallM (tk, f) ->
        if tk then tick vm;
        let o =
          match frame.this with
          | Some o -> o
          | None -> runtime_error "'this' outside a method"
        in
        ost.(sp) <- call_function vm f ~this:(Some o) ost (sp + 1) 0;
        loop (pc + 1) (sp + 1) isp fsp
    | IThisCallMStoreI (tk, f, op, v, ty, i) ->
        if tk then tick vm;
        let o =
          match frame.this with
          | Some o -> o
          | None -> runtime_error "'this' outside a method"
        in
        let r = binop op (call_function vm f ~this:(Some o) ost (sp + 1) 0) v in
        let r = match r with VInt _ -> r | x -> vint (as_int x) in
        Array.unsafe_set ilocals i (as_int (coerce ty r));
        loop (pc + 1) sp isp fsp
    | IIncDecJumpLocFCmpI (w, n, (x, y, slots, m, op, tk, texit), tb) ->
        Array.unsafe_set ilocals n
          (Array.unsafe_get ilocals n + incdec_delta w);
        let o = as_obj (Array.get locals y) in
        if icmp op (Array.unsafe_get ilocals x) o.ifields.(field_slot o slots m)
        then begin
          if tk then tick vm;
          loop tb sp isp fsp
        end
        else loop texit sp isp fsp
    | IIncDecJumpLL2FBCI (w, n, (x, y, slots, m, op1, k, op2, tk, texit), tb)
      ->
        Array.unsafe_set ilocals n
          (Array.unsafe_get ilocals n + incdec_delta w);
        let o = as_obj (Array.get locals y) in
        let rhs = ibinop_i op1 o.ifields.(field_slot o slots m) k in
        if icmp op2 (Array.unsafe_get ilocals x) rhs then begin
          if tk then tick vm;
          loop tb sp isp fsp
        end
        else loop texit sp isp fsp
    | ITLFIStoreFieldCopyII ((a, s, m, i, x, ty), (ic, a2, s1, m1, j, s2, m2))
      ->
        tick vm;
        let o = as_obj (Array.get locals a) in
        let av = o.fields.cells.(field_slot o s m) in
        Array.set locals x
          (coerce ty (index_read av (Array.unsafe_get ilocals i)));
        tick vm;
        let o1 = as_obj (Array.get locals a2) in
        let d = field_slot o1 s1 m1 in
        let o2 = as_obj (Array.get locals j) in
        o1.ifields.(d) <- apply_ic ic o2.ifields.(field_slot o2 s2 m2);
        loop (pc + 1) sp isp fsp
    | IThisFieldIdxFStoreI (lt, s, m, j, s2, m2, s3, m3, ic, i, tt) ->
        if lt then tick vm;
        let av =
          match frame.this with
          | Some o -> o.fields.cells.(field_slot o s m)
          | None -> runtime_error "'this' outside a method"
        in
        let oj = as_obj (Array.get locals j) in
        let idx = oj.ifields.(field_slot oj s2 m2) in
        let eo = as_obj (index_read av idx) in
        Array.unsafe_set ilocals i (apply_ic ic eo.ifields.(field_slot eo s3 m3));
        if tt then tick vm;
        loop (pc + 1) sp isp fsp
    | IThisXAssignI (tn, sd, md, ss, ms, xf, ic) ->
        for _ = 1 to tn do
          tick vm
        done;
        (match frame.this with
        | Some o ->
            let d = field_slot o sd md in
            let v = o.ifields.(field_slot o ss ms) in
            let v =
              match xf with
              | XBc3 (o1, k1, o2, k2, o3, k3) ->
                  ibinop_i o3 (ibinop_i o2 (ibinop_i o1 v k1) k2) k3
              | XUn op -> (
                  match op with
                  | Ast.Neg -> -v
                  | Ast.Not -> if v = 0 then 1 else 0
                  | Ast.BitNot -> lnot v
                  | Ast.UPlus -> v)
            in
            o.ifields.(d) <- apply_ic ic v
        | None -> runtime_error "'this' outside a method");
        loop (pc + 1) sp isp fsp
    | IReturnThisFieldI (slots, m) -> (
        tick vm;
        match frame.this with
        | Some o ->
            let v = vint o.ifields.(field_slot o slots m) in
            if b.b_scoped then ret_unwind vm locals scopes;
            v
        | None -> runtime_error "'this' outside a method")
    | IBinopConst2I (o1, k1, o2, k2) ->
        ist.(isp - 1) <- ibinop_i o2 (ibinop_i o1 ist.(isp - 1) k1) k2;
        loop (pc + 1) sp isp fsp
    | IBinopConst3I (o1, k1, o2, k2, o3, k3) ->
        ist.(isp - 1) <-
          ibinop_i o3 (ibinop_i o2 (ibinop_i o1 ist.(isp - 1) k1) k2) k3;
        loop (pc + 1) sp isp fsp
    | ILoadFieldBCBinopI (n, slots, m, op1, k, op2) ->
        let o = as_obj (Array.get locals n) in
        let rhs = ibinop_i op1 o.ifields.(field_slot o slots m) k in
        ist.(isp - 1) <- ibinop_i op2 ist.(isp - 1) rhs;
        loop (pc + 1) sp isp fsp
    | ITickLoadBCI (n, op, k) ->
        tick vm;
        ist.(isp) <- ibinop_i op (Array.unsafe_get ilocals n) k;
        loop (pc + 1) sp (isp + 1) fsp
    | IJumpLocTFCmpFalseI (op, x, slots, m, tk, t) -> (
        match frame.this with
        | Some o ->
            if icmp op (Array.unsafe_get ilocals x) o.ifields.(field_slot o slots m)
            then begin
              if tk then tick vm;
              loop (pc + 1) sp isp fsp
            end
            else loop t sp isp fsp
        | None -> runtime_error "'this' outside a method")
    | IScanStepI (j, slots, m, op, n, a, s2, m2, bdst, ty, tback) ->
        tick vm;
        let o = as_obj (Array.get locals j) in
        if
          icmp op o.ifields.(field_slot o slots m) (Array.unsafe_get ilocals n)
        then begin
          tick vm;
          loop (pc + 1) sp isp fsp
        end
        else begin
          tick vm;
          let o2 = as_obj (Array.get locals a) in
          Array.set locals bdst
            (coerce ty o2.fields.cells.(field_slot o2 s2 m2));
          loop tback sp isp fsp
        end
    | ILoopScanI
        (x, op0, k0, texit0, j, slots, m, op, n, a, s2, m2, bdst, ty) ->
        let rec scan () =
          if icmp op0 (Array.unsafe_get ilocals x) k0 then begin
            tick vm;
            tick vm;
            let o = as_obj (Array.get locals j) in
            if
              icmp op
                o.ifields.(field_slot o slots m)
                (Array.unsafe_get ilocals n)
            then begin
              tick vm;
              -1
            end
            else begin
              tick vm;
              let o2 = as_obj (Array.get locals a) in
              Array.set locals bdst
                (coerce ty o2.fields.cells.(field_slot o2 s2 m2));
              (* same per-iteration profiling rule as [ILoopScan] *)
              if profiling then
                Array.unsafe_set prow pc (Array.unsafe_get prow pc + 1);
              scan ()
            end
          end
          else texit0
        in
        let t = scan () in
        if t >= 0 then loop t sp isp fsp else loop (pc + 2) sp isp fsp
  in
  if not b.b_scoped then loop start 0 0 0
  else
    try loop start 0 0 0
    with e ->
      let bt = Printexc.get_raw_backtrace () in
      let e = unwind_exn vm locals scopes e in
      Printexc.raise_with_backtrace e bt

(* -- entry points -------------------------------------------------------------- *)

let make_profiler (cp : cprogram) : Vm_profile.t =
  Vm_profile.create
    ~body_sizes:(Array.map (fun b -> Array.length b.b_code) cp.cp_bodies)
    ~nfuncs:(Array.length cp.cp_funcs)

let make_vm ?(dead = Member.Set.empty) ?profiler ~step_limit ~call_depth_limit
    ~heap_object_limit (cp : cprogram) : vm =
  let rp = cp.cp_rp in
  let prof_counts, prof_calls =
    match profiler with
    | None -> ([||], [||])
    | Some (p : Vm_profile.t) -> (p.Vm_profile.body_counts, p.Vm_profile.call_counts)
  in
  {
    cp;
    funcs = cp.cp_funcs;
    classes = rp.rp_classes;
    destroy = cp.cp_destroy;
    profile = Profile.create ~dead rp.rp_table;
    globals =
      { arr_id = -1; cells = Array.make (Array.length rp.rp_globals) VUnit };
    statics = { arr_id = -1; cells = Array.map default_value rp.rp_static_tys };
    output = Buffer.create 256;
    obj_counter = 0;
    steps = 0;
    step_limit = max 1 step_limit;
    next_stop = min (max 1 step_limit) deadline_check_interval;
    call_depth = 0;
    max_call_depth = 0;
    call_depth_limit = max 1 call_depth_limit;
    heap_object_limit = max 1 heap_object_limit;
    prof_counts;
    prof_calls;
  }

let execute (vm : vm) : value =
  let cp = vm.cp in
  let rp = cp.cp_rp in
  (* native resource exhaustion becomes a structured limit error, as in
     the tree engine *)
  try
    (* globals, in declaration order *)
    Array.iteri
      (fun i (g : rglobal) ->
        vm.globals.cells.(i) <-
          (match cp.cp_ginit.(i) with
          | Some body ->
              coerce g.rg_coerce
                (exec_code vm (mk_frame ~ints:0 ~flts:0 0 None) body 0)
          | None -> default_value g.rg_default))
      rp.rp_globals;
    (try call_function vm rp.rp_main ~this:None empty_vals 0 0
     with Abort_called -> VInt 134)
  with
  | Stack_overflow ->
      limit_exceeded "interpreter stack exhausted (call depth limit %d)"
        vm.call_depth_limit
  | Out_of_memory ->
      limit_exceeded "interpreter heap exhausted (object limit %d)"
        vm.heap_object_limit

let output vm = Buffer.contents vm.output
let steps vm = vm.steps
let allocations vm = vm.obj_counter
let max_call_depth vm = vm.max_call_depth
let profile vm = vm.profile

(* == hot-site profiler report ================================================= *)

let mnemonic (i : instr) : string =
  match i with
  | IConst _ -> "IConst"
  | ILoad _ -> "ILoad"
  | ILoadRef _ -> "ILoadRef"
  | IGlobal _ -> "IGlobal"
  | IStatic _ -> "IStatic"
  | IThis -> "IThis"
  | IPop -> "IPop"
  | IUnary _ -> "IUnary"
  | IBinop _ -> "IBinop"
  | IToBool -> "IToBool"
  | ICastInt -> "ICastInt"
  | ICastFloat -> "ICastFloat"
  | IField _ -> "IField"
  | IDeref -> "IDeref"
  | IIndex -> "IIndex"
  | IAsObj -> "IAsObj"
  | IMemPtrDeref -> "IMemPtrDeref"
  | IAddrOf -> "IAddrOf"
  | ILocLocal _ -> "ILocLocal"
  | ILocLocalRef _ -> "ILocLocalRef"
  | ILocGlobal _ -> "ILocGlobal"
  | ILocStatic _ -> "ILocStatic"
  | ILocField _ -> "ILocField"
  | ILocDeref -> "ILocDeref"
  | ILocIndex -> "ILocIndex"
  | ILocMemPtr -> "ILocMemPtr"
  | ILocToPtr -> "ILocToPtr"
  | IObjToPtr -> "IObjToPtr"
  | IAssign _ -> "IAssign"
  | ICompound _ -> "ICompound"
  | IIncDec _ -> "IIncDec"
  | IStoreLocal _ -> "IStoreLocal"
  | IStoreLocalPop _ -> "IStoreLocalPop"
  | IStoreRawPop _ -> "IStoreRawPop"
  | IIncDecLocal _ -> "IIncDecLocal"
  | IIncDecLocalPop _ -> "IIncDecLocalPop"
  | IJump _ -> "IJump"
  | IJumpIfFalse _ -> "IJumpIfFalse"
  | IJumpIfTrue _ -> "IJumpIfTrue"
  | IJumpCmpFalse _ -> "IJumpCmpFalse"
  | IAndFalse _ -> "IAndFalse"
  | IOrTrue _ -> "IOrTrue"
  | ITick -> "ITick"
  | IPushScope _ -> "IPushScope"
  | IPopScope -> "IPopScope"
  | IExitScopes _ -> "IExitScopes"
  | IReturn -> "IReturn"
  | IReturnUnit -> "IReturnUnit"
  | IRaise _ -> "IRaise"
  | INewObj _ -> "INewObj"
  | INewScalar _ -> "INewScalar"
  | INewArrObj _ -> "INewArrObj"
  | INewArrScalar _ -> "INewArrScalar"
  | IDelete -> "IDelete"
  | IDeclScalar _ -> "IDeclScalar"
  | IDeclStackArr _ -> "IDeclStackArr"
  | IDeclCtor _ -> "IDeclCtor"
  | IBuiltin _ -> "IBuiltin"
  | ICallFunc _ -> "ICallFunc"
  | ICallMethod _ -> "ICallMethod"
  | ICallVirtual _ -> "ICallVirtual"
  | ICallFunPtr _ -> "ICallFunPtr"
  | ICallCtor _ -> "ICallCtor"
  | IInitField _ -> "IInitField"
  | IInitFieldArr _ -> "IInitFieldArr"
  | IInitFieldScalar _ -> "IInitFieldScalar"
  | ILoadField _ -> "ILoadField"
  | ITickLoad _ -> "ITickLoad"
  | ITickLoadField _ -> "ITickLoadField"
  | IThisField _ -> "IThisField"
  | IIndexField _ -> "IIndexField"
  | ILoadLocField _ -> "ILoadLocField"
  | ILoadIndex _ -> "ILoadIndex"
  | IFieldBinop _ -> "IFieldBinop"
  | ILoadFieldBinop _ -> "ILoadFieldBinop"
  | IBinopConst _ -> "IBinopConst"
  | ITickN _ -> "ITickN"
  | ITickPushScope _ -> "ITickPushScope"
  | IAssignPop _ -> "IAssignPop"
  | IStoreLocalPopT _ -> "IStoreLocalPopT"
  | IStoreLocalPopJump _ -> "IStoreLocalPopJump"
  | IIncDecLocalJump _ -> "IIncDecLocalJump"
  | IJumpIfFalseT _ -> "IJumpIfFalseT"
  | IJumpCmpFalseT _ -> "IJumpCmpFalseT"
  | IJumpCmpConstFalse _ -> "IJumpCmpConstFalse"
  | IJumpCmpConstFalseT _ -> "IJumpCmpConstFalseT"
  | IJumpLocCmpConstFalse _ -> "IJumpLocCmpConstFalse"
  | IJumpLocCmpConstFalseT _ -> "IJumpLocCmpConstFalseT"
  | IJumpLocCmpFalse _ -> "IJumpLocCmpFalse"
  | IJumpLocCmpFalseT _ -> "IJumpLocCmpFalseT"
  | IJumpLoc2CmpFalse _ -> "IJumpLoc2CmpFalse"
  | IJumpLoc2CmpFalseT _ -> "IJumpLoc2CmpFalseT"
  | ITickLoadFieldStore _ -> "ITickLoadFieldStore"
  | ITickLoadFieldStoreJump _ -> "ITickLoadFieldStoreJump"
  | ILoadBinopConst _ -> "ILoadBinopConst"
  | ILoadFieldBC _ -> "ILoadFieldBC"
  | ILoadFieldLoadBC _ -> "ILoadFieldLoadBC"
  | IFieldIdxField _ -> "IFieldIdxField"
  | ILoadFieldBinop2 _ -> "ILoadFieldBinop2"
  | IBinopAssignPop _ -> "IBinopAssignPop"
  | ITickThisField _ -> "ITickThisField"
  | ILoad2FieldBinop _ -> "ILoad2FieldBinop"
  | ILoadLoadField _ -> "ILoadLoadField"
  | ILocFieldLoadField _ -> "ILocFieldLoadField"
  | IStoreTLoadField _ -> "IStoreTLoadField"
  | ITickLoadFieldIndex _ -> "ITickLoadFieldIndex"
  | ITLFIndexStoreT _ -> "ITLFIndexStoreT"
  | ITickLoadFieldCmpLocFalse _ -> "ITickLoadFieldCmpLocFalse"
  | ITickLoadFieldCmpLocFalseT _ -> "ITickLoadFieldCmpLocFalseT"
  | IBinopConstAndFalse _ -> "IBinopConstAndFalse"
  | IJumpIfFalseTPushScope _ -> "IJumpIfFalseTPushScope"
  | ILoadFieldBinopJumpFalse _ -> "ILoadFieldBinopJumpFalse"
  | ILoadFieldBinopJumpFalseT _ -> "ILoadFieldBinopJumpFalseT"
  | IJumpBCCmpFalse (_, _, _, tk, _) ->
      if tk then "IJumpBCCmpFalseT" else "IJumpBCCmpFalse"
  | IScanStep _ -> "IScanStep"
  | ILoopScan _ -> "ILoopScan"
  | IBinopLoadField _ -> "IBinopLoadField"
  | IBinop2 _ -> "IBinop2"
  | IThisFieldBinop _ -> "IThisFieldBinop"
  | IFieldBinop2AssignPop _ -> "IFieldBinop2AssignPop"
  | IBinop2AssignPop _ -> "IBinop2AssignPop"
  | IConstFieldBinop2 _ -> "IConstFieldBinop2"
  | ILoadLocFieldLoadField _ -> "ILoadLocFieldLoadField"
  | ILoadFieldBCAndFalse _ -> "ILoadFieldBCAndFalse"
  | IJumpLocFCmpFalse _ -> "IJumpLocFCmpFalse"
  | IJumpLocFCmpFalseT _ -> "IJumpLocFCmpFalseT"
  | IJumpLL2FBCCmpFalse _ -> "IJumpLL2FBCCmpFalse"
  | IJumpLL2FBCCmpFalseT _ -> "IJumpLL2FBCCmpFalseT"
  (* typed (untagged) instructions *)
  | IConstI _ -> "IConstI"
  | IConstF _ -> "IConstF"
  | ILoadI _ -> "ILoadI"
  | ILoadF _ -> "ILoadF"
  | IFieldI _ -> "IFieldI"
  | IFieldF _ -> "IFieldF"
  | IIndexI -> "IIndexI"
  | IBoxI -> "IBoxI"
  | IBoxF -> "IBoxF"
  | IBoxIU -> "IBoxIU"
  | IBoxFU -> "IBoxFU"
  | IPopI -> "IPopI"
  | IPopF -> "IPopF"
  | ILoadIB _ -> "ILoadIB"
  | ILoadFB _ -> "ILoadFB"
  | ILoadFieldIB _ -> "ILoadFieldIB"
  | ILoadFieldFB _ -> "ILoadFieldFB"
  | ICastFI -> "ICastFI"
  | ICastIF -> "ICastIF"
  | IUnaryI _ -> "IUnaryI"
  | INegF -> "INegF"
  | INotF -> "INotF"
  | IToBoolI -> "IToBoolI"
  | IBinopII _ -> "IBinopII"
  | IArithFF _ -> "IArithFF"
  | ICmpFF _ -> "ICmpFF"
  | IArithIF _ -> "IArithIF"
  | IArithFI _ -> "IArithFI"
  | ICmpIF _ -> "ICmpIF"
  | ICmpFI _ -> "ICmpFI"
  | IStoreLocalI _ -> "IStoreLocalI"
  | IStoreLocalPopI _ -> "IStoreLocalPopI"
  | IStoreLocalF _ -> "IStoreLocalF"
  | IStoreLocalPopF _ -> "IStoreLocalPopF"
  | IStoreLocalIB _ -> "IStoreLocalIB"
  | IStoreLocalIBPop _ -> "IStoreLocalIBPop"
  | IStoreLocalFB _ -> "IStoreLocalFB"
  | IStoreLocalFBPop _ -> "IStoreLocalFBPop"
  | IIncDecLocalI _ -> "IIncDecLocalI"
  | IIncDecLocalPopI _ -> "IIncDecLocalPopI"
  | IIncDecLocalF _ -> "IIncDecLocalF"
  | IIncDecLocalPopF _ -> "IIncDecLocalPopF"
  | ICompoundLocalI _ -> "ICompoundLocalI"
  | ICompoundLocalIPop _ -> "ICompoundLocalIPop"
  | ICompoundLocalF _ -> "ICompoundLocalF"
  | ICompoundLocalFPop _ -> "ICompoundLocalFPop"
  | ICompoundLocalB _ -> "ICompoundLocalB"
  | ICompoundLocalBPop _ -> "ICompoundLocalBPop"
  | ILocFieldI _ -> "ILocFieldI"
  | ILocFieldF _ -> "ILocFieldF"
  | IAssignFieldI _ -> "IAssignFieldI"
  | IAssignFieldIPop _ -> "IAssignFieldIPop"
  | IAssignFieldF -> "IAssignFieldF"
  | IAssignFieldFPop -> "IAssignFieldFPop"
  | IAssignFieldIB _ -> "IAssignFieldIB"
  | IAssignFieldIBPop _ -> "IAssignFieldIBPop"
  | IAssignFieldFB _ -> "IAssignFieldFB"
  | IAssignFieldFBPop _ -> "IAssignFieldFBPop"
  | ICompoundFieldI _ -> "ICompoundFieldI"
  | ICompoundFieldIPop _ -> "ICompoundFieldIPop"
  | ICompoundFieldF _ -> "ICompoundFieldF"
  | ICompoundFieldFPop _ -> "ICompoundFieldFPop"
  | ICompoundFieldB _ -> "ICompoundFieldB"
  | ICompoundFieldBPop _ -> "ICompoundFieldBPop"
  | IIncDecFieldI _ -> "IIncDecFieldI"
  | IIncDecFieldIPop _ -> "IIncDecFieldIPop"
  | IIncDecFieldF _ -> "IIncDecFieldF"
  | IIncDecFieldFPop _ -> "IIncDecFieldFPop"
  | IDeclScalarI _ -> "IDeclScalarI"
  | IDeclScalarF _ -> "IDeclScalarF"
  | IInitFieldScalarI _ -> "IInitFieldScalarI"
  | IInitFieldScalarF _ -> "IInitFieldScalarF"
  | IInitFieldScalarB _ -> "IInitFieldScalarB"
  | IJumpIfFalseI (tk, _) -> if tk then "IJumpIfFalseTI" else "IJumpIfFalseI"
  | IJumpIfTrueI _ -> "IJumpIfTrueI"
  | IJumpIfFalseF (tk, _) -> if tk then "IJumpIfFalseTF" else "IJumpIfFalseF"
  | IJumpIfTrueF _ -> "IJumpIfTrueF"
  | IAndFalseI _ -> "IAndFalseI"
  | IOrTrueI _ -> "IOrTrueI"
  | IJumpCmpFalseI (_, tk, _) ->
      if tk then "IJumpCmpFalseTI" else "IJumpCmpFalseI"
  | IJumpCmpConstFalseI (_, _, tk, _) ->
      if tk then "IJumpCmpConstFalseTI" else "IJumpCmpConstFalseI"
  | IJumpLocCmpConstFalseI (_, _, _, tk, _) ->
      if tk then "IJumpLocCmpConstFalseTI" else "IJumpLocCmpConstFalseI"
  | IJumpLocCmpFalseI (_, _, tk, _) ->
      if tk then "IJumpLocCmpFalseTI" else "IJumpLocCmpFalseI"
  | IJumpLoc2CmpFalseI (_, _, _, tk, _) ->
      if tk then "IJumpLoc2CmpFalseTI" else "IJumpLoc2CmpFalseI"
  | IJumpLocFCmpFalseI (_, _, _, _, _, tk, _) ->
      if tk then "IJumpLocFCmpFalseTI" else "IJumpLocFCmpFalseI"
  | ITickLoadI _ -> "ITickLoadI"
  | ILoadFieldI _ -> "ILoadFieldI"
  | ILoadFieldF _ -> "ILoadFieldF"
  | ITickLoadFieldI _ -> "ITickLoadFieldI"
  | IThisFieldI _ -> "IThisFieldI"
  | IThisFieldF _ -> "IThisFieldF"
  | ITickThisFieldI _ -> "ITickThisFieldI"
  | IIndexFieldI _ -> "IIndexFieldI"
  | ILoadLoadFieldI _ -> "ILoadLoadFieldI"
  | IBinopConstI _ -> "IBinopConstI"
  | ILoadBinopConstI _ -> "ILoadBinopConstI"
  | ILoadFieldBCI _ -> "ILoadFieldBCI"
  | ILoadFieldLoadBCI _ -> "ILoadFieldLoadBCI"
  | ILoadFieldBinopI _ -> "ILoadFieldBinopI"
  | IBinopLoadFieldI _ -> "IBinopLoadFieldI"
  | IThisFieldBinopI _ -> "IThisFieldBinopI"
  | IBinopConstAndFalseI _ -> "IBinopConstAndFalseI"
  | IStoreLocalPopTI _ -> "IStoreLocalPopTI"
  | IStoreLocalPopJumpI _ -> "IStoreLocalPopJumpI"
  | IIncDecLocalJumpI _ -> "IIncDecLocalJumpI"
  | IFieldIdxFieldI _ -> "IFieldIdxFieldI"
  | ITickLoadFieldCmpLocFalseI (_, _, _, _, _, tk, _) ->
      if tk then "ITickLoadFieldCmpLocFalseTI" else "ITickLoadFieldCmpLocFalseI"
  | ILoadFieldBinopJumpFalseI (_, _, _, _, tk, _) ->
      if tk then "ILoadFieldBinopJumpFalseTI" else "ILoadFieldBinopJumpFalseI"
  | IJumpBCCmpFalseI (_, _, _, tk, _) ->
      if tk then "IJumpBCCmpFalseTI" else "IJumpBCCmpFalseI"
  | IJumpLL2FBCCmpFalseI (_, _, _, _, _, _, _, tk, _) ->
      if tk then "IJumpLL2FBCCmpFalseTI" else "IJumpLL2FBCCmpFalseI"
  | IScanStepI _ -> "IScanStepI"
  | ILoopScanI _ -> "ILoopScanI"
  | ILoadIndexI _ -> "ILoadIndexI"
  | ILoadFieldIndexI _ -> "ILoadFieldIndexI"
  | ITickLoadFieldIndexI _ -> "ITickLoadFieldIndexI"
  | ITLFIndexIStoreT _ -> "ITLFIndexIStoreT"
  | ILoadBinopI _ -> "ILoadBinopI"
  | ILoadLoadFieldBinopI _ -> "ILoadLoadFieldBinopI"
  | ILoadFieldBCAndFalseI _ -> "ILoadFieldBCAndFalseI"
  | ILoadLocFieldI _ -> "ILoadLocFieldI"
  | ITickLocFieldI _ -> "ITickLocFieldI"
  | IAssignFieldLIPop _ -> "IAssignFieldLIPop"
  | IAssignFieldLFIPop _ -> "IAssignFieldLFIPop"
  | IFieldStoreLI (tk, _, _, _, _, _) ->
      if tk then "ITickFieldStoreLI" else "IFieldStoreLI"
  | IFieldCopyII (tk, _, _, _, _, _, _, _) ->
      if tk then "ITickFieldCopyII" else "IFieldCopyII"
  | IThisLocFieldI _ -> "IThisLocFieldI"
  | IAssignFieldCIPop _ -> "IAssignFieldCIPop"
  | IInitFieldLI _ -> "IInitFieldLI"
  | IInitFieldConstI _ -> "IInitFieldConstI"
  | IBinopConst2I _ -> "IBinopConst2I"
  | IBinopConst3I _ -> "IBinopConst3I"
  | ILoadFieldBCBinopI _ -> "ILoadFieldBCBinopI"
  | ITickLoadBCI _ -> "ITickLoadBCI"
  | IJumpLocTFCmpFalseI (_, _, _, _, tk, _) ->
      if tk then "IJumpLocTFCmpFalseTI" else "IJumpLocTFCmpFalseI"
  | IJumpLocFieldBCFalseI (tp, _, _, _, _, _, ta, _) -> (
      match (tp, ta) with
      | false, false -> "IJumpLocFieldBCFalseI"
      | false, true -> "IJumpLocFieldBCFalseTI"
      | true, false -> "ITickJumpLocFieldBCFalseI"
      | true, true -> "ITickJumpLocFieldBCFalseTI")
  | IJumpThisFieldBCFalseI (tp, _, _, _, _, ta, _) -> (
      match (tp, ta) with
      | false, false -> "IJumpThisFieldBCFalseI"
      | false, true -> "IJumpThisFieldBCFalseTI"
      | true, false -> "ITickJumpThisFieldBCFalseI"
      | true, true -> "ITickJumpThisFieldBCFalseTI")
  | IThisXAssignI (tn, _, _, _, _, _, _) ->
      if tn > 0 then "ITickThisXAssignI" else "IThisXAssignI"
  | IReturnThisFieldI _ -> "IReturnThisFieldI"
  | IInitFieldsI _ -> "IInitFieldsI"
  | IThisIdxFieldStoreI (tk, _, _, _, _, _, _, _) ->
      if tk then "ITickThisIdxFieldStoreI" else "IThisIdxFieldStoreI"
  | ITLFIndexIStoreJumpFBCI (_, _, ta, _) ->
      if ta then "ITLFIndexIStoreJumpFBCTI" else "ITLFIndexIStoreJumpFBCI"
  | IRpnStoreI ((DTickLocField _ | DTickFieldLocField _), _, _) ->
      "ITickRpnStoreI"
  | IRpnStoreI _ -> "IRpnStoreI"
  | IBinopConstCastStoreI _ -> "IBinopConstCastStoreI"
  | ILoadIBn _ -> "ILoadIBn"
  | ITLFIStoreFieldCopyII _ -> "ITLFIStoreFieldCopyII"
  | IThisCallMStoreI (tk, _, _, _, _, _) ->
      if tk then "ITickThisCallMStoreI" else "IThisCallMStoreI"
  | IIncDecJumpLocFCmpI _ -> "IIncDecJumpLocFCmpI"
  | IIncDecJumpLL2FBCI _ -> "IIncDecJumpLL2FBCI"
  | ITickThisCallM (tk, _) -> if tk then "ITickThisCallM" else "IThisCallM"
  | IThisFieldIdxFStoreI (lt, _, _, _, _, _, _, _, _, _, _) ->
      if lt then "ITickThisFieldIdxFStoreI" else "IThisFieldIdxFStoreI"

(* Typed (untagged) opcodes, for the profiler's typed-vs-generic
   dispatch split. Bridge boxing instructions count as typed: they only
   exist on classified paths. *)
let is_typed (i : instr) : bool =
  match i with
  | IConstI _ | IConstF _ | ILoadI _ | ILoadF _ | IFieldI _ | IFieldF _
  | IIndexI | IBoxI | IBoxF | IBoxIU | IBoxFU | IPopI | IPopF | ILoadIB _
  | ILoadIBn _ | IThisFieldIdxFStoreI _ | ITLFIStoreFieldCopyII _
  | IIncDecJumpLocFCmpI _ | IIncDecJumpLL2FBCI _
  | ILoadFB _ | ILoadFieldIB _ | ILoadFieldFB _ | ICastFI | ICastIF
  | IUnaryI _ | INegF | INotF | IToBoolI | IBinopII _ | IArithFF _
  | ICmpFF _ | IArithIF _ | IArithFI _ | ICmpIF _ | ICmpFI _
  | IStoreLocalI _ | IStoreLocalPopI _ | IStoreLocalF _ | IStoreLocalPopF _
  | IStoreLocalIB _ | IStoreLocalIBPop _ | IStoreLocalFB _
  | IStoreLocalFBPop _ | IIncDecLocalI _ | IIncDecLocalPopI _
  | IIncDecLocalF _ | IIncDecLocalPopF _ | ICompoundLocalI _
  | ICompoundLocalIPop _ | ICompoundLocalF _ | ICompoundLocalFPop _
  | ICompoundLocalB _ | ICompoundLocalBPop _ | ILocFieldI _ | ILocFieldF _
  | IAssignFieldI _ | IAssignFieldIPop _ | IAssignFieldF | IAssignFieldFPop
  | IAssignFieldIB _ | IAssignFieldIBPop _ | IAssignFieldFB _
  | IAssignFieldFBPop _ | ICompoundFieldI _ | ICompoundFieldIPop _
  | ICompoundFieldF _ | ICompoundFieldFPop _ | ICompoundFieldB _
  | ICompoundFieldBPop _ | IIncDecFieldI _ | IIncDecFieldIPop _
  | IIncDecFieldF _ | IIncDecFieldFPop _ | IDeclScalarI _ | IDeclScalarF _
  | IInitFieldScalarI _ | IInitFieldScalarF _ | IInitFieldScalarB _
  | IJumpIfFalseI _ | IJumpIfTrueI _ | IJumpIfFalseF _
  | IJumpIfTrueF _ | IAndFalseI _ | IOrTrueI _
  | IJumpCmpFalseI _ | IJumpCmpConstFalseI _
  | IJumpLocCmpConstFalseI _
  | IJumpLocCmpFalseI _
  | IJumpLoc2CmpFalseI _ | IJumpLocFCmpFalseI _
  | ITickLoadI _ | ILoadFieldI _ | ILoadFieldF _
  | ITickLoadFieldI _ | IThisFieldI _ | IThisFieldF _ | ITickThisFieldI _
  | IIndexFieldI _ | ILoadLoadFieldI _ | IBinopConstI _ | ILoadBinopConstI _
  | ILoadFieldBCI _ | ILoadFieldLoadBCI _ | ILoadFieldBinopI _
  | IBinopLoadFieldI _ | IThisFieldBinopI _ | IBinopConstAndFalseI _
  | IStoreLocalPopTI _ | IStoreLocalPopJumpI _ | IIncDecLocalJumpI _
  | IFieldIdxFieldI _ | ITickLoadFieldCmpLocFalseI _
  | ILoadFieldBinopJumpFalseI _
  | IJumpBCCmpFalseI _
  | IJumpLL2FBCCmpFalseI _ | IScanStepI _
  | ILoopScanI _ | ILoadIndexI _ | ILoadFieldIndexI _ | ITickLoadFieldIndexI _
  | ITLFIndexIStoreT _ | ILoadBinopI _ | ILoadLoadFieldBinopI _
  | ILoadFieldBCAndFalseI _ | ILoadLocFieldI _ | ITickLocFieldI _
  | IAssignFieldLIPop _ | IAssignFieldLFIPop _ | IFieldStoreLI _
  | IFieldCopyII _
  | IThisLocFieldI _ | IAssignFieldCIPop _ | IInitFieldLI _
  | IInitFieldConstI _ | IBinopConst2I _ | IBinopConst3I _
  | ILoadFieldBCBinopI _ | ITickLoadBCI _ | IJumpLocTFCmpFalseI _
  | IJumpLocFieldBCFalseI _ | IJumpThisFieldBCFalseI _ | IThisXAssignI _
  | IReturnThisFieldI _ | IInitFieldsI _ | IThisIdxFieldStoreI _
  | ITLFIndexIStoreJumpFBCI _ | IRpnStoreI _ | IBinopConstCastStoreI _ ->
      true
  | _ -> false

(* The branch target carried by an instruction, for back-branch (loop)
   detection — the same constructor enumeration [patch_to] maintains.
   [ILoopScan] is handled separately: its back edge is internal. *)
let branch_target (i : instr) : int option =
  match i with
  | IJump t | IJumpIfFalse t | IJumpIfTrue t | IJumpIfFalseT t
  | IAndFalse t | IOrTrue t
  | IJumpCmpFalse (_, t) | IJumpCmpFalseT (_, t)
  | IJumpCmpConstFalse (_, _, t) | IJumpCmpConstFalseT (_, _, t)
  | IJumpLocCmpConstFalse (_, _, _, t) | IJumpLocCmpConstFalseT (_, _, _, t)
  | IJumpLocCmpFalse (_, _, t) | IJumpLocCmpFalseT (_, _, t)
  | IJumpLoc2CmpFalse (_, _, _, t) | IJumpLoc2CmpFalseT (_, _, _, t)
  | ITickLoadFieldStoreJump (_, _, _, _, _, t)
  | IStoreLocalPopJump (_, _, t)
  | IIncDecLocalJump (_, _, t)
  | ITickLoadFieldCmpLocFalse (_, _, _, _, _, t)
  | ITickLoadFieldCmpLocFalseT (_, _, _, _, _, t)
  | IBinopConstAndFalse (_, _, t)
  | IJumpIfFalseTPushScope (t, _)
  | ILoadFieldBinopJumpFalse (_, _, _, _, t)
  | ILoadFieldBinopJumpFalseT (_, _, _, _, t)
  | IJumpBCCmpFalse (_, _, _, _, t)
  | ILoadFieldBCAndFalse (_, _, _, _, _, t)
  | IJumpLocFCmpFalse (_, _, _, _, _, t)
  | IJumpLocFCmpFalseT (_, _, _, _, _, t)
  | IJumpLL2FBCCmpFalse (_, _, _, _, _, _, _, t)
  | IJumpLL2FBCCmpFalseT (_, _, _, _, _, _, _, t)
  | IScanStep (_, _, _, _, _, _, _, _, _, _, t)
  (* typed branch forms *)
  | IJumpIfFalseI (_, t) | IJumpIfTrueI t
  | IJumpIfFalseF (_, t) | IJumpIfTrueF t
  | IAndFalseI t | IOrTrueI t
  | IJumpCmpFalseI (_, _, t)
  | IJumpCmpConstFalseI (_, _, _, t)
  | IJumpLocCmpConstFalseI (_, _, _, _, t)
  | IJumpLocCmpFalseI (_, _, _, t)
  | IJumpLoc2CmpFalseI (_, _, _, _, t)
  | IJumpLocFCmpFalseI (_, _, _, _, _, _, t)
  | IBinopConstAndFalseI (_, _, t)
  | ILoadFieldBCAndFalseI (_, _, _, _, _, t)
  | IJumpLocTFCmpFalseI (_, _, _, _, _, t)
  | IStoreLocalPopJumpI (_, _, t)
  | IIncDecLocalJumpI (_, _, t)
  | ITickLoadFieldCmpLocFalseI (_, _, _, _, _, _, t)
  | ILoadFieldBinopJumpFalseI (_, _, _, _, _, t)
  | IJumpBCCmpFalseI (_, _, _, _, t)
  | IJumpLL2FBCCmpFalseI (_, _, _, _, _, _, _, _, t)
  | IScanStepI (_, _, _, _, _, _, _, _, _, _, t)
  | IJumpLocFieldBCFalseI (_, _, _, _, _, _, _, t)
  | ITLFIndexIStoreJumpFBCI (_, _, _, t)
  | IIncDecJumpLocFCmpI (_, _, _, t) | IIncDecJumpLL2FBCI (_, _, _, t)
  | IJumpThisFieldBCFalseI (_, _, _, _, _, _, t) ->
      Some t
  | _ -> None

(* A loop site: a branch whose target is at or before itself, or a
   whole-loop superinstruction. *)
let is_loop_site (i : instr) ~pc =
  match i with
  | ILoopScan _ | ILoopScanI _ -> true
  | _ -> ( match branch_target i with Some t -> t <= pc | None -> false)

let profile_report (cp : cprogram) (p : Vm_profile.t) ~steps :
    Vm_profile.report =
  let opcodes : (string, int ref) Hashtbl.t = Hashtbl.create 64 in
  let total = ref 0 in
  let typed = ref 0 in
  let funcs = ref [] in
  let sites = ref [] in
  Array.iteri
    (fun bid (body : cbody) ->
      let counts = p.Vm_profile.body_counts.(bid) in
      let owner, fidx = cp.cp_owners.(bid) in
      let body_total = ref 0 in
      Array.iteri
        (fun pc n ->
          if n > 0 then begin
            body_total := !body_total + n;
            let ins = body.b_code.(pc) in
            if is_typed ins then typed := !typed + n;
            let m = mnemonic ins in
            (match Hashtbl.find_opt opcodes m with
            | Some r -> r := !r + n
            | None -> Hashtbl.add opcodes m (ref n));
            if is_loop_site ins ~pc then
              sites :=
                {
                  Vm_profile.sr_func = owner;
                  sr_pc = pc;
                  sr_op = m;
                  sr_count = n;
                }
                :: !sites
          end)
        counts;
      total := !total + !body_total;
      let calls =
        match fidx with
        | Some fi -> p.Vm_profile.call_counts.(fi)
        | None -> 0
      in
      if !body_total > 0 || calls > 0 then
        funcs :=
          {
            Vm_profile.fr_name = owner;
            fr_instrs = !body_total;
            fr_calls = calls;
          }
          :: !funcs)
    cp.cp_bodies;
  let by_count_desc name count a b =
    let c = compare (count b) (count a) in
    if c <> 0 then c else String.compare (name a) (name b)
  in
  {
    Vm_profile.r_steps = steps;
    r_dispatches = !total;
    r_typed = !typed;
    r_opcodes =
      Hashtbl.fold (fun m r acc -> (m, !r) :: acc) opcodes []
      |> List.sort (by_count_desc fst snd);
    r_functions =
      List.sort
        (by_count_desc
           (fun (f : Vm_profile.func_row) -> f.Vm_profile.fr_name)
           (fun (f : Vm_profile.func_row) -> f.Vm_profile.fr_instrs))
        !funcs;
    r_sites =
      List.sort
        (by_count_desc
           (fun (s : Vm_profile.site_row) ->
             Printf.sprintf "%s@%d" s.Vm_profile.sr_func s.Vm_profile.sr_pc)
           (fun (s : Vm_profile.site_row) -> s.Vm_profile.sr_count))
        !sites;
  }

(* Debug aid (surfaced via DEADMEM_DISASM in [Interp.run_bytecode]):
   every compiled body as one [pc mnemonic [-> target]] line per
   instruction. Operand detail is deliberately omitted — the mnemonic
   stream with branch structure is what superinstruction work needs. *)
let disassemble (cp : cprogram) : string =
  let buf = Buffer.create 4096 in
  Array.iteri
    (fun bid (body : cbody) ->
      let owner, _ = cp.cp_owners.(bid) in
      Buffer.add_string buf
        (Printf.sprintf "== %s (body %d, omax %d imax %d fmax %d) ==\n" owner
           bid body.b_omax body.b_imax body.b_fmax);
      Array.iteri
        (fun pc ins ->
          let tgt =
            match branch_target ins with
            | Some t -> Printf.sprintf " -> %d" t
            | None -> ""
          in
          Buffer.add_string buf
            (Printf.sprintf "  %4d  %s%s\n" pc (mnemonic ins) tgt))
        body.b_code)
    cp.cp_bodies;
  Buffer.contents buf
