(* Runtime values for the MiniC++ interpreter.

   Objects are flattened: a complete object holds one slot per instance
   data member of its class and of every (transitively) inherited base.
   Slot numbers are assigned per dynamic class by the resolve pass from
   the member's identity (defining class, name); virtual bases therefore
   appear once, matching C++ semantics. Repeated non-virtual bases are
   rejected by the semantic analysis. Class-typed data members are
   embedded objects stored as [VObj]. *)

open Sema

type value =
  | VUnit
  | VInt of int          (* int/long/char/bool *)
  | VFloat of float
  | VStr of string       (* char* pointing at a string literal *)
  | VNull
  | VPtr of pointer
  | VObj of obj          (* class-typed subobject / local *)
  | VArr of harray       (* array object (local, member, or heap) *)
  | VMemPtr of Member.t
  | VFunPtr of Typed_ast.Func_id.t

and pointer =
  | PObj of obj                (* pointer to a class object *)
  | PCell of value ref         (* pointer to a scalar variable or member *)
  | PArr of harray * int       (* pointer into an array *)

and obj = {
  obj_id : int;
  obj_class : string;  (* most-derived (dynamic) class *)
  obj_cid : int;       (* interned id of the dynamic class (resolve pass) *)
  fields : harray;     (* boxed member bank, one cell per boxed member *)
  ifields : int array;   (* unboxed integral member bank (resolve pass) *)
  ffields : float array; (* unboxed floating member bank (resolve pass) *)
}

and harray = {
  arr_id : int;  (* heap allocation id; -1 for stack/member arrays *)
  cells : value array;
}

exception Runtime_error of string

(* A configured resource limit (steps, call depth, object count) was hit,
   or a native resource exception (Stack_overflow, Out_of_memory) was
   intercepted. Kept distinct from [Runtime_error] so the CLI can map it
   to its own exit code (3) in the documented contract. *)
exception Limit_exceeded of string

let runtime_error fmt = Fmt.kstr (fun m -> raise (Runtime_error m)) fmt
let limit_exceeded fmt = Fmt.kstr (fun m -> raise (Limit_exceeded m)) fmt

(* -- cooperative deadlines ----------------------------------------------------

   A per-domain wall-clock deadline, checked by both engines at their
   existing tick points (every few thousand steps, so the check stays
   off the hot path). Domains cannot be interrupted asynchronously in
   OCaml, so a hung request can only be cancelled cooperatively: the
   serve daemon arms a deadline before running a request and the
   interpreter raises [Limit_exceeded] — the same structured error as
   the step/depth/object guards — once it passes. Domain-local state
   keeps concurrent worker domains' deadlines independent. *)

let deadline_key : float Domain.DLS.key =
  Domain.DLS.new_key (fun () -> infinity)

(* [arm_deadline t] arms an absolute wall-clock deadline [t] (the
   [Unix.gettimeofday] timebase, seconds) for the calling domain. *)
let arm_deadline t = Domain.DLS.set deadline_key t
let disarm_deadline () = Domain.DLS.set deadline_key infinity
let deadline_expired () = Unix.gettimeofday () > Domain.DLS.get deadline_key

let check_deadline () =
  if deadline_expired () then
    limit_exceeded "deadline exceeded: request wall-clock budget consumed"

(* How many interpreter steps may pass between wall-clock reads. Both
   engines fold this into their step-limit compare (a [next_stop]
   checkpoint) so the hot tick path stays one increment + one test. *)
let deadline_check_interval = 2048

let with_deadline t f =
  arm_deadline t;
  Fun.protect ~finally:disarm_deadline f

(* Shared [VInt] blocks for the values the interpreted programs actually
   produce (loop counters, flags, small arithmetic): [VInt] is immutable,
   so sharing one block per small integer is unobservable, and it keeps
   the hot arithmetic/comparison paths of both engines off the minor
   heap. *)
let vint_cache = Array.init 1281 (fun i -> VInt (i - 256))

let[@inline] vint n =
  if n >= -256 && n <= 1024 then Array.unsafe_get vint_cache (n + 256)
  else VInt n

let vtrue = VInt 1
let vfalse = VInt 0

(* Truthiness for conditions. *)
let truthy = function
  | VInt n -> n <> 0
  | VFloat f -> f <> 0.0
  | VNull -> false
  | VPtr _ | VObj _ | VArr _ | VStr _ | VFunPtr _ | VMemPtr _ -> true
  | VUnit -> runtime_error "void value used in condition"

let as_int = function
  | VInt n -> n
  | VFloat f -> int_of_float f
  | VNull -> 0
  | v ->
      runtime_error "expected an integer value, got %s"
        (match v with
        | VStr _ -> "a string"
        | VPtr _ -> "a pointer"
        | VObj _ -> "an object"
        | VArr _ -> "an array"
        | VMemPtr _ -> "a member pointer"
        | VFunPtr _ -> "a function pointer"
        | VUnit -> "void"
        | VInt _ | VFloat _ | VNull -> assert false)

let as_float = function
  | VFloat f -> f
  | VInt n -> float_of_int n
  | _ -> runtime_error "expected a floating-point value"

let as_obj = function
  | VObj o -> o
  | VPtr (PObj o) -> o
  | _ -> runtime_error "expected a class object"

(* Equality used by == and != : pointer identity for pointers. *)
let value_eq a b =
  match (a, b) with
  | VInt x, VInt y -> x = y
  | VFloat x, VFloat y -> x = y
  | VInt x, VFloat y | VFloat y, VInt x -> float_of_int x = y
  | VNull, VNull -> true
  | VNull, VPtr _ | VPtr _, VNull -> false
  | VNull, (VInt 0) | (VInt 0), VNull -> true
  | VPtr (PObj a), VPtr (PObj b) -> a == b
  | VPtr (PCell a), VPtr (PCell b) -> a == b
  | VPtr (PArr (a, i)), VPtr (PArr (b, j)) -> a.cells == b.cells && i = j
  | VPtr _, VPtr _ -> false
  | VStr a, VStr b -> String.equal a b
  | VFunPtr a, VFunPtr b -> Typed_ast.Func_id.equal a b
  | VMemPtr a, VMemPtr b -> Member.equal a b
  | _ -> runtime_error "incomparable values"

(* Default (zero) value for a type; class-typed slots are filled during
   construction and [VUnit] here is a placeholder that construction
   replaces. *)
let rec default_value (ty : Frontend.Ast.type_expr) : value =
  match ty with
  | Frontend.Ast.TBool | Frontend.Ast.TChar | Frontend.Ast.TInt
  | Frontend.Ast.TLong ->
      VInt 0
  | Frontend.Ast.TFloat | Frontend.Ast.TDouble -> VFloat 0.0
  | Frontend.Ast.TPtr _ | Frontend.Ast.TFun _ | Frontend.Ast.TMemPtrTy _ ->
      VNull
  | Frontend.Ast.TRef _ -> VNull
  | Frontend.Ast.TNamed _ -> VUnit (* replaced by construction *)
  | Frontend.Ast.TArr (elem, n) ->
      VArr { arr_id = -1; cells = Array.init n (fun _ -> default_value elem) }
  | Frontend.Ast.TVoid -> VUnit

(* Coerce a value being stored into a slot of static type [ty]: truncates
   floats into ints and widens ints into floats, mirroring C++ implicit
   conversions on assignment and argument passing. *)
let coerce (ty : Frontend.Ast.type_expr) (v : value) : value =
  match (ty, v) with
  | (Frontend.Ast.TInt | Frontend.Ast.TLong), VFloat f -> vint (int_of_float f)
  | Frontend.Ast.TChar, VInt n -> vint (n land 255)
  | Frontend.Ast.TChar, VFloat f -> vint (int_of_float f land 255)
  | Frontend.Ast.TBool, VInt n -> if n <> 0 then vtrue else vfalse
  | Frontend.Ast.TBool, VFloat f -> if f <> 0.0 then vtrue else vfalse
  | (Frontend.Ast.TFloat | Frontend.Ast.TDouble), VInt n -> VFloat (float_of_int n)
  | Frontend.Ast.TPtr _, VArr h -> VPtr (PArr (h, 0))  (* array decay *)
  | Frontend.Ast.TPtr _, VObj o -> VPtr (PObj o)
  | _ -> v

(* -- lvalue locations ----------------------------------------------------------

   Shared by both execution engines (the tree-walker and the bytecode
   VM): an lvalue location is a slot of some backing array (frame,
   object, globals, statics, or a program array), or a raw cell reached
   through a legacy [PCell] pointer. *)

type location =
  | LRef of value ref
  | LSlot of harray * int
  | LInt of int array * int    (* unboxed integral slot (frame or object bank) *)
  | LFloat of float array * int  (* unboxed floating slot *)

let read_loc = function
  | LRef r -> !r
  | LSlot (h, i) -> h.cells.(i)
  | LInt (a, i) -> vint a.(i)
  | LFloat (a, i) -> VFloat a.(i)

(* Unboxed slots store the scalar image of the (already coerced) value.
   Stores into them come from assignments whose static type is integral /
   floating, so in a type-checked program the value is always VInt /
   VFloat; [as_int]/[as_float] keep the historical error strings for
   anything else. *)
let write_loc loc v =
  match loc with
  | LRef r -> r := v
  | LSlot (h, i) -> h.cells.(i) <- v
  | LInt (a, i) -> a.(i) <- as_int v
  | LFloat (a, i) -> a.(i) <- as_float v

(* Pointers made from locations always carry [arr_id = -1], exactly as
   the scope-chain interpreter's [ptr_of_loc] did: a pointer *into* a
   heap array is not the allocation itself, so [free] through it never
   journals a free. *)
let ptr_of_loc = function
  | LRef r -> VPtr (PCell r)
  | LSlot (h, i) ->
      VPtr (PArr ((if h.arr_id = -1 then h else { arr_id = -1; cells = h.cells }), i))
  | LInt _ | LFloat _ ->
      (* the resolve pass keeps every address-taken slot in the boxed
         bank, so a pointer to an unboxed slot cannot be formed *)
      runtime_error "cannot take the address of an unboxed slot"

(* Shared empty banks, so frames and objects without unboxed slots cost
   nothing extra. *)
let no_ints : int array = [||]
let no_floats : float array = [||]

(* A call frame: flat slot-addressed locals (one bank per representation)
   plus the receiver. *)
type frame = {
  locals : harray;
  ilocals : int array;
  flocals : float array;
  this : obj option;
}

let mk_frame ~ints ~flts nslots this =
  {
    locals = { arr_id = -1; cells = Array.make nslots VUnit };
    ilocals = (if ints = 0 then no_ints else Array.make ints 0);
    flocals = (if flts = 0 then no_floats else Array.make flts 0.0);
    this;
  }

(* Raised by the [abort()] builtin; intercepted at the interpreter entry
   point, where it becomes exit status 134. *)
exception Abort_called

(* -- operator semantics ----------------------------------------------------------

   One copy of the arithmetic/comparison/unary semantics, shared by both
   engines so error strings and edge cases cannot drift. *)

let unary op v =
  match (op, v) with
  | Frontend.Ast.Neg, VInt n -> vint (-n)
  | Frontend.Ast.Neg, VFloat f -> VFloat (-.f)
  | Frontend.Ast.UPlus, v -> v
  | Frontend.Ast.Not, v -> if truthy v then vfalse else vtrue
  | Frontend.Ast.BitNot, VInt n -> vint (lnot n)
  | _ -> runtime_error "invalid unary operand"

(* The boolean result of a relational operator ([<] [>] [<=] [>=]). *)
let compare_test op va vb =
  let cmp =
    match (va, vb) with
    | VInt x, VInt y -> compare x y
    | VFloat x, VFloat y -> compare x y
    | VInt x, VFloat y -> compare (float_of_int x) y
    | VFloat x, VInt y -> compare x (float_of_int y)
    | VPtr (PArr (h1, i)), VPtr (PArr (h2, j)) when h1.cells == h2.cells ->
        compare i j
    | _ -> runtime_error "invalid comparison operands"
  in
  match op with
  | Frontend.Ast.Lt -> cmp < 0
  | Frontend.Ast.Gt -> cmp > 0
  | Frontend.Ast.Le -> cmp <= 0
  | Frontend.Ast.Ge -> cmp >= 0
  | _ -> assert false

let compare_values op va vb = if compare_test op va vb then vtrue else vfalse

let arith op va vb =
  match (va, vb) with
  | VPtr (PArr (h, i)), VInt n -> (
      match op with
      | Frontend.Ast.Add -> VPtr (PArr (h, i + n))
      | Frontend.Ast.Sub -> VPtr (PArr (h, i - n))
      | _ -> runtime_error "invalid pointer arithmetic")
  | VInt n, VPtr (PArr (h, i)) when op = Frontend.Ast.Add ->
      VPtr (PArr (h, i + n))
  | VPtr (PArr (h1, i)), VPtr (PArr (h2, j))
    when op = Frontend.Ast.Sub && h1.cells == h2.cells ->
      vint (i - j)
  | VFloat _, _ | _, VFloat _ -> (
      let x = as_float va and y = as_float vb in
      match op with
      | Frontend.Ast.Add -> VFloat (x +. y)
      | Frontend.Ast.Sub -> VFloat (x -. y)
      | Frontend.Ast.Mul -> VFloat (x *. y)
      | Frontend.Ast.Div ->
          if y = 0.0 then runtime_error "floating division by zero"
          else VFloat (x /. y)
      | _ -> runtime_error "invalid floating operands")
  | _ -> (
      let x = as_int va and y = as_int vb in
      match op with
      | Frontend.Ast.Add -> vint (x + y)
      | Frontend.Ast.Sub -> vint (x - y)
      | Frontend.Ast.Mul -> vint (x * y)
      | Frontend.Ast.Div ->
          if y = 0 then runtime_error "division by zero" else vint (x / y)
      | Frontend.Ast.Mod ->
          if y = 0 then runtime_error "modulo by zero" else vint (x mod y)
      | Frontend.Ast.BAnd -> vint (x land y)
      | Frontend.Ast.BOr -> vint (x lor y)
      | Frontend.Ast.BXor -> vint (x lxor y)
      | Frontend.Ast.Shl -> vint (x lsl y)
      | Frontend.Ast.Shr -> vint (x asr y)
      | _ -> assert false)

let compound_op op old rv ty =
  let binop =
    match op with
    | Frontend.Ast.AddAssign -> Frontend.Ast.Add
    | Frontend.Ast.SubAssign -> Frontend.Ast.Sub
    | Frontend.Ast.MulAssign -> Frontend.Ast.Mul
    | Frontend.Ast.DivAssign -> Frontend.Ast.Div
    | Frontend.Ast.ModAssign -> Frontend.Ast.Mod
    | Frontend.Ast.AndAssign -> Frontend.Ast.BAnd
    | Frontend.Ast.OrAssign -> Frontend.Ast.BOr
    | Frontend.Ast.XorAssign -> Frontend.Ast.BXor
    | Frontend.Ast.ShlAssign -> Frontend.Ast.Shl
    | Frontend.Ast.ShrAssign -> Frontend.Ast.Shr
    | Frontend.Ast.Assign -> assert false
  in
  coerce ty (arith binop old rv)

let pp_value ppf = function
  | VUnit -> Fmt.string ppf "void"
  | VInt n -> Fmt.int ppf n
  | VFloat f -> Fmt.float ppf f
  | VStr s -> Fmt.pf ppf "%S" s
  | VNull -> Fmt.string ppf "NULL"
  | VPtr (PObj o) -> Fmt.pf ppf "<%s#%d>" o.obj_class o.obj_id
  | VPtr (PCell _) -> Fmt.string ppf "<ptr>"
  | VPtr (PArr (_, i)) -> Fmt.pf ppf "<arr+%d>" i
  | VObj o -> Fmt.pf ppf "<obj %s#%d>" o.obj_class o.obj_id
  | VArr a -> Fmt.pf ppf "<array[%d]>" (Array.length a.cells)
  | VMemPtr m -> Fmt.pf ppf "<&%s>" (Member.to_string m)
  | VFunPtr f -> Fmt.pf ppf "<&%s>" (Typed_ast.Func_id.to_string f)
