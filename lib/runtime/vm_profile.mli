(** VM hot-site profiler: raw counting state for the bytecode engine
    plus the aggregated report.

    This module owns the data; {!Bytecode} fills the counters from its
    dispatch loop and builds the {!report} (it alone can name opcodes
    and recognise branch instructions). A profiled VM runs on one
    domain, so the counters are plain unsynchronised [int array]s and
    the recording hot path is one bounds-unchecked load/store pair —
    and exactly one predictable branch when profiling is off. *)

(** Raw counting state: per-body-per-pc dispatch counts and
    per-function call counts. *)
type t = {
  body_counts : int array array;  (** by body id, then by pc *)
  call_counts : int array;  (** by function index *)
}

(** [create ~body_sizes ~nfuncs] preallocates zeroed counters;
    [body_sizes.(id)] is the instruction count of compiled body [id].
    Use {!Bytecode.make_profiler} rather than calling this directly. *)
val create : body_sizes:int array -> nfuncs:int -> t

type func_row = {
  fr_name : string;
  fr_instrs : int;  (** dispatches attributed to this body *)
  fr_calls : int;
      (** function-protocol invocations (0 for destructor and
          global-initializer bodies, which are dispatched directly) *)
}

type site_row = {
  sr_func : string;
  sr_pc : int;
  sr_op : string;  (** opcode mnemonic at the site *)
  sr_count : int;
}

(** The aggregated profile. Invariant: the opcode counts and the
    per-function instruction counts are two groupings of the same
    per-site counters, so both sum to [r_dispatches]. [r_steps] is the
    interpreter's statement-step counter, carried for cross-checking —
    dispatches and steps differ where superinstruction fusion batches
    ticks ([ITickN]) or collapses whole loop iterations ([ILoopScan])
    into one dispatch. *)
type report = {
  r_steps : int;
  r_dispatches : int;
  r_typed : int;
      (** dispatches of typed (untagged-stack) opcodes; the generic
          count is [r_dispatches - r_typed] *)
  r_opcodes : (string * int) list;  (** descending by count *)
  r_functions : func_row list;  (** descending by instruction count *)
  r_sites : site_row list;  (** back-branch (loop) sites, descending *)
}

(** Human-readable table; [top] (default 20) bounds each section. *)
val to_text : ?top:int -> report -> string

(** The full report as one JSON object:
    [{"steps":..,"dispatches":..,"opcodes":[..],"functions":[..],
      "hot_sites":[..]}]. *)
val to_json : report -> string
