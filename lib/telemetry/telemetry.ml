(* Lightweight analysis telemetry: counters, gauges and spans.

   Every pipeline layer (lexer, parser, sema, callgraph, liveness,
   eliminate/layout, interpreter) registers its instruments at module
   initialisation and records into them unconditionally; each recording
   operation is a single load-and-branch when telemetry is disabled (the
   default), so the instrumentation can stay in place permanently.

   Design points:
   - instruments are *handles* (records with a mutable cell), created
     once per process by [Counter.make]/[Gauge.make]; the hot path never
     touches the registry, only the handle;
   - counters are monotone: deltas are clamped to be non-negative, so a
     counter read is always >= every earlier read within a run;
   - spans record wall-clock intervals and export to the Chrome
     trace-event format (the JSON array flavour that [chrome://tracing]
     and Perfetto load directly);
   - [reset] clears recorded values but keeps registrations, so one
     process can measure several independent runs (the bench harness
     resets between benchmarks);
   - instruments are domain-safe: counters and gauges are [Atomic]
     cells and the span journal is mutex-protected, so parallel batch
     analysis ([deadmem check --jobs]) records correct totals;
   - the [DEADMEM_TELEMETRY] environment variable force-enables
     collection at load time, for harnesses that cannot pass a flag
     through (e.g. timing [dune runtest] with instrumentation live). *)

(* -- enablement -------------------------------------------------------------- *)

let enabled_flag =
  ref
    (match Sys.getenv_opt "DEADMEM_TELEMETRY" with
    | Some ("1" | "true" | "on" | "yes") -> true
    | Some _ | None -> false)

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

let now_us () = Unix.gettimeofday () *. 1e6

(* -- counters ----------------------------------------------------------------- *)

(* Registration happens at module initialisation, but spawned domains
   may race a late [make] against another domain's: one lock covers both
   registries. *)
let registry_mutex = Mutex.create ()

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

module Counter = struct
  type t = { name : string; value : int Atomic.t }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 64

  let make name =
    with_registry @@ fun () ->
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
        let c = { name; value = Atomic.make 0 } in
        Hashtbl.add registry name c;
        c

  (* monotone: negative deltas are ignored rather than subtracted *)
  let add c n =
    if !enabled_flag && n > 0 then ignore (Atomic.fetch_and_add c.value n)

  let incr c = if !enabled_flag then ignore (Atomic.fetch_and_add c.value 1)
  let value c = Atomic.get c.value
  let name c = c.name
end

(* -- gauges ------------------------------------------------------------------- *)

module Gauge = struct
  (* last-writer-wins across domains; [touched] flips monotonically *)
  type t = { name : string; value : int Atomic.t; touched : bool Atomic.t }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32

  let make name =
    with_registry @@ fun () ->
    match Hashtbl.find_opt registry name with
    | Some g -> g
    | None ->
        let g = { name; value = Atomic.make 0; touched = Atomic.make false } in
        Hashtbl.add registry name g;
        g

  let set g v =
    if !enabled_flag then begin
      Atomic.set g.value v;
      Atomic.set g.touched true
    end

  let value g = Atomic.get g.value
  let name g = g.name
end

(* -- histograms ---------------------------------------------------------------- *)

module Histogram = struct
  (* Log-bucketed (HDR-style) latency histograms over non-negative
     integers (microseconds by convention).

     Bucketing: values 0..3 get exact buckets; above that each
     power-of-two octave is split into [sub_per_octave] sub-buckets
     keyed by the two bits below the leading bit, so every recorded
     value lands in a bucket whose upper bound overshoots it by < 25%.
     With 63-bit ints the leading bit position is at most 61, so 248
     buckets cover the whole range.

     Recording is wait-free: one [Atomic.fetch_and_add] on the bucket
     plus one on the running sum and a CAS loop on the max. The
     disabled path is the same single load-and-branch as counters. *)

  let sub_per_octave = 4
  let nbuckets = 4 + (60 * sub_per_octave)

  (* position of the most significant set bit; [msb 4 = 2] *)
  let msb v =
    let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
    go v 0

  let bucket_index v =
    if v < 4 then if v < 0 then 0 else v
    else
      let m = msb v in
      let sub = (v lsr (m - 2)) land 3 in
      let i = 4 + ((m - 2) * sub_per_octave) + sub in
      if i >= nbuckets then nbuckets - 1 else i

  (* inclusive upper bound of bucket [i] — the value reported for any
     quantile that falls in the bucket *)
  let bucket_upper i =
    if i < 4 then i
    else
      let oct = 2 + ((i - 4) / sub_per_octave) in
      let sub = (i - 4) mod sub_per_octave in
      let width = 1 lsl (oct - 2) in
      (1 lsl oct) + ((sub + 1) * width) - 1

  type t = {
    name : string;
    buckets : int Atomic.t array;
    sum : int Atomic.t;
    max : int Atomic.t;
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 16

  let make name =
    with_registry @@ fun () ->
    match Hashtbl.find_opt registry name with
    | Some h -> h
    | None ->
        let h =
          {
            name;
            buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
            sum = Atomic.make 0;
            max = Atomic.make 0;
          }
        in
        Hashtbl.add registry name h;
        h

  let rec bump_max cell v =
    let cur = Atomic.get cell in
    if v > cur && not (Atomic.compare_and_set cell cur v) then bump_max cell v

  let record h v =
    let v = if v < 0 then 0 else v in
    ignore (Atomic.fetch_and_add h.buckets.(bucket_index v) 1);
    ignore (Atomic.fetch_and_add h.sum v);
    bump_max h.max v

  let observe h v = if !enabled_flag then record h v
  let name h = h.name

  (* A snapshot is a plain value: sparse (bucket index, count) pairs in
     ascending index order. The count is the sum of the bucket counts,
     so a quiescent snapshot always agrees with the number of observes
     that landed. *)
  type snap = {
    h_name : string;
    h_count : int;
    h_sum : int;
    h_max : int;  (** 0 when empty *)
    h_buckets : (int * int) list;
  }

  let snapshot h =
    let buckets = ref [] and count = ref 0 in
    for i = nbuckets - 1 downto 0 do
      let c = Atomic.get h.buckets.(i) in
      if c > 0 then begin
        buckets := (i, c) :: !buckets;
        count := !count + c
      end
    done;
    {
      h_name = h.name;
      h_count = !count;
      h_sum = Atomic.get h.sum;
      h_max = Atomic.get h.max;
      h_buckets = !buckets;
    }

  (* merge two sorted sparse bucket lists, summing shared indices —
     associative and commutative, so worker-domain snapshots can be
     folded together in any order *)
  let merge a b =
    let rec go xs ys =
      match (xs, ys) with
      | [], r | r, [] -> r
      | (i, c) :: xs', (j, d) :: ys' ->
          if i = j then (i, c + d) :: go xs' ys'
          else if i < j then (i, c) :: go xs' ys
          else (j, d) :: go xs ys'
    in
    {
      h_name = a.h_name;
      h_count = a.h_count + b.h_count;
      h_sum = a.h_sum + b.h_sum;
      h_max = (if a.h_max >= b.h_max then a.h_max else b.h_max);
      h_buckets = go a.h_buckets b.h_buckets;
    }

  let empty_snap name =
    { h_name = name; h_count = 0; h_sum = 0; h_max = 0; h_buckets = [] }

  (* offline builder for harnesses that already hold raw samples *)
  let of_values ~name values =
    let s =
      List.fold_left
        (fun s v ->
          let v = if v < 0 then 0 else v in
          merge s
            {
              h_name = name;
              h_count = 1;
              h_sum = v;
              h_max = v;
              h_buckets = [ (bucket_index v, 1) ];
            })
        (empty_snap name) values
    in
    s

  (* quantile estimate: the upper bound of the bucket holding the
     rank-[ceil q*count] observation, clamped to the exact max so
     p99 <= max always holds *)
  let quantile s q =
    if s.h_count = 0 then 0
    else
      let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
      let rank =
        let r = int_of_float (ceil (q *. float_of_int s.h_count)) in
        if r < 1 then 1 else if r > s.h_count then s.h_count else r
      in
      let rec go cum = function
        | [] -> s.h_max
        | (i, c) :: rest ->
            let cum = cum + c in
            if cum >= rank then
              let u = bucket_upper i in
              if u > s.h_max then s.h_max else u
            else go cum rest
      in
      go 0 s.h_buckets

  let mean s =
    if s.h_count = 0 then 0.0
    else float_of_int s.h_sum /. float_of_int s.h_count
end

module Span = struct
  (* A completed span; [depth] is the nesting level at entry, recorded so
     textual dumps can indent without re-deriving nesting from times. *)
  type completed = {
    sp_name : string;
    sp_start_us : float;
    sp_dur_us : float;
    sp_depth : int;
    sp_trace : string option;
  }

  type t = {
    name : string;
    start_us : float;
    depth : int;
    live : bool;
    trace : string option;
  }

  (* the journal is shared across domains; [journal_mutex] covers both
     the list and the nesting depth *)
  let completed_rev : completed list ref = ref []
  let completed_count = ref 0
  let cur_depth = ref 0
  let journal_mutex = Mutex.create ()

  (* Journal cap for long-lived processes (the serve daemon): with no
     cap the journal grows one record per span forever. When a cap is
     set, the *newest* [cap] spans are retained — a live stats endpoint
     cares about recent activity — and the trim runs only once the
     journal reaches twice the cap, so it is amortized O(1) per span. *)
  let cap = ref None
  let dropped = ref 0

  let locked f =
    Mutex.lock journal_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock journal_mutex) f

  let disabled =
    { name = ""; start_us = 0.0; depth = 0; live = false; trace = None }

  let enter ?trace name =
    if not !enabled_flag then disabled
    else
      locked @@ fun () ->
      let s =
        { name; start_us = now_us (); depth = !cur_depth; live = true; trace }
      in
      incr cur_depth;
      s

  let exit s =
    if s.live then
      locked @@ fun () ->
      decr cur_depth;
      completed_rev :=
        {
          sp_name = s.name;
          sp_start_us = s.start_us;
          sp_dur_us = now_us () -. s.start_us;
          sp_depth = s.depth;
          sp_trace = s.trace;
        }
        :: !completed_rev;
      incr completed_count;
      match !cap with
      | Some c when !completed_count >= 2 * c ->
          (* newest-first list: keep the first [c] records *)
          completed_rev := List.filteri (fun i _ -> i < c) !completed_rev;
          dropped := !dropped + (!completed_count - c);
          completed_count := c
      | _ -> ()

  let with_ ?trace name f =
    let s = enter ?trace name in
    Fun.protect ~finally:(fun () -> exit s) f

  let cap_setting () = locked @@ fun () -> !cap

  (* completed spans in chronological (entry-order) … exit order is fine
     for trace export, which sorts by timestamp anyway *)
  let completed () = locked @@ fun () -> List.rev !completed_rev

  let set_cap c =
    locked @@ fun () ->
    cap := c;
    match c with
    | Some c when !completed_count > c ->
        completed_rev := List.filteri (fun i _ -> i < c) !completed_rev;
        dropped := !dropped + (!completed_count - c);
        completed_count := c
    | _ -> ()

  let dropped_count () = locked @@ fun () -> !dropped
end

let set_span_cap = Span.set_cap
let spans_dropped = Span.dropped_count
let span_cap = Span.cap_setting

(* -- snapshots ----------------------------------------------------------------- *)

let sorted_bindings registry value =
  Hashtbl.fold (fun name inst acc -> (name, value inst) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters () =
  with_registry (fun () ->
      sorted_bindings Counter.registry (fun c -> Atomic.get c.Counter.value))
  |> List.filter (fun (_, v) -> v > 0)

let gauges () =
  with_registry (fun () ->
      Hashtbl.fold
        (fun name (g : Gauge.t) acc ->
          if Atomic.get g.Gauge.touched then
            (name, Atomic.get g.Gauge.value) :: acc
          else acc)
        Gauge.registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* snapshots of every histogram with at least one observation, by name *)
let histograms () =
  with_registry (fun () ->
      Hashtbl.fold
        (fun _ (h : Histogram.t) acc -> Histogram.snapshot h :: acc)
        Histogram.registry [])
  |> List.filter (fun (s : Histogram.snap) -> s.Histogram.h_count > 0)
  |> List.sort (fun (a : Histogram.snap) b ->
         String.compare a.Histogram.h_name b.Histogram.h_name)

let reset () =
  with_registry (fun () ->
      Hashtbl.iter
        (fun _ (c : Counter.t) -> Atomic.set c.Counter.value 0)
        Counter.registry;
      Hashtbl.iter
        (fun _ (g : Gauge.t) ->
          Atomic.set g.Gauge.value 0;
          Atomic.set g.Gauge.touched false)
        Gauge.registry;
      Hashtbl.iter
        (fun _ (h : Histogram.t) ->
          Array.iter (fun b -> Atomic.set b 0) h.Histogram.buckets;
          Atomic.set h.Histogram.sum 0;
          Atomic.set h.Histogram.max 0)
        Histogram.registry);
  Span.locked (fun () ->
      Span.completed_rev := [];
      Span.completed_count := 0;
      Span.dropped := 0;
      Span.cur_depth := 0)

(* -- JSON rendering ------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let obj_of_bindings bs =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" (json_escape k) v) bs)
  ^ "}"

(* Microsecond quantities are printed with a fixed-point format:
   floating-point notation with an exponent is valid JSON but annoys
   line-oriented consumers. *)
let span_json (s : Span.completed) =
  let trace =
    match s.Span.sp_trace with
    | None -> ""
    | Some t -> Printf.sprintf ",\"trace\":\"%s\"" (json_escape t)
  in
  Printf.sprintf
    "{\"name\":\"%s\",\"start_us\":%.1f,\"dur_us\":%.1f,\"depth\":%d%s}"
    (json_escape s.Span.sp_name) s.Span.sp_start_us s.Span.sp_dur_us
    s.Span.sp_depth trace

(* One histogram snapshot as a JSON object: headline stats plus the
   sparse buckets as [[upper_bound, count], ...]. *)
let histogram_json (s : Histogram.snap) =
  Printf.sprintf
    "{\"count\":%d,\"sum\":%d,\"max\":%d,\"p50\":%d,\"p90\":%d,\"p99\":%d,\"buckets\":[%s]}"
    s.Histogram.h_count s.Histogram.h_sum s.Histogram.h_max
    (Histogram.quantile s 0.5) (Histogram.quantile s 0.9)
    (Histogram.quantile s 0.99)
    (String.concat ","
       (List.map
          (fun (i, c) -> Printf.sprintf "[%d,%d]" (Histogram.bucket_upper i) c)
          s.Histogram.h_buckets))

let metrics_json () =
  let hists =
    histograms ()
    |> List.map (fun (s : Histogram.snap) ->
           Printf.sprintf "\"%s\":%s"
             (json_escape s.Histogram.h_name)
             (histogram_json s))
    |> String.concat ","
  in
  Printf.sprintf
    "{\"counters\":%s,\"gauges\":%s,\"histograms\":{%s},\"spans_dropped\":%d,\"span_cap\":%s,\"spans\":[%s]}"
    (obj_of_bindings (counters ()))
    (obj_of_bindings (gauges ()))
    hists (spans_dropped ())
    (match span_cap () with Some c -> string_of_int c | None -> "null")
    (String.concat "," (List.map span_json (Span.completed ())))

(* -- Prometheus text exposition -------------------------------------------------

   The standard text format scrapers ingest: one [# TYPE] line per
   metric followed by its samples. Instrument names use '.' as a
   namespace separator; Prometheus only allows [a-zA-Z0-9_:], so dots
   (and any other illegal character) become underscores and everything
   is prefixed [deadmem_]. Histogram buckets are rendered cumulatively
   with integer [le] upper bounds (values are microseconds). *)

let prometheus_name s =
  let b = Bytes.of_string s in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
      | _ -> Bytes.set b i '_')
    b;
  "deadmem_" ^ Bytes.to_string b

let prometheus_text () =
  let buf = Buffer.create 1024 in
  let sample ty name v =
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n%s %d\n" name ty name v)
  in
  List.iter (fun (n, v) -> sample "counter" (prometheus_name n) v) (counters ());
  List.iter (fun (n, v) -> sample "gauge" (prometheus_name n) v) (gauges ());
  sample "counter" "deadmem_spans_dropped" (spans_dropped ());
  List.iter
    (fun (s : Histogram.snap) ->
      let name = prometheus_name s.Histogram.h_name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" name);
      let cum = ref 0 in
      List.iter
        (fun (i, c) ->
          cum := !cum + c;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" name
               (Histogram.bucket_upper i)
               !cum))
        s.Histogram.h_buckets;
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name s.Histogram.h_count);
      Buffer.add_string buf
        (Printf.sprintf "%s_sum %d\n" name s.Histogram.h_sum);
      Buffer.add_string buf
        (Printf.sprintf "%s_count %d\n" name s.Histogram.h_count))
    (histograms ());
  Buffer.contents buf

(* Chrome trace-event format, JSON-array flavour: one complete ("X")
   event per span. chrome://tracing and https://ui.perfetto.dev load
   this directly. *)
let trace_json () =
  let events =
    List.map
      (fun (s : Span.completed) ->
        Printf.sprintf
          "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.1f,\"dur\":%.1f,\"pid\":1,\"tid\":1}"
          (json_escape s.Span.sp_name) s.Span.sp_start_us s.Span.sp_dur_us)
      (Span.completed ())
  in
  "[" ^ String.concat ",\n " events ^ "]\n"

(* -- minimal JSON reader -------------------------------------------------------

   Just enough of RFC 8259 to validate and round-trip the two documents
   this module emits (and the CLI's other JSON outputs, in tests). Not a
   general-purpose parser: rejects trailing garbage, accepts any numeric
   syntax OCaml's [float_of_string] accepts after basic shape checks. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse ?max_depth (input : string) : (t, string) Stdlib.result =
    let n = String.length input in
    let depth_cap = match max_depth with Some d -> d | None -> max_int in
    let pos = ref 0 in
    let peek () = if !pos < n then Some input.[!pos] else None in
    let advance () = Stdlib.incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word value =
      let m = String.length word in
      if !pos + m <= n && String.sub input !pos m = word then begin
        pos := !pos + m;
        value
      end
      else fail (Printf.sprintf "expected '%s'" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | None -> fail "unterminated escape"
            | Some c ->
                advance ();
                (match c with
                | '"' -> Buffer.add_char buf '"'
                | '\\' -> Buffer.add_char buf '\\'
                | '/' -> Buffer.add_char buf '/'
                | 'n' -> Buffer.add_char buf '\n'
                | 'r' -> Buffer.add_char buf '\r'
                | 't' -> Buffer.add_char buf '\t'
                | 'b' -> Buffer.add_char buf '\b'
                | 'f' -> Buffer.add_char buf '\012'
                | 'u' ->
                    if !pos + 4 > n then fail "truncated \\u escape";
                    let hex = String.sub input !pos 4 in
                    pos := !pos + 4;
                    let code =
                      try int_of_string ("0x" ^ hex)
                      with _ -> fail "bad \\u escape"
                    in
                    (* no surrogate-pair handling: emitters here only
                       \u-escape control characters *)
                    if code < 0x80 then Buffer.add_char buf (Char.chr code)
                    else Buffer.add_string buf (Printf.sprintf "\\u%s" hex)
                | _ -> fail "unknown escape");
                go ())
        | Some c ->
            advance ();
            Buffer.add_char buf c;
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let numchar = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> numchar c | None -> false) do
        advance ()
      done;
      if !pos = start then fail "expected a number";
      match float_of_string_opt (String.sub input start (!pos - start)) with
      | Some f -> f
      | None -> fail "malformed number"
    in
    let rec parse_value depth =
      if depth > depth_cap then fail "nesting too deep";
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else
            let rec members acc =
              skip_ws ();
              let key = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value (depth + 1) in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((key, v) :: acc)
              | Some '}' ->
                  advance ();
                  Obj (List.rev ((key, v) :: acc))
              | _ -> fail "expected ',' or '}'"
            in
            members []
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else
            let rec elements acc =
              let v = parse_value (depth + 1) in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elements (v :: acc)
              | Some ']' ->
                  advance ();
                  Arr (List.rev (v :: acc))
              | _ -> fail "expected ',' or ']'"
            in
            elements []
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
    in
    match
      let v = parse_value 0 in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Bad msg -> Error msg

  let member key = function
    | Obj bs -> List.assoc_opt key bs
    | _ -> None

  (* [int_of_float] is unspecified outside [min_int, max_int], and
     above 2^53 a float no longer represents every integer — so only
     integral values within +-2^53 convert; anything else is None. *)
  let max_exact_int = 9007199254740992. (* 2^53 *)

  let to_int = function
    | Num f when Float.is_integer f && Float.abs f <= max_exact_int ->
        Some (int_of_float f)
    | _ -> None

  let to_string = function Str s -> Some s | _ -> None
  let to_list = function Arr l -> Some l | _ -> None
end
