(** Lightweight analysis telemetry: counters, gauges and wall-clock
    spans, with metrics-snapshot and Chrome trace-event JSON export.

    Instruments are process-global handles created once at module
    initialisation; recording into a handle is a single load-and-branch
    when collection is disabled (the default), so instrumentation can be
    threaded permanently through every pipeline layer. *)

(** Whether collection is active. Starts [false] unless the
    [DEADMEM_TELEMETRY] environment variable is set to [1]/[true]/
    [on]/[yes] when the process loads. *)
val enabled : unit -> bool

val set_enabled : bool -> unit

(** Current wall-clock time in microseconds (the timebase of spans). *)
val now_us : unit -> float

(** Monotone event counters. While collection stays enabled, a
    counter's value never decreases: increments are non-negative and
    only {!reset} clears it. *)
module Counter : sig
  type t

  (** [make name] registers (or retrieves) the counter [name].
      Idempotent: the same name always yields the same handle. *)
  val make : string -> t

  val incr : t -> unit

  (** [add c n] adds [max n 0] — negative deltas are ignored to keep
      the counter monotone. No-op while disabled. *)
  val add : t -> int -> unit

  val value : t -> int
  val name : t -> string
end

(** Last-write-wins measurements (sizes, headroom to resource guards). *)
module Gauge : sig
  type t

  val make : string -> t

  (** No-op while disabled. Gauges never [set] since the last {!reset}
      are omitted from snapshots. *)
  val set : t -> int -> unit

  val value : t -> int
  val name : t -> string
end

(** Wall-clock phase spans. *)
module Span : sig
  type completed = {
    sp_name : string;
    sp_start_us : float;
    sp_dur_us : float;
    sp_depth : int;  (** nesting level at entry *)
  }

  type t

  (** Start a span. Returns a no-op token while disabled. *)
  val enter : string -> t

  val exit : t -> unit

  (** [with_ name f] runs [f ()] inside a span; the span is closed even
      if [f] raises. *)
  val with_ : string -> (unit -> 'a) -> 'a

  (** Completed spans, oldest first. *)
  val completed : unit -> completed list
end

(** Cap the completed-span journal at the newest [n] records ([None],
    the default, keeps everything). A long-lived process (the serve
    daemon) must set a cap or the journal grows without bound; the trim
    is amortized O(1) per span. *)
val set_span_cap : int option -> unit

(** Spans discarded by the cap since the last {!reset}. *)
val spans_dropped : unit -> int

(** Nonzero counters, sorted by name. *)
val counters : unit -> (string * int) list

(** Gauges set since the last {!reset}, sorted by name. *)
val gauges : unit -> (string * int) list

(** Clear all recorded values and spans; registrations (and outstanding
    handles) stay valid. *)
val reset : unit -> unit

(** The whole state as one JSON object:
    [{"counters":{...},"gauges":{...},"spans":[...]}]. *)
val metrics_json : unit -> string

(** Completed spans in the Chrome trace-event JSON-array format — loads
    directly in [chrome://tracing] and Perfetto. *)
val trace_json : unit -> string

(** Minimal JSON reader used to validate and round-trip the documents
    this module (and the CLI) emit. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  (** [parse ?max_depth s] parses one JSON document. [max_depth] bounds
      container nesting (objects/arrays); exceeding it is a parse error,
      so adversarial depth bombs cannot exhaust the native stack. *)
  val parse : ?max_depth:int -> string -> (t, string) result

  val member : string -> t -> t option
  val to_int : t -> int option
  val to_string : t -> string option
  val to_list : t -> t list option
end
