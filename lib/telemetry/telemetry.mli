(** Lightweight analysis telemetry: counters, gauges and wall-clock
    spans, with metrics-snapshot and Chrome trace-event JSON export.

    Instruments are process-global handles created once at module
    initialisation; recording into a handle is a single load-and-branch
    when collection is disabled (the default), so instrumentation can be
    threaded permanently through every pipeline layer. *)

(** Whether collection is active. Starts [false] unless the
    [DEADMEM_TELEMETRY] environment variable is set to [1]/[true]/
    [on]/[yes] when the process loads. *)
val enabled : unit -> bool

val set_enabled : bool -> unit

(** Current wall-clock time in microseconds (the timebase of spans). *)
val now_us : unit -> float

(** Monotone event counters. While collection stays enabled, a
    counter's value never decreases: increments are non-negative and
    only {!reset} clears it. *)
module Counter : sig
  type t

  (** [make name] registers (or retrieves) the counter [name].
      Idempotent: the same name always yields the same handle. *)
  val make : string -> t

  val incr : t -> unit

  (** [add c n] adds [max n 0] — negative deltas are ignored to keep
      the counter monotone. No-op while disabled. *)
  val add : t -> int -> unit

  val value : t -> int
  val name : t -> string
end

(** Last-write-wins measurements (sizes, headroom to resource guards). *)
module Gauge : sig
  type t

  val make : string -> t

  (** No-op while disabled. Gauges never [set] since the last {!reset}
      are omitted from snapshots. *)
  val set : t -> int -> unit

  val value : t -> int
  val name : t -> string
end

(** Log-bucketed (HDR-style) latency histograms over non-negative
    integers (microseconds by convention). Recording is wait-free
    (atomic bucket increments) and a no-op costing one load-and-branch
    while collection is disabled. Values 0..3 get exact buckets; above
    that each power-of-two octave splits into 4 sub-buckets, so any
    bucket's upper bound overshoots the values inside it by < 25%. *)
module Histogram : sig
  type t

  (** [make name] registers (or retrieves) the histogram [name].
      Idempotent, like {!Counter.make}. *)
  val make : string -> t

  (** Record one observation. Negative values clamp to 0. No-op while
      disabled. *)
  val observe : t -> int -> unit

  val name : t -> string

  (** An immutable snapshot: sparse [(bucket index, count)] pairs in
      ascending index order, plus total count/sum and the exact max. *)
  type snap = {
    h_name : string;
    h_count : int;
    h_sum : int;
    h_max : int;  (** 0 when empty *)
    h_buckets : (int * int) list;
  }

  val snapshot : t -> snap

  (** Inclusive upper bound of a bucket index — the value reported for
      any quantile falling in that bucket. *)
  val bucket_upper : int -> int

  (** Merge two snapshots bucket-wise; associative and commutative, so
      per-domain snapshots fold together in any order. The result keeps
      the first snapshot's name. *)
  val merge : snap -> snap -> snap

  (** An empty snapshot (identity for {!merge}). *)
  val empty_snap : string -> snap

  (** Build a snapshot offline from raw samples, bypassing the
      registry and the enabled flag (for harnesses that already hold
      their samples). *)
  val of_values : name:string -> int list -> snap

  (** [quantile s q] estimates the [q]-quantile ([0. <= q <= 1.]) as
      the upper bound of the bucket holding the rank-[ceil q*count]
      observation, clamped to the exact max. 0 when empty. *)
  val quantile : snap -> float -> int

  (** Arithmetic mean of the observations; [0.] when empty. *)
  val mean : snap -> float
end

(** Wall-clock phase spans. *)
module Span : sig
  type completed = {
    sp_name : string;
    sp_start_us : float;
    sp_dur_us : float;
    sp_depth : int;  (** nesting level at entry *)
    sp_trace : string option;  (** request trace id, if tagged *)
  }

  type t

  (** Start a span, optionally tagged with a request trace id. Returns
      a no-op token while disabled. *)
  val enter : ?trace:string -> string -> t

  val exit : t -> unit

  (** [with_ name f] runs [f ()] inside a span; the span is closed even
      if [f] raises. *)
  val with_ : ?trace:string -> string -> (unit -> 'a) -> 'a

  (** Completed spans, oldest first. *)
  val completed : unit -> completed list
end

(** Cap the completed-span journal at the newest [n] records ([None],
    the default, keeps everything). A long-lived process (the serve
    daemon) must set a cap or the journal grows without bound; the trim
    is amortized O(1) per span. *)
val set_span_cap : int option -> unit

(** Spans discarded by the cap since the last {!reset}. *)
val spans_dropped : unit -> int

(** The current span-journal cap, if any. *)
val span_cap : unit -> int option

(** Nonzero counters, sorted by name. *)
val counters : unit -> (string * int) list

(** Gauges set since the last {!reset}, sorted by name. *)
val gauges : unit -> (string * int) list

(** Snapshots of every histogram with at least one observation, sorted
    by name. *)
val histograms : unit -> Histogram.snap list

(** Clear all recorded values and spans; registrations (and outstanding
    handles) stay valid. *)
val reset : unit -> unit

(** Escape a string for inclusion in a JSON string literal (quotes,
    backslashes, control characters). *)
val json_escape : string -> string

(** The whole state as one JSON object:
    [{"counters":{...},"gauges":{...},"histograms":{...},
      "spans_dropped":N,"span_cap":N|null,"spans":[...]}]. *)
val metrics_json : unit -> string

(** One histogram snapshot as a JSON object (headline quantiles plus
    sparse [[upper_bound, count]] buckets). *)
val histogram_json : Histogram.snap -> string

(** Counters, gauges and histograms in the Prometheus text exposition
    format. Instrument names are prefixed [deadmem_] with characters
    outside [A-Za-z0-9_:] mapped to '_'; histogram buckets are rendered
    cumulatively with integer [le] bounds (microseconds). *)
val prometheus_text : unit -> string

(** Completed spans in the Chrome trace-event JSON-array format — loads
    directly in [chrome://tracing] and Perfetto. *)
val trace_json : unit -> string

(** Minimal JSON reader used to validate and round-trip the documents
    this module (and the CLI) emit. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  (** [parse ?max_depth s] parses one JSON document. [max_depth] bounds
      container nesting (objects/arrays); exceeding it is a parse error,
      so adversarial depth bombs cannot exhaust the native stack. *)
  val parse : ?max_depth:int -> string -> (t, string) result

  val member : string -> t -> t option
  val to_int : t -> int option
  val to_string : t -> string option
  val to_list : t -> t list option
end
