(* Object layout model for MiniC++ (LP64-style).

   Computes the size in bytes of every type, and in particular of complete
   class objects: data members with natural alignment, a vptr for classes
   with virtual functions, base-class subobjects, and virtual bases placed
   once at the end of the complete object with a vbase pointer per class
   that inherits virtually (the classic "virtual base pointer" model the
   paper refers to in its discussion of virtual inheritance costs).

   The dynamic measurements (Table 2 / Figure 4 of the paper) are driven by
   two queries:
   - [object_size table cls] — bytes occupied by a heap/stack object;
   - [object_size table ~dead cls] — size if the data members in [dead]
     were removed from their classes, used for the "high water mark without
     dead data members" column. *)

open Frontend
open Sema

module Member = Sema.Member
module MemberSet = Sema.Member.Set

let ptr_size = 8

(* telemetry instrument (no-op unless collection is enabled) *)
let layouts_counter = Telemetry.Counter.make "layout.class_layouts"

(* Size of a non-aggregate type. Total: class and array types, whose size
   depends on the class table, yield [None] (use [type_size] for those)
   instead of an exception that a malformed input could reach. *)
let scalar_size = function
  | Ast.TVoid -> Some 0
  | Ast.TBool | Ast.TChar -> Some 1
  | Ast.TInt -> Some 4
  | Ast.TLong -> Some 8
  | Ast.TFloat -> Some 4
  | Ast.TDouble -> Some 8
  | Ast.TPtr _ | Ast.TRef _ | Ast.TFun _ | Ast.TMemPtrTy _ -> Some ptr_size
  | Ast.TNamed _ | Ast.TArr _ -> None

let align_to n a = if a = 0 then n else (n + a - 1) / a * a

type class_layout = {
  cl_name : string;
  cl_size : int;       (* complete object size *)
  cl_align : int;
  cl_nv_size : int;    (* size as a non-virtual base subobject *)
  cl_has_vptr : bool;
}

type t = {
  table : Class_table.t;
  is_dead : Member.t -> bool;
  cache : (string, class_layout) Hashtbl.t;
}

let create ?(dead = MemberSet.empty) table =
  { table; is_dead = (fun m -> MemberSet.mem m dead); cache = Hashtbl.create 64 }

let rec type_size t ty =
  match ty with
  | Ast.TNamed cls -> (layout_of t cls).cl_size
  | Ast.TArr (elem, n) -> n * align_to (type_size t elem) (type_align t elem)
  | Ast.TRef _ -> ptr_size
  | ty -> Option.value ~default:0 (scalar_size ty) (* scalar: always Some *)

and type_align t ty =
  match ty with
  | Ast.TNamed cls -> (layout_of t cls).cl_align
  | Ast.TArr (elem, _) -> type_align t elem
  | Ast.TVoid -> 1
  | ty ->
      max 1 (min (Option.value ~default:ptr_size (scalar_size ty)) 8)
      (* scalar: always Some *)

(* Layout of class [cls]; memoized.  [cl_nv_size] excludes virtual base
   subobjects (they are shared at the complete-object level); [cl_size]
   includes them. *)
and layout_of t cls : class_layout =
  match Hashtbl.find_opt t.cache cls with
  | Some l -> l
  | None ->
      let c = Class_table.find_exn t.table cls in
      let l = compute_layout t c in
      Hashtbl.add t.cache cls l;
      Telemetry.Counter.incr layouts_counter;
      l

and compute_layout t (c : Class_table.cls) : class_layout =
  let cls = c.c_name in
  let live_fields =
    List.filter
      (fun (f : Class_table.field) ->
        (not f.f_static) && not (t.is_dead (f.f_class, f.f_name)))
      (Class_table.instance_fields c)
  in
  match c.c_kind with
  | Ast.Union ->
      let size, align =
        List.fold_left
          (fun (sz, al) (f : Class_table.field) ->
            (max sz (type_size t f.f_type), max al (type_align t f.f_type)))
          (0, 1) live_fields
      in
      let size = max 1 (align_to size align) in
      {
        cl_name = cls;
        cl_size = size;
        cl_align = align;
        cl_nv_size = size;
        cl_has_vptr = false;
      }
  | Ast.Class | Ast.Struct ->
      let nv_bases =
        List.filter (fun (b : Ast.base_spec) -> not b.b_virtual) c.c_bases
      in
      let v_bases = Class_table.virtual_base_names t.table cls in
      let has_virtuals = Class_table.has_virtual_methods t.table cls in
      (* does some non-virtual base already provide a vptr slot? *)
      let base_provides_vptr =
        List.exists
          (fun (b : Ast.base_spec) -> (layout_of t b.b_name).cl_has_vptr)
          nv_bases
      in
      let own_vptr = has_virtuals && not base_provides_vptr in
      let has_direct_vbase =
        List.exists (fun (b : Ast.base_spec) -> b.b_virtual) c.c_bases
      in
      let offset = ref 0 and align = ref 1 in
      let place size al =
        align := max !align al;
        offset := align_to !offset al + size
      in
      if own_vptr then place ptr_size ptr_size;
      (* one vbase pointer per class that introduces virtual inheritance *)
      if has_direct_vbase then place ptr_size ptr_size;
      List.iter
        (fun (b : Ast.base_spec) ->
          let bl = layout_of t b.b_name in
          place bl.cl_nv_size bl.cl_align)
        nv_bases;
      List.iter
        (fun (f : Class_table.field) ->
          place (type_size t f.f_type) (type_align t f.f_type))
        live_fields;
      let nv_size = max 1 (align_to !offset !align) in
      (* complete object: append each virtual base subobject once *)
      let full = ref nv_size and full_align = ref !align in
      List.iter
        (fun vb ->
          let bl = layout_of t vb in
          full_align := max !full_align bl.cl_align;
          full := align_to !full bl.cl_align + bl.cl_nv_size)
        v_bases;
      let size = max 1 (align_to !full !full_align) in
      {
        cl_name = cls;
        cl_size = size;
        cl_align = !full_align;
        cl_nv_size = nv_size;
        cl_has_vptr = own_vptr || base_provides_vptr;
      }

(* -- public queries -------------------------------------------------------- *)

(* Size of a complete object of class [cls], with dead members [dead]
   removed (empty set: the as-written size). *)
let object_size ?(dead = MemberSet.empty) table cls =
  let t = create ~dead table in
  (layout_of t cls).cl_size

let size_of_type ?(dead = MemberSet.empty) table ty =
  let t = create ~dead table in
  type_size t ty

(* Raw bytes of the dead data members contained in a complete object of
   class [cls]: the sum of the members' own sizes (the paper's "number of
   bytes in objects occupied by dead data members"), counted across base
   subobjects, member subobjects, and virtual bases (once). *)
let dead_member_bytes ~dead table cls =
  let t = create table (* sizes of member types use the full layout *) in
  let v_bases = Class_table.virtual_base_names table cls in
  let rec bytes_nv cls =
    let c = Class_table.find_exn table cls in
    let own =
      List.fold_left
        (fun acc (f : Class_table.field) ->
          let here =
            if MemberSet.mem (f.f_class, f.f_name) dead then
              type_size t f.f_type
            else
              (* live class-typed members may still contain dead members *)
              match f.f_type with
              | Ast.TNamed n -> bytes_complete n
              | Ast.TArr (Ast.TNamed n, k) -> k * bytes_complete n
              | _ -> 0
          in
          acc + here)
        0
        (Class_table.instance_fields c)
    in
    List.fold_left
      (fun acc (b : Ast.base_spec) ->
        if b.b_virtual then acc else acc + bytes_nv b.b_name)
      own c.c_bases
  and bytes_complete cls =
    let vbs = Class_table.virtual_base_names table cls in
    bytes_nv cls + List.fold_left (fun acc vb -> acc + bytes_nv vb) 0 vbs
  in
  ignore v_bases;
  bytes_complete cls
