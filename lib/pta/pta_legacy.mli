(** The PR 4 Andersen solver, frozen verbatim (telemetry renamed to
    [pta_legacy.*]). Kept as the differential oracle for the rebuilt
    {!Pta} solver and as the baseline the [bench --pta-stress]
    speed/memory comparison is measured against. Not used by any
    analysis tier. *)

open Sema.Typed_ast

type solution

val analyze : ?roots:Func_id.t list -> program -> solution
val reachable : solution -> FuncSet.t
val instantiated : solution -> string list
val address_taken : solution -> FuncSet.t
val havoc : solution -> bool
val receiver_classes : solution -> texpr -> string list option
val funptr_targets : solution -> texpr -> Func_id.t list option
val num_nodes : solution -> int
val num_objects : solution -> int
val num_constraints : solution -> int
