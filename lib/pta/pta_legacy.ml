(* Andersen-style inclusion-based points-to analysis for MiniC++.

   Subset constraints are generated from the typed AST and solved with a
   worklist; copy-edge cycles are collapsed with a union-find (direct
   2-cycles eagerly, longer cycles by a periodic Tarjan pass). The
   abstraction is flow-insensitive and *field-based*: one node per
   (defining class, member) identity — the same [Member.t] the
   dead-member analysis classifies — so stores to [p->f] and loads of
   [q->f] meet in the node for [C::f].

   Reachability is on the fly: constraints for a function are generated
   the first time it becomes reachable, and dispatch discovered during
   solving feeds new functions back in. Receivers whose set degrades to
   ⊤ (unknown) fall back to RTA-style resolution over the instantiated
   cone, so the solution is never less conservative than RTA; stores the
   language cannot model raise a global [havoc] flag that degrades every
   dispatch site. *)

open Frontend
open Sema
open Sema.Typed_ast
module StringSet = Set.Make (String)
module IntSet = Set.Make (Int)

(* telemetry instruments (no-ops unless collection is enabled) *)
let nodes_counter = Telemetry.Counter.make "pta_legacy.nodes"
let objects_counter = Telemetry.Counter.make "pta_legacy.objects"
let copy_counter = Telemetry.Counter.make "pta_legacy.copy_edges"
let complex_counter = Telemetry.Counter.make "pta_legacy.complex_constraints"
let iter_counter = Telemetry.Counter.make "pta_legacy.solve_iterations"
let cycle_counter = Telemetry.Counter.make "pta_legacy.cycles_collapsed"
let reach_gauge = Telemetry.Gauge.make "pta_legacy.reachable_functions"
let fallback_gauge = Telemetry.Gauge.make "pta_legacy.fallback_sites"

(* -- abstract objects --------------------------------------------------------

   [o_class] is the dynamic class of class-typed allocations (heap and
   stack sites, constructed-object identities, class-typed subobject
   members); [o_fn] identifies function "objects" (address-taken
   functions); [o_payload] is the node holding the contents of scalar
   memory cells (scalar allocations, address-taken variables), or -1
   when the object has no modelled payload. *)
type obj = { o_class : string option; o_fn : Func_id.t option; o_payload : int }

(* A virtual-call site attached to its receiver node. *)
type vsite = {
  vs_static : string;  (* static receiver class *)
  vs_name : string;
  vs_args : (int * int option) list;  (* value node, write-back sink *)
  vs_ret : int;
  mutable vs_classes : StringSet.t;  (* dynamic classes already dispatched *)
  mutable vs_bound : FuncSet.t;  (* targets already bound *)
  mutable vs_top : bool;  (* degraded to RTA-cone fallback *)
}

(* A function-pointer call site attached to its pointer node. *)
type fsite = {
  fs_arity : int;
  fs_ret : int;
  mutable fs_bound : FuncSet.t;
  mutable fs_top : bool;
}

(* A [delete] through a class with a virtual destructor. *)
type dsite = {
  ds_static : string;
  mutable ds_classes : StringSet.t;
  mutable ds_top : bool;
}

type node = {
  mutable parent : int;  (* union-find *)
  mutable rank : int;
  mutable pts : IntSet.t;  (* object ids *)
  mutable top : bool;  (* may point anywhere (⊤) *)
  mutable succ : IntSet.t;  (* inclusion edges: pts(succ) ⊇ pts(self) *)
  mutable loads : IntSet.t;  (* dst nodes: dst ⊇ *self *)
  mutable stores : IntSet.t;  (* src nodes: *self ⊇ src *)
  mutable vsites : vsite list;
  mutable fsites : fsite list;
  mutable dsites : dsite list;
  mutable queued : bool;
}

module ExprTbl = Hashtbl.Make (struct
  type t = texpr

  (* expression occurrences are identified physically: the client passes
     the very nodes of the program value it analyzed *)
  let equal = ( == )
  let hash (e : texpr) = Hashtbl.hash e.tloc
end)

type solution = {
  prog : program;
  table : Class_table.t;
  mutable nodes : node array;
  mutable n_nodes : int;
  mutable objs : obj array;
  mutable n_objs : int;
  expr_node : int ExprTbl.t;
  var_node : (Func_id.t * string, int) Hashtbl.t;
  this_node : (Func_id.t, int) Hashtbl.t;
  ret_node : (Func_id.t, int) Hashtbl.t;
  global_node : (string, int) Hashtbl.t;
  field_node : (Member.t, int) Hashtbl.t;
  fun_obj : (Func_id.t, int) Hashtbl.t;
  class_obj : (string, int) Hashtbl.t;
  cell_obj : (int, int) Hashtbl.t;  (* payload node -> object *)
  worklist : int Queue.t;
  gen_queue : Func_id.t Queue.t;
  mutable reached : FuncSet.t;
  mutable inst : StringSet.t;  (* classes whose ctor is reachable *)
  mutable addr_taken : FuncSet.t;
  mutable all_vsites : vsite list;
  mutable all_fsites : fsite list;
  mutable all_dsites : dsite list;
  mutable top_vsites : vsite list;  (* degraded sites, re-resolved as
                                       [inst]/[addr_taken] grow *)
  mutable top_fsites : fsite list;
  mutable top_dsites : dsite list;
  mutable havoc : bool;
  mutable n_copy : int;
  mutable n_complex : int;
  mutable pops : int;  (* worklist pops, for periodic cycle collapse *)
}

(* -- node / object stores ----------------------------------------------------- *)

let nonode = -1

let fresh_node st =
  (if st.n_nodes >= Array.length st.nodes then
     let cap = max 256 (2 * Array.length st.nodes) in
     let nu =
       Array.init cap (fun i ->
           if i < st.n_nodes then st.nodes.(i)
           else
             {
               parent = i;
               rank = 0;
               pts = IntSet.empty;
               top = false;
               succ = IntSet.empty;
               loads = IntSet.empty;
               stores = IntSet.empty;
               vsites = [];
               fsites = [];
               dsites = [];
               queued = false;
             })
     in
     st.nodes <- nu);
  let id = st.n_nodes in
  st.nodes.(id) <-
    {
      parent = id;
      rank = 0;
      pts = IntSet.empty;
      top = false;
      succ = IntSet.empty;
      loads = IntSet.empty;
      stores = IntSet.empty;
      vsites = [];
      fsites = [];
      dsites = [];
      queued = false;
    };
  st.n_nodes <- id + 1;
  Telemetry.Counter.incr nodes_counter;
  id

let new_obj st ~cls ~fn ~payload =
  (if st.n_objs >= Array.length st.objs then
     let cap = max 256 (2 * Array.length st.objs) in
     let nu =
       Array.init cap (fun i ->
           if i < st.n_objs then st.objs.(i)
           else { o_class = None; o_fn = None; o_payload = -1 })
     in
     st.objs <- nu);
  let id = st.n_objs in
  st.objs.(id) <- { o_class = cls; o_fn = fn; o_payload = payload };
  st.n_objs <- id + 1;
  Telemetry.Counter.incr objects_counter;
  id

let rec find st i =
  let n = st.nodes.(i) in
  if n.parent = i then i
  else begin
    let r = find st n.parent in
    n.parent <- r;
    r
  end

let push st i =
  let r = find st i in
  let n = st.nodes.(r) in
  if not n.queued then begin
    n.queued <- true;
    Queue.add r st.worklist
  end

(* Merge two nodes (cycle collapse). All constraint sets are unioned into
   the winner, which is re-queued so the merged constraints re-fire. *)
let union st a b =
  let a = find st a and b = find st b in
  if a = b then a
  else begin
    let na = st.nodes.(a) and nb = st.nodes.(b) in
    let w, l = if na.rank >= nb.rank then (a, b) else (b, a) in
    let nw = st.nodes.(w) and nl = st.nodes.(l) in
    if nw.rank = nl.rank then nw.rank <- nw.rank + 1;
    nl.parent <- w;
    nw.pts <- IntSet.union nw.pts nl.pts;
    nw.top <- nw.top || nl.top;
    nw.succ <- IntSet.union nw.succ nl.succ;
    nw.loads <- IntSet.union nw.loads nl.loads;
    nw.stores <- IntSet.union nw.stores nl.stores;
    nw.vsites <- nl.vsites @ nw.vsites;
    nw.fsites <- nl.fsites @ nw.fsites;
    nw.dsites <- nl.dsites @ nw.dsites;
    Telemetry.Counter.incr cycle_counter;
    push st w;
    w
  end

let add_edge st src dst =
  if src >= 0 && dst >= 0 then begin
    let src = find st src and dst = find st dst in
    if src <> dst then begin
      let n = st.nodes.(src) in
      if not (IntSet.mem dst n.succ) then begin
        (* eager direct-cycle collapse: bidirectional edges (reference
           aliasing) unify immediately *)
        if IntSet.mem src (st.nodes.(dst)).succ then ignore (union st src dst)
        else begin
          n.succ <- IntSet.add dst n.succ;
          st.n_copy <- st.n_copy + 1;
          Telemetry.Counter.incr copy_counter;
          if (not (IntSet.is_empty n.pts)) || n.top then push st src
        end
      end
    end
  end

let set_top st i =
  if i >= 0 then begin
    let r = find st i in
    let n = st.nodes.(r) in
    if not n.top then begin
      n.top <- true;
      push st r
    end
  end

let add_obj st i o =
  let r = find st i in
  let n = st.nodes.(r) in
  if not (IntSet.mem o n.pts) then begin
    n.pts <- IntSet.add o n.pts;
    push st r
  end

let add_load st p dst =
  let r = find st p in
  (st.nodes.(r)).loads <- IntSet.add dst (st.nodes.(r)).loads;
  st.n_complex <- st.n_complex + 1;
  Telemetry.Counter.incr complex_counter;
  push st r

let add_store st p src =
  let r = find st p in
  (st.nodes.(r)).stores <- IntSet.add src (st.nodes.(r)).stores;
  st.n_complex <- st.n_complex + 1;
  Telemetry.Counter.incr complex_counter;
  push st r

(* -- named nodes -------------------------------------------------------------- *)

let memo tbl key mk =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
      let v = mk () in
      Hashtbl.add tbl key v;
      v

let node_of_var st fn name = memo st.var_node (fn, name) (fun () -> fresh_node st)
let node_of_this st fn = memo st.this_node fn (fun () -> fresh_node st)
let node_of_ret st fn = memo st.ret_node fn (fun () -> fresh_node st)
let node_of_global st g = memo st.global_node g (fun () -> fresh_node st)

let fun_object st id =
  memo st.fun_obj id (fun () -> new_obj st ~cls:None ~fn:(Some id) ~payload:(-1))

let class_object st cls =
  memo st.class_obj cls (fun () ->
      new_obj st ~cls:(Some cls) ~fn:None ~payload:(-1))

(* The cell object for an address-taken location whose contents live in
   node [n]: pts(&x) = { cell(x) }, payload(cell(x)) = node(x). *)
let cell_object st n =
  let r = find st n in
  memo st.cell_obj r (fun () -> new_obj st ~cls:None ~fn:None ~payload:r)

(* One node per (defining class, member). Class-typed members denote the
   subobject itself: the node is pre-seeded with an object of the
   member's class (its exact dynamic class). *)
let node_of_field st (m : Member.t) =
  memo st.field_node m (fun () ->
      let n = fresh_node st in
      (match Class_table.find st.table (Member.cls m) with
      | Some ci -> (
          match Class_table.own_field ci (Member.name m) with
          | Some f -> (
              match f.f_type with
              | Ast.TNamed k | Ast.TArr (Ast.TNamed k, _) ->
                  if Class_table.mem st.table k then
                    add_obj st n
                      (new_obj st ~cls:(Some k) ~fn:None ~payload:(-1))
              | _ -> ())
          | None -> ())
      | None -> ());
      n)

(* -- type classification ------------------------------------------------------- *)

(* Types whose values the analysis tracks: pointers, functions, and
   class types (class-typed expressions denote object identities). *)
let rec tracked st (t : Ast.type_expr) =
  match t with
  | Ast.TPtr _ | Ast.TFun _ -> true
  | Ast.TNamed n -> Class_table.mem st.table n
  | Ast.TRef t | Ast.TArr (t, _) -> tracked st t
  | _ -> false

(* Reference-to-pointer parameters alias the caller's variable: writes
   to the formal must flow back into the actual. (Class-typed reference
   params need no write-back: field stores are field-based and global.) *)
let ref_needs_writeback (t : Ast.type_expr) =
  match t with
  | Ast.TRef r -> (
      match r with Ast.TPtr _ | Ast.TFun _ -> true | _ -> false)
  | _ -> false

(* Array values are collapsed to one node holding what the elements
   hold; indexing denotes that node directly. *)
let rec is_array_ty (t : Ast.type_expr) =
  match t with
  | Ast.TArr _ -> true
  | Ast.TRef t -> is_array_ty t
  | _ -> false

(* Using an array where a pointer is expected (decay) yields a pointer
   {e to} the collapsed node — except arrays of class objects, whose
   node already holds the element objects' identities. *)
let is_decaying_array (t : Ast.type_expr) =
  let rec elem t =
    match t with Ast.TArr (t, _) | Ast.TRef t -> elem t | t -> t
  in
  is_array_ty t && match elem t with Ast.TNamed _ -> false | _ -> true

let receiver_static_class (mc : method_call) : string option =
  if mc.mc_arrow then Ctype.receiver_class_arrow mc.mc_recv.ty
  else Ctype.receiver_class_dot mc.mc_recv.ty

let dtor_is_virtual table cls =
  let rec go c =
    match Class_table.find table c with
    | None -> false
    | Some ci ->
        (match Class_table.dtor ci with
        | Some d -> d.m_virtual
        | None -> false)
        || List.exists (fun (b : Ast.base_spec) -> go b.b_name) ci.c_bases
  in
  go cls

(* -- reachability and dispatch ------------------------------------------------

   [reach] only queues: constraint generation happens in the solve loop,
   so this cluster (dispatch, fallback resolution, instantiation) stays
   free of recursion into the generator. *)

let rec reach st id =
  if not (FuncSet.mem id st.reached) then begin
    st.reached <- FuncSet.add id st.reached;
    Queue.add id st.gen_queue;
    match id with
    | Func_id.FCtor (cls, _) -> instantiate st cls
    | _ -> ()
  end

(* A class became instantiated: degraded (⊤) dispatch sites gain its
   cone members, exactly as RTA would. *)
and instantiate st cls =
  if not (StringSet.mem cls st.inst) then begin
    st.inst <- StringSet.add cls st.inst;
    List.iter (resolve_vsite_fallback st) st.top_vsites;
    List.iter (resolve_dsite_fallback st) st.top_dsites
  end

and dispatch_to st (vs : vsite) ~recv cls =
  if not (StringSet.mem cls vs.vs_classes) then begin
    vs.vs_classes <- StringSet.add cls vs.vs_classes;
    match Member_lookup.dispatch st.table ~dyn:cls ~name:vs.vs_name with
    | Some (def, _) -> bind_virtual st vs ~recv (Func_id.FMethod (def, vs.vs_name))
    | None -> ()
  end

and bind_virtual st (vs : vsite) ~recv target =
  if not (FuncSet.mem target vs.vs_bound) then begin
    vs.vs_bound <- FuncSet.add target vs.vs_bound;
    reach st target;
    (match recv with
    | Some rn -> add_edge st rn (node_of_this st target)
    | None -> set_top st (node_of_this st target));
    bind_args st target vs.vs_args vs.vs_ret
  end

(* Bind already-generated argument nodes to a target's formals, with
   write-back for reference-to-pointer parameters, and its return to the
   call's result node. Unknown externals yield an unknown result. *)
and bind_args st target args ret =
  match find_func st.prog target with
  | Some f ->
      List.iteri
        (fun i (pname, pty) ->
          match List.nth_opt args i with
          | Some (av, sb) ->
              let pn = node_of_var st target pname in
              add_edge st av pn;
              if ref_needs_writeback pty then begin
                match sb with
                | Some b -> add_edge st pn b
                | None -> do_havoc st
              end
          | None -> ())
        f.tf_params;
      add_edge st (node_of_ret st target) ret
  | None -> set_top st ret

and resolve_vsite_fallback st (vs : vsite) =
  List.iter
    (fun c -> if StringSet.mem c st.inst then dispatch_to st vs ~recv:None c)
    (vs.vs_static :: Class_table.subclasses st.table vs.vs_static)

and degrade_vsite st (vs : vsite) =
  if not vs.vs_top then begin
    vs.vs_top <- true;
    st.top_vsites <- vs :: st.top_vsites;
    resolve_vsite_fallback st vs
  end

and bind_fsite_target st (fs : fsite) id =
  if not (FuncSet.mem id fs.fs_bound) then begin
    fs.fs_bound <- FuncSet.add id fs.fs_bound;
    match find_func st.prog id with
    | Some f when List.length f.tf_params = fs.fs_arity ->
        reach st id;
        (* formals of address-taken functions are already ⊤ *)
        add_edge st (node_of_ret st id) fs.fs_ret
    | Some _ -> ()  (* arity mismatch: not a possible target *)
    | None ->
        reach st id;
        set_top st fs.fs_ret
  end

and resolve_fsite_fallback st (fs : fsite) =
  FuncSet.iter (bind_fsite_target st fs) st.addr_taken

and degrade_fsite st (fs : fsite) =
  if not fs.fs_top then begin
    fs.fs_top <- true;
    st.top_fsites <- fs :: st.top_fsites;
    resolve_fsite_fallback st fs
  end

and resolve_dsite_fallback st (ds : dsite) =
  List.iter
    (fun c ->
      if StringSet.mem c st.inst && not (StringSet.mem c ds.ds_classes) then begin
        ds.ds_classes <- StringSet.add c ds.ds_classes;
        reach st (Func_id.FDtor c)
      end)
    (ds.ds_static :: Class_table.subclasses st.table ds.ds_static)

and degrade_dsite st (ds : dsite) =
  if not ds.ds_top then begin
    ds.ds_top <- true;
    st.top_dsites <- ds :: st.top_dsites;
    resolve_dsite_fallback st ds
  end

(* An unmodelable store: every dispatch site, present and future, falls
   back to the RTA cone. The solution stays sound; queries report
   unknown. *)
and do_havoc st =
  if not st.havoc then begin
    st.havoc <- true;
    List.iter (degrade_vsite st) st.all_vsites;
    List.iter (degrade_fsite st) st.all_fsites;
    List.iter (degrade_dsite st) st.all_dsites
  end

(* Conservative roots (paper §3.3 and entry points): inputs are unknown,
   so formals and receiver are ⊤. *)
and make_root st id =
  reach st id;
  (match find_func st.prog id with
  | Some f ->
      List.iter
        (fun (p, ty) ->
          if tracked st ty then set_top st (node_of_var st id p))
        f.tf_params
  | None -> ());
  match Func_id.class_of id with
  | Some _ -> set_top st (node_of_this st id)
  | None -> ()

and take_address st id =
  if not (FuncSet.mem id st.addr_taken) then begin
    st.addr_taken <- FuncSet.add id st.addr_taken;
    make_root st id;
    List.iter (fun fs -> bind_fsite_target st fs id) st.top_fsites
  end

(* -- site processing (driven by the solver) ---------------------------------- *)

let process_vsite st (vs : vsite) rnode =
  let n = st.nodes.(find st rnode) in
  if vs.vs_top then ()
  else if n.top || st.havoc then degrade_vsite st vs
  else
    IntSet.iter
      (fun o ->
        match (st.objs.(o)).o_class with
        | Some c -> dispatch_to st vs ~recv:(Some rnode) c
        | None -> degrade_vsite st vs)
      n.pts

let process_fsite st (fs : fsite) fnode =
  let n = st.nodes.(find st fnode) in
  if fs.fs_top then ()
  else if n.top || st.havoc then degrade_fsite st fs
  else
    IntSet.iter
      (fun o ->
        match (st.objs.(o)).o_fn with
        | Some id -> bind_fsite_target st fs id
        | None -> degrade_fsite st fs)
      n.pts

let process_dsite st (ds : dsite) dnode =
  let n = st.nodes.(find st dnode) in
  if ds.ds_top then ()
  else if n.top || st.havoc then degrade_dsite st ds
  else
    IntSet.iter
      (fun o ->
        match (st.objs.(o)).o_class with
        | Some c ->
            if not (StringSet.mem c ds.ds_classes) then begin
              ds.ds_classes <- StringSet.add c ds.ds_classes;
              reach st (Func_id.FDtor c)
            end
        | None -> degrade_dsite st ds)
      n.pts

let payload st o =
  let p = (st.objs.(o)).o_payload in
  if p >= 0 then Some p else None

(* Propagate everything pending at representative [r]. Monotone: stale
   work after a merge only causes redundant (deduplicated) re-firing. *)
let propagate st r =
  let n = st.nodes.(r) in
  let pts = n.pts and top = n.top in
  IntSet.iter
    (fun s ->
      let s' = find st s in
      if s' <> r then begin
        let ns = st.nodes.(s') in
        let nu = IntSet.union ns.pts pts in
        let topped = top && not ns.top in
        if topped then ns.top <- true;
        if topped || not (IntSet.equal nu ns.pts) then begin
          ns.pts <- nu;
          push st s'
        end
      end)
    n.succ;
  IntSet.iter
    (fun dst ->
      if top then set_top st dst
      else
        IntSet.iter
          (fun o ->
            match payload st o with
            | Some p -> add_edge st p dst
            | None -> set_top st dst)
          pts)
    n.loads;
  IntSet.iter
    (fun src ->
      if top then do_havoc st
      else
        IntSet.iter
          (fun o ->
            match payload st o with
            | Some p -> add_edge st src p
            | None -> do_havoc st)
          pts)
    n.stores;
  List.iter (fun vs -> process_vsite st vs r) n.vsites;
  List.iter (fun fs -> process_fsite st fs r) n.fsites;
  List.iter (fun ds -> process_dsite st ds r) n.dsites

(* Periodic Tarjan pass over copy edges: collapse multi-node cycles the
   eager 2-cycle check misses. Purely an acceleration; unions performed
   mid-walk only cause redundant re-propagation. *)
let collapse_cycles st =
  let n = st.n_nodes in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let rec strong v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    IntSet.iter
      (fun s ->
        let w = find st s in
        if w <> v && w < n then
          if index.(w) < 0 then begin
            strong w;
            low.(v) <- min low.(v) low.(w)
          end
          else if on_stack.(w) then low.(v) <- min low.(v) index.(w))
      (st.nodes.(v)).succ;
    if low.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      match pop [] with
      | _ :: _ :: _ as scc ->
          ignore (List.fold_left (fun a b -> union st a b) (List.hd scc) (List.tl scc))
      | _ -> ()
    end
  in
  for v = 0 to n - 1 do
    if find st v = v && index.(v) < 0 then strong v
  done

(* -- constraint generation ----------------------------------------------------

   Each reachable function's body is walked exactly once; every
   tracked-typed expression occurrence is mapped (physically) to the
   node holding its value, so clients can query receivers after the
   solve. *)

(* Where a write to an lvalue lands. *)
type lv =
  | LNode of int  (* a directly-addressed node *)
  | LIndirect of int  (* the payloads of everything this node points to *)
  | LTop  (* unmodelable: writes of tracked values havoc *)
  | LNone  (* untracked or not an lvalue *)

let rec gen_expr st fn (e : texpr) : int =
  match ExprTbl.find_opt st.expr_node e with
  | Some n -> n
  | None ->
      let n = gen_expr_raw st fn e in
      (* safety net: a tracked expression must always have a node — an
         unmodelled corner becomes ⊤, never a silent drop *)
      let n =
        if n < 0 && tracked st e.ty then begin
          let t = fresh_node st in
          set_top st t;
          t
        end
        else n
      in
      if n >= 0 then ExprTbl.replace st.expr_node e n;
      n

and gen_expr_raw st fn (e : texpr) : int =
  match e.te with
  | TInt _ | TBool _ | TChar _ | TFloat _ | TEnumConst _ | TSizeofType _ ->
      nonode
  | TNull | TStr _ ->
      (* a value that points to nothing the analysis tracks *)
      if tracked st e.ty then fresh_node st else nonode
  | TSizeofExpr _ -> nonode  (* operand is unevaluated *)
  | TLocal x -> if tracked st e.ty then node_of_var st fn x else nonode
  | TGlobalVar g -> if tracked st e.ty then node_of_global st g else nonode
  | TThis _ -> node_of_this st fn
  | TStaticField (c, f) ->
      if tracked st e.ty then node_of_field st (Member.make ~cls:c ~name:f)
      else nonode
  | TField fa ->
      ignore (gen_expr st fn fa.fa_obj);
      if tracked st e.ty then
        node_of_field st (Member.make ~cls:fa.fa_def_class ~name:fa.fa_field)
      else nonode
  | TUnary (_, a) ->
      ignore (gen_expr st fn a);
      nonode
  | TBinary (_, a, b) ->
      (* pointer arithmetic preserves the pointed-to objects *)
      let ga = gen_rval st fn a and gb = gen_rval st fn b in
      if tracked st e.ty then if ga >= 0 then ga else gb else nonode
  | TAssign (op, lhs, rhs) ->
      let gr = gen_rval st fn rhs in
      let lvs = gen_lval st fn lhs in
      if op = Ast.Assign && tracked st rhs.ty then do_assign st lvs gr;
      if tracked st e.ty then gr else nonode
  | TIncDec (_, _, a) ->
      let ga = gen_expr st fn a in
      if tracked st e.ty then ga else nonode
  | TCond (c, t, f) ->
      ignore (gen_expr st fn c);
      let gt = gen_rval st fn t and gf = gen_rval st fn f in
      if tracked st e.ty then begin
        let n = fresh_node st in
        add_edge st gt n;
        add_edge st gf n;
        n
      end
      else nonode
  | TCast (_, _, a, _) ->
      let ga = gen_rval st fn a in
      if tracked st e.ty then
        if ga >= 0 then ga
        else begin
          (* scalar forged into a pointer: unknown target *)
          let n = fresh_node st in
          set_top st n;
          n
        end
      else nonode
  | TAddrOf a -> (
      match Ctype.class_name a.ty with
      | Some _ -> gen_expr st fn a  (* &object = the object's identity *)
      | None ->
          let lvs = gen_lval st fn a in
          let n = fresh_node st in
          List.iter
            (function
              | LNode ln -> add_obj st n (cell_object st ln)
              | LIndirect p -> add_edge st p n  (* &( *p ) = p *)
              | LTop -> set_top st n
              | LNone -> ())
            lvs;
          n)
  | TFunAddr id ->
      take_address st id;
      let n = fresh_node st in
      add_obj st n (fun_object st id);
      n
  | TMemPtr _ -> nonode
  | TDeref a | TIndex (a, _) ->
      (match e.te with
      | TIndex (_, i) -> ignore (gen_expr st fn i)
      | _ -> ());
      let ga = gen_expr st fn a in
      if Ctype.class_name e.ty <> None then ga
        (* objects are second-class: denoting one denotes the pointer's
           targets *)
      else if is_array_ty a.ty then
        (* arrays are collapsed: an element read is the array node *)
        if tracked st e.ty then ga else nonode
      else if tracked st e.ty then begin
        let n = fresh_node st in
        if ga >= 0 then add_load st ga n else set_top st n;
        n
      end
      else nonode
  | TMemPtrDeref (recv, mp, _) ->
      ignore (gen_expr st fn recv);
      ignore (gen_expr st fn mp);
      if tracked st e.ty then begin
        let n = fresh_node st in
        set_top st n;
        n
      end
      else nonode
  | TNewObj { cls; ctor; args } ->
      let o = new_obj st ~cls:(Some cls) ~fn:None ~payload:(-1) in
      let gargs = gen_args st fn args in
      reach st ctor;
      add_obj st (node_of_this st ctor) o;
      let n = fresh_node st in
      add_obj st n o;
      bind_args st ctor gargs (fresh_node st);
      n
  | TNewScalar _ ->
      let p = fresh_node st in
      let o = new_obj st ~cls:None ~fn:None ~payload:p in
      let n = fresh_node st in
      add_obj st n o;
      n
  | TNewArr (ty, len) ->
      ignore (gen_expr st fn len);
      let n = fresh_node st in
      (match ty with
      | Ast.TNamed cls when Class_table.mem st.table cls ->
          let o = new_obj st ~cls:(Some cls) ~fn:None ~payload:(-1) in
          let ctor = Func_id.FCtor (cls, 0) in
          reach st ctor;
          add_obj st (node_of_this st ctor) o;
          add_obj st n o
      | _ ->
          let p = fresh_node st in
          add_obj st n (new_obj st ~cls:None ~fn:None ~payload:p));
      n
  | TCall c -> gen_call st fn e c

and do_assign st lvs rhs_node =
  List.iter
    (function
      | LNode n -> add_edge st rhs_node n
      | LIndirect p -> if rhs_node >= 0 then add_store st p rhs_node
      | LTop -> do_havoc st
      | LNone -> ())
    lvs

and gen_lval st fn (e : texpr) : lv list =
  match e.te with
  | TLocal x -> [ (if tracked st e.ty then LNode (node_of_var st fn x) else LNone) ]
  | TGlobalVar g ->
      [ (if tracked st e.ty then LNode (node_of_global st g) else LNone) ]
  | TStaticField (c, f) ->
      [
        (if tracked st e.ty then
           LNode (node_of_field st (Member.make ~cls:c ~name:f))
         else LNone);
      ]
  | TField fa ->
      ignore (gen_expr st fn fa.fa_obj);
      [
        (if tracked st e.ty then
           LNode (node_of_field st (Member.make ~cls:fa.fa_def_class ~name:fa.fa_field))
         else LNone);
      ]
  | TDeref a | TIndex (a, _) ->
      (match e.te with
      | TIndex (_, i) -> ignore (gen_expr st fn i)
      | _ -> ());
      let ga = gen_expr st fn a in
      if is_array_ty a.ty then
        (* arrays are collapsed: an element write is a direct write *)
        [ (if ga >= 0 then LNode ga else LNone) ]
      else [ (if ga >= 0 then LIndirect ga else LNone) ]
  | TCond (c, t, f) ->
      ignore (gen_expr st fn c);
      gen_lval st fn t @ gen_lval st fn f
  | TCast (_, _, a, _) -> gen_lval st fn a
  | TMemPtrDeref (recv, mp, _) ->
      ignore (gen_expr st fn recv);
      ignore (gen_expr st fn mp);
      [ LTop ]
  | _ ->
      ignore (gen_expr st fn e);
      [ LTop ]

(* The write-back sink for an argument that may bind to a
   reference-to-pointer formal: writes to the formal flow back here. *)
and arg_backflow st fn (a : texpr) : int option =
  match a.ty with
  | Ast.TPtr _ | Ast.TFun _ -> (
      match a.te with
      | TLocal _ | TGlobalVar _ | TField _ | TStaticField _ | TDeref _
      | TIndex _ -> (
          match gen_lval st fn a with
          | [ LNode n ] -> Some n
          | [ LIndirect p ] ->
              let bk = fresh_node st in
              add_store st p bk;
              Some bk
          | _ -> None)
      | _ -> None)
  | _ -> None

(* An array used as a value decays to a pointer to its collapsed
   element node. *)
and gen_rval st fn (e : texpr) : int =
  let n = gen_expr st fn e in
  if n >= 0 && is_decaying_array e.ty then begin
    let p = fresh_node st in
    add_obj st p (cell_object st n);
    p
  end
  else n

and gen_args st fn args =
  List.map (fun a -> (gen_rval st fn a, arg_backflow st fn a)) args

and gen_static_call st fn ~recv ~target ~args ret_ty =
  let gargs = gen_args st fn args in
  reach st target;
  (match recv with
  | Some r -> add_edge st r (node_of_this st target)
  | None -> ());
  let rn = fresh_node st in
  bind_args st target gargs rn;
  if tracked st ret_ty then rn else nonode

and gen_call st fn (e : texpr) (c : call) : int =
  match c with
  | CBuiltin (_, args) ->
      List.iter (fun a -> ignore (gen_expr st fn a)) args;
      nonode
  | CFree (name, args) ->
      gen_static_call st fn ~recv:None ~target:(Func_id.FFree name) ~args e.ty
  | CMethod mc -> (
      let grecv = gen_expr st fn mc.mc_recv in
      match mc.mc_dispatch with
      | DStatic ->
          gen_static_call st fn
            ~recv:(if grecv >= 0 then Some grecv else None)
            ~target:(Func_id.FMethod (mc.mc_class, mc.mc_name))
            ~args:mc.mc_args e.ty
      | DVirtual -> (
          match receiver_static_class mc with
          | None ->
              gen_static_call st fn
                ~recv:(if grecv >= 0 then Some grecv else None)
                ~target:(Func_id.FMethod (mc.mc_class, mc.mc_name))
                ~args:mc.mc_args e.ty
          | Some scls ->
              let gargs = gen_args st fn mc.mc_args in
              let rn = fresh_node st in
              let vs =
                {
                  vs_static = scls;
                  vs_name = mc.mc_name;
                  vs_args = gargs;
                  vs_ret = rn;
                  vs_classes = StringSet.empty;
                  vs_bound = FuncSet.empty;
                  vs_top = false;
                }
              in
              st.all_vsites <- vs :: st.all_vsites;
              let rnode =
                if grecv >= 0 then grecv
                else begin
                  let t = fresh_node st in
                  set_top st t;
                  t
                end
              in
              let r = find st rnode in
              (st.nodes.(r)).vsites <- vs :: (st.nodes.(r)).vsites;
              process_vsite st vs rnode;
              if tracked st e.ty then rn else nonode))
  | CFunPtr (fnx, args) -> (
      match fnx.te with
      | TFunAddr id ->
          (* direct call through a literal address: no indirection *)
          gen_static_call st fn ~recv:None ~target:id ~args e.ty
      | _ ->
          let gf = gen_expr st fn fnx in
          List.iter (fun a -> ignore (gen_expr st fn a)) args;
          let rn = fresh_node st in
          let fs =
            {
              fs_arity = List.length args;
              fs_ret = rn;
              fs_bound = FuncSet.empty;
              fs_top = false;
            }
          in
          st.all_fsites <- fs :: st.all_fsites;
          let fnode =
            if gf >= 0 then gf
            else begin
              let t = fresh_node st in
              set_top st t;
              t
            end
          in
          let r = find st fnode in
          (st.nodes.(r)).fsites <- fs :: (st.nodes.(r)).fsites;
          process_fsite st fs fnode;
          if tracked st e.ty then rn else nonode)

(* -- statements and functions -------------------------------------------------- *)

and gen_decl st fn (d : tvar_decl) =
  match d.tv_type with
  | Ast.TNamed cls when Class_table.mem st.table cls ->
      (* a stack object: exact dynamic class, destroyed at scope exit *)
      let o = new_obj st ~cls:(Some cls) ~fn:None ~payload:(-1) in
      add_obj st (node_of_var st fn d.tv_name) o;
      (match d.tv_init with
      | TInitCtor (ctor, args) ->
          let gargs = gen_args st fn args in
          reach st ctor;
          add_obj st (node_of_this st ctor) o;
          bind_args st ctor gargs (fresh_node st)
      | TInitNone ->
          let ctor = Func_id.FCtor (cls, 0) in
          reach st ctor;
          add_obj st (node_of_this st ctor) o
      | TInitExpr e -> ignore (gen_expr st fn e));
      reach st (Func_id.FDtor cls)
  | Ast.TArr (Ast.TNamed cls, _) when Class_table.mem st.table cls ->
      let o = new_obj st ~cls:(Some cls) ~fn:None ~payload:(-1) in
      add_obj st (node_of_var st fn d.tv_name) o;
      let ctor = Func_id.FCtor (cls, 0) in
      reach st ctor;
      add_obj st (node_of_this st ctor) o;
      reach st (Func_id.FDtor cls);
      (match d.tv_init with
      | TInitExpr e -> ignore (gen_expr st fn e)
      | _ -> ())
  | _ -> (
      match d.tv_init with
      | TInitExpr e ->
          let ge = gen_rval st fn e in
          if tracked st d.tv_type then begin
            let v = node_of_var st fn d.tv_name in
            add_edge st ge v;
            if ref_needs_writeback d.tv_type then
              (* the local is an alias: writes through it must reach the
                 initializer's location *)
              List.iter
                (function
                  | LNode n -> add_edge st v n
                  | LIndirect p -> add_store st p v
                  | LTop -> do_havoc st
                  | LNone -> ())
                (gen_lval st fn e)
          end
      | TInitCtor (_, args) -> (
          match args with
          | [ a ] when tracked st d.tv_type ->
              let ga = gen_rval st fn a in
              add_edge st ga (node_of_var st fn d.tv_name)
          | _ -> List.iter (fun a -> ignore (gen_expr st fn a)) args)
      | TInitNone -> ())

and gen_stmt st fn (s : tstmt) =
  match s.ts with
  | TSExpr e -> ignore (gen_expr st fn e)
  | TSDecl ds -> List.iter (gen_decl st fn) ds
  | TSIf (c, _, _) | TSWhile (c, _) | TSDoWhile (_, c) ->
      ignore (gen_expr st fn c)
  | TSFor (_, cond, step, _) ->
      Option.iter (fun e -> ignore (gen_expr st fn e)) cond;
      Option.iter (fun e -> ignore (gen_expr st fn e)) step
  | TSReturn (Some e) ->
      let ge = gen_rval st fn e in
      if tracked st e.ty then add_edge st ge (node_of_ret st fn)
  | TSDelete (_, e) -> (
      let ge = gen_expr st fn e in
      match Ctype.pointee e.ty with
      | Some (Ast.TNamed cls) when Class_table.mem st.table cls ->
          if dtor_is_virtual st.table cls then begin
            let ds =
              { ds_static = cls; ds_classes = StringSet.empty; ds_top = false }
            in
            st.all_dsites <- ds :: st.all_dsites;
            let dnode =
              if ge >= 0 then ge
              else begin
                let t = fresh_node st in
                set_top st t;
                t
              end
            in
            let r = find st dnode in
            (st.nodes.(r)).dsites <- ds :: (st.nodes.(r)).dsites;
            process_dsite st ds dnode
          end
          else reach st (Func_id.FDtor cls)
      | _ -> ())
  | TSReturn None | TSBlock _ | TSBreak | TSContinue | TSEmpty -> ()

(* Generate the constraints of one newly-reached function: structural
   constructor/destructor obligations (mirroring the call-graph
   builder's [structural_events]), then the body. *)
and gen_func st id =
  match find_func st.prog id with
  | None -> ()
  | Some f ->
      (match id with
      | Func_id.FCtor (cls, _) ->
          (* while a constructor runs, the dynamic type is the class
             itself (C++ dispatch-during-construction) *)
          add_obj st (node_of_this st id) (class_object st cls);
          List.iter
            (fun (bi : base_init) ->
              let bctor = Func_id.FCtor (bi.bi_class, List.length bi.bi_args) in
              let gargs = gen_args st id bi.bi_args in
              reach st bctor;
              (* the object under construction is the base ctor's receiver
                 too: if [this] escapes from the base ctor, it carries the
                 derived object's identity *)
              add_edge st (node_of_this st id) (node_of_this st bctor);
              bind_args st bctor gargs (fresh_node st))
            f.tf_base_inits;
          let c = Class_table.find_exn st.table cls in
          List.iter
            (fun (fl : Class_table.field) ->
              if not fl.f_static then
                let explicit =
                  List.find_opt
                    (fun fi -> fi.fi_field = fl.f_name)
                    f.tf_field_inits
                in
                match fl.f_type with
                | Ast.TNamed fcls when Class_table.mem st.table fcls ->
                    let nargs =
                      match explicit with
                      | Some fi -> List.length fi.fi_args
                      | None -> 0
                    in
                    let gargs =
                      match explicit with
                      | Some fi -> gen_args st id fi.fi_args
                      | None -> []
                    in
                    let fctor = Func_id.FCtor (fcls, nargs) in
                    reach st fctor;
                    bind_args st fctor gargs (fresh_node st)
                | Ast.TArr (Ast.TNamed fcls, _)
                  when Class_table.mem st.table fcls ->
                    reach st (Func_id.FCtor (fcls, 0))
                | _ -> (
                    match explicit with
                    | Some fi when tracked st fl.f_type -> (
                        match fi.fi_args with
                        | [ a ] ->
                            let ga = gen_expr st id a in
                            add_edge st ga
                              (node_of_field st
                                 (Member.make ~cls ~name:fl.f_name))
                        | args ->
                            List.iter
                              (fun a -> ignore (gen_expr st id a))
                              args)
                    | Some fi ->
                        List.iter
                          (fun a -> ignore (gen_expr st id a))
                          fi.fi_args
                    | None -> ()))
            c.c_fields
      | Func_id.FDtor cls ->
          add_obj st (node_of_this st id) (class_object st cls);
          let c = Class_table.find_exn st.table cls in
          List.iter
            (fun (b : Ast.base_spec) -> reach st (Func_id.FDtor b.b_name))
            c.c_bases;
          List.iter
            (fun vb ->
              if
                not
                  (List.exists
                     (fun (b : Ast.base_spec) -> b.b_name = vb)
                     c.c_bases)
              then reach st (Func_id.FDtor vb))
            (Class_table.virtual_base_names st.table cls);
          List.iter
            (fun (fl : Class_table.field) ->
              if not fl.f_static then
                match fl.f_type with
                | Ast.TNamed fcls | Ast.TArr (Ast.TNamed fcls, _) ->
                    if Class_table.mem st.table fcls then
                      reach st (Func_id.FDtor fcls)
                | _ -> ())
            c.c_fields
      | Func_id.FFree _ | Func_id.FMethod _ -> ());
      (match f.tf_body with
      | Some body -> fold_stmts (fun () s -> gen_stmt st id s) () body
      | None -> ())

(* -- driver -------------------------------------------------------------------- *)

let solve st =
  let running = ref true in
  while !running do
    if not (Queue.is_empty st.gen_queue) then gen_func st (Queue.pop st.gen_queue)
    else if not (Queue.is_empty st.worklist) then begin
      let r = Queue.pop st.worklist in
      (st.nodes.(r)).queued <- false;
      if find st r = r then begin
        Telemetry.Counter.incr iter_counter;
        st.pops <- st.pops + 1;
        if st.pops mod 4096 = 0 then collapse_cycles st;
        propagate st r
      end
    end
    else running := false
  done

let analyze ?(roots = [ main_id ]) (p : program) : solution =
  Telemetry.Span.with_ "pta_legacy" @@ fun () ->
  let st =
    {
      prog = p;
      table = p.table;
      nodes = [||];
      n_nodes = 0;
      objs = [||];
      n_objs = 0;
      expr_node = ExprTbl.create 1024;
      var_node = Hashtbl.create 256;
      this_node = Hashtbl.create 64;
      ret_node = Hashtbl.create 64;
      global_node = Hashtbl.create 16;
      field_node = Hashtbl.create 64;
      fun_obj = Hashtbl.create 16;
      class_obj = Hashtbl.create 16;
      cell_obj = Hashtbl.create 16;
      worklist = Queue.create ();
      gen_queue = Queue.create ();
      reached = FuncSet.empty;
      inst = StringSet.empty;
      addr_taken = FuncSet.empty;
      all_vsites = [];
      all_fsites = [];
      all_dsites = [];
      top_vsites = [];
      top_fsites = [];
      top_dsites = [];
      havoc = false;
      n_copy = 0;
      n_complex = 0;
      pops = 0;
    }
  in
  Telemetry.Span.with_ "pta_legacy.seed" (fun () ->
      List.iter
        (fun (g : global) ->
          match g.g_init with
          | Some e ->
              let n = gen_rval st main_id e in
              if tracked st g.g_type then
                add_edge st n (node_of_global st g.g_name)
          | None -> ())
        p.globals;
      List.iter (make_root st) roots);
  Telemetry.Span.with_ "pta_legacy.solve" (fun () -> solve st);
  Telemetry.Gauge.set reach_gauge (FuncSet.cardinal st.reached);
  Telemetry.Gauge.set fallback_gauge
    (List.length st.top_vsites + List.length st.top_fsites
   + List.length st.top_dsites);
  st

(* -- queries -------------------------------------------------------------------- *)

let reachable st = st.reached
let instantiated st = StringSet.elements st.inst
let address_taken st = st.addr_taken
let havoc st = st.havoc

let node_objects st e =
  if st.havoc then None
  else
    match ExprTbl.find_opt st.expr_node e with
    | None -> None
    | Some n ->
        let nd = st.nodes.(find st n) in
        if nd.top then None else Some nd.pts

let receiver_classes st e =
  match node_objects st e with
  | None -> None
  | Some pts ->
      let ok = ref true in
      let cs =
        IntSet.fold
          (fun o acc ->
            match (st.objs.(o)).o_class with
            | Some c -> StringSet.add c acc
            | None ->
                ok := false;
                acc)
          pts StringSet.empty
      in
      if !ok then Some (StringSet.elements cs) else None

let funptr_targets st e =
  match node_objects st e with
  | None -> None
  | Some pts ->
      let ok = ref true in
      let fs =
        IntSet.fold
          (fun o acc ->
            match (st.objs.(o)).o_fn with
            | Some f -> FuncSet.add f acc
            | None ->
                ok := false;
                acc)
          pts FuncSet.empty
      in
      if !ok then Some (FuncSet.elements fs) else None

let num_nodes st = st.n_nodes
let num_objects st = st.n_objs
let num_constraints st = st.n_copy + st.n_complex
