(** Andersen-style inclusion-based points-to analysis over MiniC++.

    Flow-insensitive subset constraints are generated from the typed AST
    and solved with a worklist algorithm; copy-edge cycles are collapsed
    with a union-find so propagation is cycle-aware. The abstraction is
    {e field-based}: one node per [(defining class, name)] data member —
    the same {!Sema.Member.t} identity the dead-member analysis
    classifies — so a store to [p->f] and a load of [q->f] meet in the
    single node for [C::f].

    Reachability is computed on the fly: constraints for a function are
    generated the first time it becomes reachable, and virtual-call /
    function-pointer dispatch discovered during solving feeds new
    functions back into the worklist. The paper's §3.3 conservative
    roots (address-taken functions, library-override methods) are
    honoured by treating their parameters and receivers as unknown
    ([⊤]).

    Anything the constraint language cannot model soundly — a store
    through an unknown pointer, a member-pointer store — raises a global
    {!havoc} flag; clients must then fall back to RTA behaviour for
    every dispatch site. Per-expression unknowns are tracked with a
    [⊤] element that individual queries report as [None]. *)

open Sema.Typed_ast

type solution

(** Analyze a program, computing points-to sets for every pointer-valued
    expression reachable from [roots] (default: [main] alone). Runs
    under a ["pta"] telemetry span with nested ["pta.seed"] and
    ["pta.solve"] phases. *)
val analyze : ?roots:Func_id.t list -> program -> solution

(** Functions reachable under the PTA call graph (including targets
    reached through fallback dispatch). *)
val reachable : solution -> FuncSet.t

(** Classes whose constructor is reachable — the PTA analogue of RTA's
    instantiated set. *)
val instantiated : solution -> string list

val address_taken : solution -> FuncSet.t

(** True when an unmodelable store forced a global degradation; every
    query below then returns [None]. *)
val havoc : solution -> bool

(** [receiver_classes sol e] is the set of dynamic classes of objects
    the receiver expression [e] may point to, or [None] when the set is
    unknown ([⊤], havoc, or [e] not part of the analyzed program). [e]
    is identified {e physically}: pass the very expression node from the
    program given to {!analyze}. *)
val receiver_classes : solution -> texpr -> string list option

(** [funptr_targets sol e] is the set of functions the pointer
    expression [e] may reference, or [None] when unknown. *)
val funptr_targets : solution -> texpr -> Func_id.t list option

val num_nodes : solution -> int
val num_objects : solution -> int
val num_constraints : solution -> int
