(** Andersen-style inclusion-based points-to analysis over MiniC++.

    Flow-insensitive subset constraints are generated from the typed AST
    and solved with a worklist algorithm; copy-edge cycles are collapsed
    with a union-find so propagation is cycle-aware. The abstraction is
    {e field-based}: one node per [(defining class, name)] data member —
    the same {!Sema.Member.t} identity the dead-member analysis
    classifies — so a store to [p->f] and a load of [q->f] meet in the
    single node for [C::f].

    Reachability is computed on the fly: constraints for a function are
    generated the first time it becomes reachable, and virtual-call /
    function-pointer dispatch discovered during solving feeds new
    functions back into the worklist. The paper's §3.3 conservative
    roots (address-taken functions, library-override methods) are
    honoured by treating their parameters and receivers as unknown
    ([⊤]).

    Anything the constraint language cannot model soundly — a store
    through an unknown pointer, a member-pointer store — raises a global
    {!havoc} flag; clients must then fall back to RTA behaviour for
    every dispatch site. Per-expression unknowns are tracked with a
    [⊤] element that individual queries report as [None].

    The solver propagates {e differences} over hash-consed {!Ptset}
    sets, in bulk-synchronous rounds whose read-only filtering phase can
    be sliced across [jobs] domains; the solution (and every counter
    derived from it) is byte-identical for all job counts — see
    {!fingerprint}. *)

open Sema.Typed_ast

type solution

(** Context sensitivity. [Insensitive] is the classic Andersen analysis
    (one instance per function). [OneCfa] clones callees one level deep:
    method calls are analyzed per receiver {e allocation site} and
    direct free-function calls per call site, so objects that merely
    share a factory or a registration helper no longer merge. Heap
    objects themselves remain one per static allocation occurrence in
    both modes. *)
type mode = Insensitive | OneCfa

(** Analyze a program, computing points-to sets for every pointer-valued
    expression reachable from [roots] (default: [main] alone). [jobs]
    bounds the domains used by the solver's parallel phase (default 1 =
    sequential); the result does not depend on it. Runs under a ["pta"]
    telemetry span with nested ["pta.seed"] and ["pta.solve"] phases. *)
val analyze :
  ?mode:mode -> ?jobs:int -> ?roots:Func_id.t list -> program -> solution

val mode : solution -> mode

(** Functions reachable under the PTA call graph (including targets
    reached through fallback dispatch). *)
val reachable : solution -> FuncSet.t

(** Classes whose constructor is reachable — the PTA analogue of RTA's
    instantiated set. *)
val instantiated : solution -> string list

val address_taken : solution -> FuncSet.t

(** True when an unmodelable store forced a global degradation; every
    query below then returns [None]. *)
val havoc : solution -> bool

(** [receiver_classes sol e] is the set of dynamic classes of objects
    the receiver expression [e] may point to, or [None] when the set is
    unknown ([⊤], havoc, or [e] not part of the analyzed program). [e]
    is identified {e physically}: pass the very expression node from the
    program given to {!analyze}. In [OneCfa] mode the answer is the
    union over every context clone of the occurrence. *)
val receiver_classes : solution -> texpr -> string list option

(** [funptr_targets sol e] is the set of functions the pointer
    expression [e] may reference, or [None] when unknown. *)
val funptr_targets : solution -> texpr -> Func_id.t list option

(** [receiver_alloc_sites sol e] names the allocation sites of the
    objects [e] may point to, as [(class, site span)] pairs — the
    provenance behind a dispatch decision. Objects without a textual
    allocation (class-identity objects, address-taken cells) are
    omitted. [None] when the set is unknown. *)
val receiver_alloc_sites :
  solution -> texpr -> (string * Frontend.Source.span) list option

val num_nodes : solution -> int
val num_objects : solution -> int
val num_constraints : solution -> int

(** Deterministic solver statistics, independent of [jobs]. *)
type stats = {
  p_nodes : int;
  p_objects : int;
  p_constraints : int;
  p_sets_interned : int;  (** distinct hash-consed sets created *)
  p_memo_hits : int;  (** set operations answered from the memo table *)
  p_delta_props : int;  (** objects moved by difference propagation *)
  p_solver_iters : int;  (** bulk-synchronous solver rounds *)
  p_contexts : int;  (** function instances generated *)
  p_fallback_sites : int;
      (** static dispatch sites the analysis could not pin to a single
          receiver in some context *)
  p_reachable : int;
}

val stats : solution -> stats

(** A digest of the full solution — per-node points-to sets, flags,
    reachability, and the deterministic counters. Equal fingerprints
    mean byte-identical solver results; used to pin that parallel and
    sequential runs agree. *)
val fingerprint : solution -> string
