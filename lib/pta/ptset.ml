(* Interned sorted int arrays with memoized set operations.

   The interner owns two tables: [intern] maps array contents to the
   canonical set value, and the operation memos map operand identities
   to results. All table mutation happens in the solver's sequential
   phases; worker domains only read the immutable [arr] payloads. *)

type t = { sid : int; arr : int array }

let empty = { sid = 0; arr = [||] }
let id t = t.sid
let is_empty t = t.sid = 0
let cardinal t = Array.length t.arr
let equal a b = a == b
let elements t = Array.to_list t.arr
let iter f t = Array.iter f t.arr

let fold f t acc =
  let r = ref acc in
  Array.iter (fun x -> r := f x !r) t.arr;
  !r

let mem x t =
  let a = t.arr in
  let lo = ref 0 and hi = ref (Array.length a) in
  let found = ref false in
  while (not !found) && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let v = a.(mid) in
    if v = x then found := true else if v < x then lo := mid + 1 else hi := mid
  done;
  !found

(* Every element of [a] present in [b]? Read-only and allocation-free
   (safe from the solver's parallel read phase): a linear merge walk for
   comparable sizes, per-element binary search when [a] is much smaller
   than [b] — the hot case is a singleton delta probed against a large
   accumulated set. *)
let subset a b =
  a == b
  ||
  let la = Array.length a.arr and lb = Array.length b.arr in
  la <= lb
  &&
  if la * 8 <= lb then (
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < la do
      if not (mem a.arr.(!i) b) then ok := false;
      incr i
    done;
    !ok)
  else
    let i = ref 0 and j = ref 0 and ok = ref true in
    while !ok && !i < la do
      if !j >= lb then ok := false
      else
        let x = a.arr.(!i) and y = b.arr.(!j) in
        if x = y then begin incr i; incr j end
        else if y < x then incr j
        else ok := false
    done;
    !ok

module ArrKey = struct
  type t = int array

  let equal (a : int array) b =
    Array.length a = Array.length b
    &&
    let n = Array.length a in
    let i = ref 0 in
    while !i < n && a.(!i) = b.(!i) do incr i done;
    !i = n

  let hash (a : int array) =
    let h = ref (Array.length a) in
    Array.iter (fun x -> h := (!h * 0x01000193) lxor x) a;
    !h land max_int
end

module ArrTbl = Hashtbl.Make (ArrKey)

module PairKey = struct
  type t = int * int

  let equal (a, b) (c, d) = a = c && b = d
  let hash (a, b) = ((a * 0x9e3779b1) lxor b) land max_int
end

module PairTbl = Hashtbl.Make (PairKey)

type interner = {
  intern : t ArrTbl.t;
  union_memo : t PairTbl.t;
  diff_memo : t PairTbl.t;
  sing_memo : (int, t) Hashtbl.t;
  mutable next_id : int;
  mutable n_interned : int;
  mutable n_memo_hits : int;
}

let create () =
  {
    intern = ArrTbl.create 1024;
    union_memo = PairTbl.create 4096;
    diff_memo = PairTbl.create 4096;
    sing_memo = Hashtbl.create 256;
    next_id = 1;
    n_interned = 0;
    n_memo_hits = 0;
  }

let interned_count it = it.n_interned
let memo_hits it = it.n_memo_hits

let compact it live =
  PairTbl.reset it.union_memo;
  PairTbl.reset it.diff_memo;
  Hashtbl.reset it.sing_memo;
  (* rebuild the intern table around the caller's surviving sets: the
     transient intermediates a converged solve no longer references
     (every growth step interned its prefix) get collected. Survivors
     keep their identity, so pointer equality between them still holds
     and future operations still dedup against them. *)
  ArrTbl.reset it.intern;
  (* [n_interned] keeps counting sets ever created, not table size *)
  List.iter
    (fun s ->
      if s.sid <> 0 && not (ArrTbl.mem it.intern s.arr) then
        ArrTbl.add it.intern s.arr s)
    live

let intern it (a : int array) : t =
  if Array.length a = 0 then empty
  else
    match ArrTbl.find_opt it.intern a with
    | Some s -> s
    | None ->
        let s = { sid = it.next_id; arr = a } in
        it.next_id <- it.next_id + 1;
        it.n_interned <- it.n_interned + 1;
        ArrTbl.add it.intern a s;
        s

let singleton it x =
  match Hashtbl.find_opt it.sing_memo x with
  | Some s ->
      it.n_memo_hits <- it.n_memo_hits + 1;
      s
  | None ->
      let s = intern it [| x |] in
      Hashtbl.add it.sing_memo x s;
      s

let union it a b =
  if a == b || is_empty b then a
  else if is_empty a then b
  else begin
    (* commutative: normalize the memo key *)
    let k = if a.sid <= b.sid then (a.sid, b.sid) else (b.sid, a.sid) in
    match PairTbl.find_opt it.union_memo k with
    | Some s ->
        it.n_memo_hits <- it.n_memo_hits + 1;
        s
    | None ->
        let s =
          if subset a b then b
          else if subset b a then a
          else begin
            let la = Array.length a.arr and lb = Array.length b.arr in
            let out = Array.make (la + lb) 0 in
            let i = ref 0 and j = ref 0 and n = ref 0 in
            while !i < la && !j < lb do
              let x = a.arr.(!i) and y = b.arr.(!j) in
              let v =
                if x = y then begin incr i; incr j; x end
                else if x < y then begin incr i; x end
                else begin incr j; y end
              in
              out.(!n) <- v;
              incr n
            done;
            while !i < la do out.(!n) <- a.arr.(!i); incr i; incr n done;
            while !j < lb do out.(!n) <- b.arr.(!j); incr j; incr n done;
            intern it (Array.sub out 0 !n)
          end
        in
        PairTbl.add it.union_memo k s;
        s
  end

let diff it a b =
  if is_empty a then empty
  else if is_empty b || a == b then (if a == b then empty else a)
  else
    match PairTbl.find_opt it.diff_memo (a.sid, b.sid) with
    | Some s ->
        it.n_memo_hits <- it.n_memo_hits + 1;
        s
    | None ->
        let s =
          if subset a b then empty
          else begin
            let la = Array.length a.arr and lb = Array.length b.arr in
            let out = Array.make la 0 in
            let i = ref 0 and j = ref 0 and n = ref 0 in
            while !i < la do
              let x = a.arr.(!i) in
              while !j < lb && b.arr.(!j) < x do incr j done;
              if !j < lb && b.arr.(!j) = x then incr i
              else begin
                out.(!n) <- x;
                incr n;
                incr i
              end
            done;
            if !n = la then a else intern it (Array.sub out 0 !n)
          end
        in
        PairTbl.add it.diff_memo (a.sid, b.sid) s;
        s

let add it x t = if mem x t then t else union it (singleton it x) t
