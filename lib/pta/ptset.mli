(** Hash-consed, structurally shared sets of small integers.

    A {!t} is an interned sorted array of distinct ints: within one
    {!interner}, two sets with equal contents are the {e same} value, so
    equality is a pointer comparison and repeated operations between the
    same operands are O(1) memo-table lookups. This is the set layer of
    the points-to solver: points-to workloads are dominated by
    repetitive sets and repetitive operations on them (Khedker et al.),
    so sharing plus operation dedup removes most of the cost of the
    naive one-tree-per-node representation.

    Concurrency contract: every {e creating} operation ({!singleton},
    {!add}, {!union}, {!diff}) mutates the interner and must run on a
    single thread (the solver's sequential phases). The read-only
    operations ({!mem}, {!subset}, {!cardinal}, {!iter}, {!fold},
    {!elements}, {!equal}) touch only immutable arrays and are safe to
    call concurrently from worker domains. *)

type t
type interner

val create : unit -> interner

(** The empty set — shared by every interner. *)
val empty : t

(** A stable identity: equal contents within one interner have equal
    ids. The empty set has id 0. *)
val id : t -> int

val is_empty : t -> bool
val cardinal : t -> int
val mem : int -> t -> bool
val equal : t -> t -> bool

(** [subset a b] is true when every element of [a] is in [b]. Pure — no
    interner access, safe concurrently. *)
val subset : t -> t -> bool

val elements : t -> int list
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val singleton : interner -> int -> t
val add : interner -> int -> t -> t
val union : interner -> t -> t -> t

(** [diff i a b] is [a \ b]. *)
val diff : interner -> t -> t -> t

(** [compact it live] drops the operation memo tables
    (union/diff/add/singleton) and rebuilds the intern table around the
    sets in [live] — the only ones the caller still references. The
    transient intermediates of a converged solve get collected;
    survivors keep their identity, so pointer equality between them
    still holds and later operations still dedup against them (memos
    repopulate on demand). {!interned_count} keeps counting sets ever
    created. Call once solving converges; interning a set equal to a
    dropped (unreferenced) intermediate afterwards mints a fresh id,
    which is indistinguishable to any holder of a live set. *)
val compact : interner -> t list -> unit

(** Number of distinct sets interned (the empty set excluded). *)
val interned_count : interner -> int

(** Memo-table hits across union/diff/add/singleton. *)
val memo_hits : interner -> int
