(* Andersen-style inclusion-based points-to analysis for MiniC++.

   Subset constraints are generated from the typed AST and solved to a
   fixpoint; copy-edge cycles are collapsed with a union-find (direct
   2-cycles eagerly, longer cycles by a periodic Tarjan pass). The
   abstraction is flow-insensitive and *field-based*: one node per
   (defining class, member) identity — the same [Member.t] the
   dead-member analysis classifies — so stores to [p->f] and loads of
   [q->f] meet in the node for [C::f].

   Reachability is on the fly: constraints for a function are generated
   the first time it becomes reachable, and dispatch discovered during
   solving feeds new functions back in. Receivers whose set degrades to
   ⊤ (unknown) fall back to RTA-style resolution over the instantiated
   cone, so the solution is never less conservative than RTA; stores the
   language cannot model raise a global [havoc] flag that degrades every
   dispatch site.

   The solver core (rebuilt from the PR 4 version, which is frozen as
   {!Pta_legacy}):

   - Points-to sets are hash-consed {!Ptset} values: equal contents are
     one shared array, set identity is pointer identity, and union/diff
     between previously-seen operands are memo-table hits. Each node
     carries [pts] (everything known) plus [delta] (not yet propagated),
     and only deltas flow along edges — a new edge replays the full
     source set against just that edge once, at attach time.

   - The worklist runs in bulk-synchronous rounds. At a round boundary
     the pending nodes are drained into a frontier, each node's
     (delta, top) snapshot is taken and cleared, and then phase A scans
     the frontier's copy edges *read-only* — filtering out edges whose
     target already covers the delta — before phase B applies the
     surviving work sequentially in frontier order. Phase A never
     mutates, so slicing it across [jobs] domains cannot change any
     state-mutation order: the solution and every counter are
     byte-identical for all job counts.

   - [OneCfa] mode refines the abstraction by cloning callees one level
     deep: method calls are analyzed per receiver allocation site
     ([CObj] — the callee instance's [this] holds exactly that object),
     direct free-function calls per call site ([CSite]), and everything
     the analysis cannot attribute (roots, address-taken functions,
     degraded sites) lands in the shared [CRoot] instance with ⊤
     inputs. Heap objects themselves stay one-per-static-occurrence, so
     the instance space is finite; a hard cap collapses further
     contexts to [CRoot] deterministically. *)

open Frontend
open Sema
open Sema.Typed_ast
module StringSet = Set.Make (String)
module IntSet = Set.Make (Int)

(* telemetry instruments (no-ops unless collection is enabled) *)
let nodes_counter = Telemetry.Counter.make "pta.nodes"
let objects_counter = Telemetry.Counter.make "pta.objects"
let copy_counter = Telemetry.Counter.make "pta.copy_edges"
let complex_counter = Telemetry.Counter.make "pta.complex_constraints"
let iter_counter = Telemetry.Counter.make "pta.solve_iterations"
let cycle_counter = Telemetry.Counter.make "pta.cycles_collapsed"
let sets_counter = Telemetry.Counter.make "pta.sets_interned"
let memo_counter = Telemetry.Counter.make "pta.memo_hits"
let delta_counter = Telemetry.Counter.make "pta.delta_props"
let round_counter = Telemetry.Counter.make "pta.solver_iters"
let reach_gauge = Telemetry.Gauge.make "pta.reachable_functions"
let fallback_gauge = Telemetry.Gauge.make "pta.fallback_sites"
let ctx_gauge = Telemetry.Gauge.make "pta.contexts"

type mode = Insensitive | OneCfa

(* -- contexts ----------------------------------------------------------------

   A function instance is a (function, context) pair. [Insensitive]
   analysis uses the single [CRoot] instance per function; [OneCfa]
   clones per receiver allocation site / call site, bounded by
   [ctx_cap] total instances (overflow collapses to [CRoot]). *)
type ctx =
  | CRoot  (* no context: roots, fallback, overflow *)
  | CSite of int  (* direct call, by static call-site serial *)
  | CObj of int  (* method call, by receiver object id *)

type fctx = Func_id.t * ctx

module FctxTbl = Hashtbl.Make (struct
  type t = fctx

  let equal (a : t) b = a = b
  let hash = Hashtbl.hash
end)

module FctxSet = Set.Make (struct
  type t = fctx

  let compare = Stdlib.compare
end)

let ctx_cap = 200_000

(* -- abstract objects --------------------------------------------------------

   [o_class] is the dynamic class of class-typed allocations (heap and
   stack sites, constructed-object identities, class-typed subobject
   members); [o_fn] identifies function "objects" (address-taken
   functions); [o_payload] is the node holding the contents of scalar
   memory cells (scalar allocations, address-taken variables), or -1
   when the object has no modelled payload. [o_site] is the source span
   of the allocation for sites the program text names. *)
type obj = {
  o_class : string option;
  o_fn : Func_id.t option;
  o_payload : int;
  o_site : Source.span option;
}

(* A virtual-call site attached to its receiver node. [vs_serial]
   identifies the static occurrence, shared by every context clone;
   [vs_fixed] is the statically-resolved target of non-virtual method
   calls routed through receiver objects in [OneCfa] mode. *)
type vsite = {
  vs_serial : int;
  vs_fixed : Func_id.t option;
  vs_static : string;  (* static receiver class *)
  vs_name : string;
  vs_args : (int * int option) list;  (* value node, write-back sink *)
  vs_ret : int;
  mutable vs_classes : StringSet.t;  (* dynamic classes already dispatched *)
  mutable vs_seen : StringSet.t;  (* receiver classes seen from objects *)
  mutable vs_bound : FctxSet.t;  (* instances already bound *)
  mutable vs_top : bool;  (* degraded to RTA-cone fallback *)
}

(* A function-pointer call site attached to its pointer node. *)
type fsite = {
  fs_serial : int;
  fs_arity : int;
  fs_ret : int;
  mutable fs_bound : FuncSet.t;
  mutable fs_top : bool;
}

(* A [delete] through a class with a virtual destructor. *)
type dsite = {
  ds_serial : int;
  ds_static : string;
  mutable ds_classes : StringSet.t;
  mutable ds_seen : StringSet.t;  (* receiver classes seen from objects *)
  mutable ds_top : bool;
}

type node = {
  mutable parent : int;  (* union-find *)
  mutable rank : int;
  mutable pts : Ptset.t;  (* object ids: everything known *)
  mutable delta : Ptset.t;  (* object ids: not yet propagated *)
  mutable top : bool;  (* may point anywhere (⊤) *)
  mutable top_pending : bool;  (* ⊤ not yet propagated *)
  mutable succ : IntSet.t;  (* inclusion edges: pts(succ) ⊇ pts(self) *)
  mutable loads : IntSet.t;  (* dst nodes: dst ⊇ *self *)
  mutable stores : IntSet.t;  (* src nodes: *self ⊇ src *)
  (* array views of the three edge sets, rebuilt lazily after mutation:
     a node enters the frontier once per delta arrival, and walking the
     AVL sets into fresh arrays at every drain dominates solving time
     on long pipelined propagations *)
  mutable succ_c : int array option;
  mutable loads_c : int array option;
  mutable stores_c : int array option;
  mutable vsites : vsite list;
  mutable fsites : fsite list;
  mutable dsites : dsite list;
  mutable queued : bool;
}

module ExprTbl = Hashtbl.Make (struct
  type t = texpr

  (* expression occurrences are identified physically: the client passes
     the very nodes of the program value it analyzed *)
  let equal = ( == )
  let hash (e : texpr) = Hashtbl.hash e.tloc
end)

module DeclTbl = Hashtbl.Make (struct
  type t = tvar_decl

  let equal = ( == )
  let hash (d : tvar_decl) = Hashtbl.hash d.tv_loc
end)

type solution = {
  prog : program;
  table : Class_table.t;
  mode : mode;
  jobs : int;
  it : Ptset.interner;
  mutable nodes : node array;
  mutable n_nodes : int;
  mutable objs : obj array;
  mutable n_objs : int;
  expr_node : (ctx * int) list ExprTbl.t;
  site_obj : int ExprTbl.t;  (* allocation expr -> its one object *)
  decl_obj : int DeclTbl.t;  (* stack decl -> its one object *)
  serial_tbl : int ExprTbl.t;  (* static call-site serials *)
  mutable n_serials : int;
  var_node : (fctx * string, int) Hashtbl.t;
  this_node : int FctxTbl.t;
  ret_node : int FctxTbl.t;
  global_node : (string, int) Hashtbl.t;
  field_node : (Member.t, int) Hashtbl.t;
  fun_obj : (Func_id.t, int) Hashtbl.t;
  class_obj : (string, int) Hashtbl.t;
  cell_obj : (int, int) Hashtbl.t;  (* payload node -> object *)
  worklist : int Queue.t;
  gen_queue : fctx Queue.t;
  instances : unit FctxTbl.t;  (* generated (function, context) pairs *)
  mutable reached : FuncSet.t;
  mutable inst : StringSet.t;  (* classes whose ctor is reachable *)
  mutable addr_taken : FuncSet.t;
  mutable all_vsites : vsite list;
  mutable all_fsites : fsite list;
  mutable all_dsites : dsite list;
  mutable top_vsites : vsite list;  (* degraded sites, re-resolved as
                                       [inst]/[addr_taken] grow *)
  mutable top_fsites : fsite list;
  mutable top_dsites : dsite list;
  mutable havoc : bool;
  mutable n_copy : int;
  mutable n_complex : int;
  mutable n_delta : int;  (* objects moved by difference propagation *)
  mutable rounds : int;  (* solver rounds *)
  mutable pops : int;  (* frontier nodes, for periodic cycle collapse *)
  mutable last_collapse : int;
}

(* -- node / object stores ----------------------------------------------------- *)

let nonode = -1

let fresh_node st =
  (if st.n_nodes >= Array.length st.nodes then
     let cap = max 256 (2 * Array.length st.nodes) in
     let nu =
       Array.init cap (fun i ->
           if i < st.n_nodes then st.nodes.(i)
           else
             {
               parent = i;
               rank = 0;
               pts = Ptset.empty;
               delta = Ptset.empty;
               top = false;
               top_pending = false;
               succ = IntSet.empty;
               loads = IntSet.empty;
               stores = IntSet.empty;
               succ_c = None;
               loads_c = None;
               stores_c = None;
               vsites = [];
               fsites = [];
               dsites = [];
               queued = false;
             })
     in
     st.nodes <- nu);
  let id = st.n_nodes in
  st.nodes.(id) <-
    {
      parent = id;
      rank = 0;
      pts = Ptset.empty;
      delta = Ptset.empty;
      top = false;
      top_pending = false;
      succ = IntSet.empty;
      loads = IntSet.empty;
      stores = IntSet.empty;
      succ_c = None;
      loads_c = None;
      stores_c = None;
      vsites = [];
      fsites = [];
      dsites = [];
      queued = false;
    };
  st.n_nodes <- id + 1;
  Telemetry.Counter.incr nodes_counter;
  id

let new_obj st ~cls ~fn ~payload ~site =
  (if st.n_objs >= Array.length st.objs then
     let cap = max 256 (2 * Array.length st.objs) in
     let nu =
       Array.init cap (fun i ->
           if i < st.n_objs then st.objs.(i)
           else { o_class = None; o_fn = None; o_payload = -1; o_site = None })
     in
     st.objs <- nu);
  let id = st.n_objs in
  st.objs.(id) <- { o_class = cls; o_fn = fn; o_payload = payload; o_site = site };
  st.n_objs <- id + 1;
  Telemetry.Counter.incr objects_counter;
  id

let rec find st i =
  let n = st.nodes.(i) in
  if n.parent = i then i
  else begin
    let r = find st n.parent in
    n.parent <- r;
    r
  end

(* Non-compressing find for the read-only parallel phase: no mutation,
   safe from any domain while no unions are in flight. *)
let rec find_ro st i =
  let p = (st.nodes.(i)).parent in
  if p = i then i else find_ro st p

let push st i =
  let r = find st i in
  let n = st.nodes.(r) in
  if not n.queued then begin
    n.queued <- true;
    Queue.add r st.worklist
  end

(* Merge two nodes (cycle collapse). All constraint sets are unioned into
   the winner; its delta becomes the full merged set (one full replay
   re-fires the merged constraints). *)
let union st a b =
  let a = find st a and b = find st b in
  if a = b then a
  else begin
    let na = st.nodes.(a) and nb = st.nodes.(b) in
    let w, l = if na.rank >= nb.rank then (a, b) else (b, a) in
    let nw = st.nodes.(w) and nl = st.nodes.(l) in
    if nw.rank = nl.rank then nw.rank <- nw.rank + 1;
    nl.parent <- w;
    nw.pts <- Ptset.union st.it nw.pts nl.pts;
    nw.delta <- nw.pts;
    if nl.top then nw.top <- true;
    if nw.top then nw.top_pending <- true;
    nw.succ <- IntSet.union nw.succ nl.succ;
    nw.loads <- IntSet.union nw.loads nl.loads;
    nw.stores <- IntSet.union nw.stores nl.stores;
    nw.succ_c <- None;
    nw.loads_c <- None;
    nw.stores_c <- None;
    nw.vsites <- nl.vsites @ nw.vsites;
    nw.fsites <- nl.fsites @ nw.fsites;
    nw.dsites <- nl.dsites @ nw.dsites;
    Telemetry.Counter.incr cycle_counter;
    push st w;
    w
  end

(* Grow [i]'s set by [s]: only the genuinely new part enters [delta]. *)
let add_objs st i s =
  if not (Ptset.is_empty s) then begin
    let r = find st i in
    let n = st.nodes.(r) in
    let d = Ptset.diff st.it s n.pts in
    if not (Ptset.is_empty d) then begin
      n.pts <- Ptset.union st.it n.pts d;
      n.delta <- Ptset.union st.it n.delta d;
      let moved = Ptset.cardinal d in
      st.n_delta <- st.n_delta + moved;
      Telemetry.Counter.add delta_counter moved;
      push st r
    end
  end

let add_obj st i o = add_objs st i (Ptset.singleton st.it o)

let set_top st i =
  if i >= 0 then begin
    let r = find st i in
    let n = st.nodes.(r) in
    if not n.top then begin
      n.top <- true;
      n.top_pending <- true;
      push st r
    end
  end

let add_edge st src dst =
  if src >= 0 && dst >= 0 then begin
    let src = find st src and dst = find st dst in
    if src <> dst then begin
      let n = st.nodes.(src) in
      if not (IntSet.mem dst n.succ) then begin
        (* eager direct-cycle collapse: bidirectional edges (reference
           aliasing) unify immediately *)
        if IntSet.mem src (st.nodes.(dst)).succ then ignore (union st src dst)
        else begin
          n.succ <- IntSet.add dst n.succ;
          n.succ_c <- None;
          st.n_copy <- st.n_copy + 1;
          Telemetry.Counter.incr copy_counter;
          (* replay the full current set against just the new edge;
             future growth arrives via difference propagation *)
          if n.top then set_top st dst;
          add_objs st dst n.pts
        end
      end
    end
  end

let payload st o =
  let p = (st.objs.(o)).o_payload in
  if p >= 0 then Some p else None

(* Loads and stores replay the full current set against just the new
   complex edge at attach time; deltas cover the rest. *)
let add_load st p dst =
  let r = find st p in
  let n = st.nodes.(r) in
  n.loads <- IntSet.add dst n.loads;
  n.loads_c <- None;
  st.n_complex <- st.n_complex + 1;
  Telemetry.Counter.incr complex_counter;
  if n.top then set_top st dst
  else
    Ptset.iter
      (fun o ->
        match payload st o with
        | Some p -> add_edge st p dst
        | None -> set_top st dst)
      n.pts

(* -- named nodes -------------------------------------------------------------- *)

let memo tbl key mk =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
      let v = mk () in
      Hashtbl.add tbl key v;
      v

let memo_expr tbl key mk =
  match ExprTbl.find_opt tbl key with
  | Some v -> v
  | None ->
      let v = mk () in
      ExprTbl.add tbl key v;
      v

let memo_decl tbl key mk =
  match DeclTbl.find_opt tbl key with
  | Some v -> v
  | None ->
      let v = mk () in
      DeclTbl.add tbl key v;
      v

let memo_fctx tbl key mk =
  match FctxTbl.find_opt tbl key with
  | Some v -> v
  | None ->
      let v = mk () in
      FctxTbl.add tbl key v;
      v

let node_of_var st fx name = memo st.var_node (fx, name) (fun () -> fresh_node st)
let node_of_this st fx = memo_fctx st.this_node fx (fun () -> fresh_node st)
let node_of_ret st fx = memo_fctx st.ret_node fx (fun () -> fresh_node st)
let node_of_global st g = memo st.global_node g (fun () -> fresh_node st)

let fun_object st id =
  memo st.fun_obj id (fun () ->
      new_obj st ~cls:None ~fn:(Some id) ~payload:(-1) ~site:None)

let class_object st cls =
  memo st.class_obj cls (fun () ->
      new_obj st ~cls:(Some cls) ~fn:None ~payload:(-1) ~site:None)

(* The cell object for an address-taken location whose contents live in
   node [n]: pts(&x) = { cell(x) }, payload(cell(x)) = node(x). *)
let cell_object st n =
  let r = find st n in
  memo st.cell_obj r (fun () ->
      new_obj st ~cls:None ~fn:None ~payload:r ~site:None)

(* One node per (defining class, member). Class-typed members denote the
   subobject itself: the node is pre-seeded with an object of the
   member's class (its exact dynamic class). *)
let node_of_field st (m : Member.t) =
  memo st.field_node m (fun () ->
      let n = fresh_node st in
      (match Class_table.find st.table (Member.cls m) with
      | Some ci -> (
          match Class_table.own_field ci (Member.name m) with
          | Some f -> (
              match f.f_type with
              | Ast.TNamed k | Ast.TArr (Ast.TNamed k, _) ->
                  if Class_table.mem st.table k then
                    add_obj st n
                      (new_obj st ~cls:(Some k) ~fn:None ~payload:(-1)
                         ~site:None)
              | _ -> ())
          | None -> ())
      | None -> ());
      n)

(* A stable serial per static call / allocation / delete occurrence,
   shared by every context clone of the enclosing function. *)
let serial_of st (e : texpr) =
  memo_expr st.serial_tbl e (fun () ->
      let s = st.n_serials in
      st.n_serials <- s + 1;
      s)

(* The instance a call with context [c] lands in: [Insensitive] folds
   everything into [CRoot]; [OneCfa] admits new contexts until the cap,
   then collapses deterministically. *)
let ctx_for st fn c =
  match st.mode with
  | Insensitive -> CRoot
  | OneCfa ->
      if c = CRoot || FctxTbl.mem st.instances (fn, c) then c
      else if FctxTbl.length st.instances >= ctx_cap then CRoot
      else c

(* -- type classification ------------------------------------------------------- *)

(* Types whose values the analysis tracks: pointers, functions, and
   class types (class-typed expressions denote object identities). *)
let rec tracked st (t : Ast.type_expr) =
  match t with
  | Ast.TPtr _ | Ast.TFun _ -> true
  | Ast.TNamed n -> Class_table.mem st.table n
  | Ast.TRef t | Ast.TArr (t, _) -> tracked st t
  | _ -> false

(* Reference-to-pointer parameters alias the caller's variable: writes
   to the formal must flow back into the actual. (Class-typed reference
   params need no write-back: field stores are field-based and global.) *)
let ref_needs_writeback (t : Ast.type_expr) =
  match t with
  | Ast.TRef r -> (
      match r with Ast.TPtr _ | Ast.TFun _ -> true | _ -> false)
  | _ -> false

(* Array values are collapsed to one node holding what the elements
   hold; indexing denotes that node directly. *)
let rec is_array_ty (t : Ast.type_expr) =
  match t with
  | Ast.TArr _ -> true
  | Ast.TRef t -> is_array_ty t
  | _ -> false

(* Using an array where a pointer is expected (decay) yields a pointer
   {e to} the collapsed node — except arrays of class objects, whose
   node already holds the element objects' identities. *)
let is_decaying_array (t : Ast.type_expr) =
  let rec elem t =
    match t with Ast.TArr (t, _) | Ast.TRef t -> elem t | t -> t
  in
  is_array_ty t && match elem t with Ast.TNamed _ -> false | _ -> true

let receiver_static_class (mc : method_call) : string option =
  if mc.mc_arrow then Ctype.receiver_class_arrow mc.mc_recv.ty
  else Ctype.receiver_class_dot mc.mc_recv.ty

let dtor_is_virtual table cls =
  let rec go c =
    match Class_table.find table c with
    | None -> false
    | Some ci ->
        (match Class_table.dtor ci with
        | Some d -> d.m_virtual
        | None -> false)
        || List.exists (fun (b : Ast.base_spec) -> go b.b_name) ci.c_bases
  in
  go cls

(* -- reachability and dispatch ------------------------------------------------

   [reach] only queues: constraint generation happens in the solve loop,
   so this cluster (dispatch, fallback resolution, instantiation) stays
   free of recursion into the generator. *)

let rec reach st ((fn, _) as fx : fctx) =
  if not (FctxTbl.mem st.instances fx) then begin
    FctxTbl.add st.instances fx ();
    st.reached <- FuncSet.add fn st.reached;
    Queue.add fx st.gen_queue;
    match fn with
    | Func_id.FCtor (cls, _) -> instantiate st cls
    | _ -> ()
  end

(* A class became instantiated: degraded (⊤) dispatch sites gain its
   cone members, exactly as RTA would. *)
and instantiate st cls =
  if not (StringSet.mem cls st.inst) then begin
    st.inst <- StringSet.add cls st.inst;
    List.iter (resolve_vsite_fallback st) st.top_vsites;
    List.iter (resolve_dsite_fallback st) st.top_dsites
  end

and vsite_target st (vs : vsite) cls =
  match vs.vs_fixed with
  | Some t -> Some t
  | None -> (
      match Member_lookup.dispatch st.table ~dyn:cls ~name:vs.vs_name with
      | Some (def, _) -> Some (Func_id.FMethod (def, vs.vs_name))
      | None -> None)

(* Class-level dispatch with the seed solver's dedup: used by
   [Insensitive] site processing and by the fallback paths of both
   modes (receiver [None] = ⊤ inputs into the [CRoot] instance). *)
and dispatch_to st (vs : vsite) ~recv cls =
  if not (StringSet.mem cls vs.vs_classes) then begin
    vs.vs_classes <- StringSet.add cls vs.vs_classes;
    match vsite_target st vs cls with
    | Some target -> bind_virtual st vs ~recv target
    | None -> ()
  end

and bind_virtual st (vs : vsite) ~recv target =
  let fx = (target, CRoot) in
  if not (FctxSet.mem fx vs.vs_bound) then begin
    vs.vs_bound <- FctxSet.add fx vs.vs_bound;
    reach st fx;
    (match recv with
    | Some rn -> add_edge st rn (node_of_this st fx)
    | None -> set_top st (node_of_this st fx));
    bind_args st fx vs.vs_args vs.vs_ret
  end

(* Object-level dispatch ([OneCfa]): the callee instance is keyed by the
   receiver object, and its [this] holds exactly that object. *)
and dispatch_obj st (vs : vsite) o cls =
  vs.vs_seen <- StringSet.add cls vs.vs_seen;
  match vsite_target st vs cls with
  | None -> ()
  | Some target ->
      let cx = ctx_for st target (CObj o) in
      let fx = (target, cx) in
      if not (FctxSet.mem fx vs.vs_bound) then begin
        vs.vs_bound <- FctxSet.add fx vs.vs_bound;
        reach st fx;
        bind_args st fx vs.vs_args vs.vs_ret
      end;
      add_obj st (node_of_this st fx) o

(* Bind already-generated argument nodes to a target's formals, with
   write-back for reference-to-pointer parameters, and its return to the
   call's result node. Unknown externals yield an unknown result. *)
and bind_args st (fx : fctx) args ret =
  match find_func st.prog (fst fx) with
  | Some f ->
      List.iteri
        (fun i (pname, pty) ->
          match List.nth_opt args i with
          | Some (av, sb) ->
              let pn = node_of_var st fx pname in
              add_edge st av pn;
              if ref_needs_writeback pty then begin
                match sb with
                | Some b -> add_edge st pn b
                | None -> do_havoc st
              end
          | None -> ())
        f.tf_params;
      add_edge st (node_of_ret st fx) ret
  | None -> set_top st ret

and resolve_vsite_fallback st (vs : vsite) =
  match vs.vs_fixed with
  | Some target ->
      (* statically-resolved call with an unknown receiver: the [CRoot]
         instance runs with ⊤ [this] *)
      bind_virtual st vs ~recv:None target
  | None ->
      List.iter
        (fun c -> if StringSet.mem c st.inst then dispatch_to st vs ~recv:None c)
        (vs.vs_static :: Class_table.subclasses st.table vs.vs_static)

and degrade_vsite st (vs : vsite) =
  if not vs.vs_top then begin
    vs.vs_top <- true;
    st.top_vsites <- vs :: st.top_vsites;
    resolve_vsite_fallback st vs
  end

and bind_fsite_target st (fs : fsite) id =
  if not (FuncSet.mem id fs.fs_bound) then begin
    fs.fs_bound <- FuncSet.add id fs.fs_bound;
    match find_func st.prog id with
    | Some f when List.length f.tf_params = fs.fs_arity ->
        reach st (id, CRoot);
        (* formals of address-taken functions are already ⊤ *)
        add_edge st (node_of_ret st (id, CRoot)) fs.fs_ret
    | Some _ -> ()  (* arity mismatch: not a possible target *)
    | None ->
        reach st (id, CRoot);
        set_top st fs.fs_ret
  end

and resolve_fsite_fallback st (fs : fsite) =
  FuncSet.iter (bind_fsite_target st fs) st.addr_taken

and degrade_fsite st (fs : fsite) =
  if not fs.fs_top then begin
    fs.fs_top <- true;
    st.top_fsites <- fs :: st.top_fsites;
    resolve_fsite_fallback st fs
  end

and resolve_dsite_fallback st (ds : dsite) =
  List.iter
    (fun c ->
      if StringSet.mem c st.inst && not (StringSet.mem c ds.ds_classes) then begin
        ds.ds_classes <- StringSet.add c ds.ds_classes;
        reach st (Func_id.FDtor c, CRoot)
      end)
    (ds.ds_static :: Class_table.subclasses st.table ds.ds_static)

and degrade_dsite st (ds : dsite) =
  if not ds.ds_top then begin
    ds.ds_top <- true;
    st.top_dsites <- ds :: st.top_dsites;
    resolve_dsite_fallback st ds
  end

(* An unmodelable store: every dispatch site, present and future, falls
   back to the RTA cone. The solution stays sound; queries report
   unknown. *)
and do_havoc st =
  if not st.havoc then begin
    st.havoc <- true;
    List.iter (degrade_vsite st) st.all_vsites;
    List.iter (degrade_fsite st) st.all_fsites;
    List.iter (degrade_dsite st) st.all_dsites
  end

(* Conservative roots (paper §3.3 and entry points): inputs are unknown,
   so formals and receiver are ⊤. *)
and make_root st id =
  let fx = (id, CRoot) in
  reach st fx;
  (match find_func st.prog id with
  | Some f ->
      List.iter
        (fun (p, ty) ->
          if tracked st ty then set_top st (node_of_var st fx p))
        f.tf_params
  | None -> ());
  match Func_id.class_of id with
  | Some _ -> set_top st (node_of_this st fx)
  | None -> ()

and take_address st id =
  if not (FuncSet.mem id st.addr_taken) then begin
    st.addr_taken <- FuncSet.add id st.addr_taken;
    make_root st id;
    List.iter (fun fs -> bind_fsite_target st fs id) st.top_fsites
  end

(* -- site processing (driven by the solver) ----------------------------------

   [feed_*] processes one batch of receiver objects through a site: the
   full current set at attach time, the delta afterwards. *)

let feed_vsite st (vs : vsite) ~rnode ~objs ~is_top =
  if vs.vs_top then ()
  else if is_top || st.havoc then degrade_vsite st vs
  else
    Ptset.iter
      (fun o ->
        match (st.objs.(o)).o_class with
        | Some c -> (
            match st.mode with
            | Insensitive ->
                vs.vs_seen <- StringSet.add c vs.vs_seen;
                dispatch_to st vs ~recv:(Some rnode) c
            | OneCfa -> dispatch_obj st vs o c)
        | None -> degrade_vsite st vs)
      objs

let feed_fsite st (fs : fsite) ~objs ~is_top =
  if fs.fs_top then ()
  else if is_top || st.havoc then degrade_fsite st fs
  else
    Ptset.iter
      (fun o ->
        match (st.objs.(o)).o_fn with
        | Some id -> bind_fsite_target st fs id
        | None -> degrade_fsite st fs)
      objs

let feed_dsite st (ds : dsite) ~objs ~is_top =
  if ds.ds_top then ()
  else if is_top || st.havoc then degrade_dsite st ds
  else
    Ptset.iter
      (fun o ->
        match (st.objs.(o)).o_class with
        | Some c ->
            ds.ds_seen <- StringSet.add c ds.ds_seen;
            if not (StringSet.mem c ds.ds_classes) then begin
              ds.ds_classes <- StringSet.add c ds.ds_classes;
              reach st (Func_id.FDtor c, CRoot)
            end
        | None -> degrade_dsite st ds)
      objs

(* Stores replay like loads, but need [feed]-style havoc handling. *)
let add_store st p src =
  let r = find st p in
  let n = st.nodes.(r) in
  n.stores <- IntSet.add src (st.nodes.(r)).stores;
  n.stores_c <- None;
  st.n_complex <- st.n_complex + 1;
  Telemetry.Counter.incr complex_counter;
  if n.top then do_havoc st
  else
    Ptset.iter
      (fun o ->
        match payload st o with
        | Some pl -> add_edge st src pl
        | None -> do_havoc st)
      n.pts

let attach_vsite st (vs : vsite) rnode =
  let r = find st rnode in
  let n = st.nodes.(r) in
  n.vsites <- vs :: n.vsites;
  feed_vsite st vs ~rnode ~objs:n.pts ~is_top:n.top

let attach_fsite st (fs : fsite) fnode =
  let r = find st fnode in
  let n = st.nodes.(r) in
  n.fsites <- fs :: n.fsites;
  feed_fsite st fs ~objs:n.pts ~is_top:n.top

let attach_dsite st (ds : dsite) dnode =
  let r = find st dnode in
  let n = st.nodes.(r) in
  n.dsites <- ds :: n.dsites;
  feed_dsite st ds ~objs:n.pts ~is_top:n.top

(* -- the round-based solver ---------------------------------------------------

   One round: drain the worklist into a frontier of (node, delta, ⊤)
   snapshots, filter the frontier's copy edges read-only (phase A,
   parallel when [jobs] allows), then apply the surviving work in
   frontier order (phase B, sequential). Every mutation happens in
   phase B or generation, in a deterministic order. *)

type entry = {
  en_node : int;
  en_delta : Ptset.t;
  en_top : bool;
  en_succ : int array;
  mutable en_keep : int array;
  en_loads : int array;
  en_stores : int array;
  en_vsites : vsite list;
  en_fsites : fsite list;
  en_dsites : dsite list;
}

let no_edges = [||]

let succ_view n =
  match n.succ_c with
  | Some a -> a
  | None ->
      let a =
        if IntSet.is_empty n.succ then no_edges
        else Array.of_list (IntSet.elements n.succ)
      in
      n.succ_c <- Some a;
      a

let loads_view n =
  match n.loads_c with
  | Some a -> a
  | None ->
      let a =
        if IntSet.is_empty n.loads then no_edges
        else Array.of_list (IntSet.elements n.loads)
      in
      n.loads_c <- Some a;
      a

let stores_view n =
  match n.stores_c with
  | Some a -> a
  | None ->
      let a =
        if IntSet.is_empty n.stores then no_edges
        else Array.of_list (IntSet.elements n.stores)
      in
      n.stores_c <- Some a;
      a

let drain st =
  let acc = ref [] in
  while not (Queue.is_empty st.worklist) do
    let i = Queue.pop st.worklist in
    let n = st.nodes.(i) in
    n.queued <- false;
    if find st i = i && ((not (Ptset.is_empty n.delta)) || n.top_pending) then begin
      let e =
        {
          en_node = i;
          en_delta = n.delta;
          en_top = n.top_pending;
          en_succ = succ_view n;
          en_keep = no_edges;
          en_loads = loads_view n;
          en_stores = stores_view n;
          en_vsites = n.vsites;
          en_fsites = n.fsites;
          en_dsites = n.dsites;
        }
      in
      n.delta <- Ptset.empty;
      n.top_pending <- false;
      acc := e :: !acc
    end
  done;
  Array.of_list (List.rev !acc)

(* Phase A: strictly read-only. A copy edge is kept when the delta is
   not already covered by the target's set; a skip stays valid because
   sets only grow. The filter's output is a pure function of the
   frontier snapshot, so parallel and sequential runs agree exactly. *)
let compute_keeps st frontier =
  let keep e s =
    let r = find_ro st s in
    r <> e.en_node
    && (e.en_top || not (Ptset.subset e.en_delta (st.nodes.(r)).pts))
  in
  let work lo hi =
    for k = lo to hi - 1 do
      let e = frontier.(k) in
      let nsucc = Array.length e.en_succ in
      let m = ref 0 in
      for j = 0 to nsucc - 1 do
        if keep e e.en_succ.(j) then incr m
      done;
      (* count first, then fill exactly — and when everything survives
         (the common case) reuse the cached edge array outright *)
      if !m = nsucc then e.en_keep <- e.en_succ
      else if !m > 0 then begin
        let buf = Array.make !m 0 in
        let w = ref 0 in
        for j = 0 to nsucc - 1 do
          let s = e.en_succ.(j) in
          if keep e s then begin
            buf.(!w) <- s;
            incr w
          end
        done;
        e.en_keep <- buf
      end
    done
  in
  let nf = Array.length frontier in
  if st.jobs > 1 && nf >= 64 then begin
    let chunk = (nf + st.jobs - 1) / st.jobs in
    let doms =
      List.init (st.jobs - 1) (fun k ->
          let lo = min nf ((k + 1) * chunk) in
          let hi = min nf (lo + chunk) in
          Domain.spawn (fun () -> work lo hi))
    in
    work 0 (min chunk nf);
    List.iter Domain.join doms
  end
  else work 0 nf

(* Phase B: apply one frontier entry. Monotone: stale snapshots after a
   mid-round merge only cause redundant (deduplicated) re-firing. *)
let apply_entry st e =
  Telemetry.Counter.incr iter_counter;
  let is_top = e.en_top || (st.nodes.(find st e.en_node)).top in
  Array.iter
    (fun dst ->
      if e.en_top then set_top st dst;
      add_objs st dst e.en_delta)
    e.en_keep;
  Array.iter
    (fun dst ->
      if is_top then set_top st dst
      else
        Ptset.iter
          (fun o ->
            match payload st o with
            | Some p -> add_edge st p dst
            | None -> set_top st dst)
          e.en_delta)
    e.en_loads;
  Array.iter
    (fun src ->
      if is_top then do_havoc st
      else
        Ptset.iter
          (fun o ->
            match payload st o with
            | Some p -> add_edge st src p
            | None -> do_havoc st)
          e.en_delta)
    e.en_stores;
  List.iter
    (fun vs -> feed_vsite st vs ~rnode:e.en_node ~objs:e.en_delta ~is_top)
    e.en_vsites;
  List.iter (fun fs -> feed_fsite st fs ~objs:e.en_delta ~is_top) e.en_fsites;
  List.iter (fun ds -> feed_dsite st ds ~objs:e.en_delta ~is_top) e.en_dsites

(* Periodic Tarjan pass over copy edges: collapse multi-node cycles the
   eager 2-cycle check misses. Purely an acceleration; unions performed
   mid-walk only cause redundant re-propagation. *)
let collapse_cycles st =
  let n = st.n_nodes in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let rec strong v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    IntSet.iter
      (fun s ->
        let w = find st s in
        if w <> v && w < n then
          if index.(w) < 0 then begin
            strong w;
            low.(v) <- min low.(v) low.(w)
          end
          else if on_stack.(w) then low.(v) <- min low.(v) index.(w))
      (st.nodes.(v)).succ;
    if low.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      match pop [] with
      | _ :: _ :: _ as scc ->
          ignore
            (List.fold_left (fun a b -> union st a b) (List.hd scc) (List.tl scc))
      | _ -> ()
    end
  in
  for v = 0 to n - 1 do
    if find st v = v && index.(v) < 0 then strong v
  done

(* -- constraint generation ----------------------------------------------------

   Each reachable function instance's body is walked exactly once; every
   tracked-typed expression occurrence is mapped (physically, per
   context) to the node holding its value, so clients can query
   receivers after the solve. *)

(* Where a write to an lvalue lands. *)
type lv =
  | LNode of int  (* a directly-addressed node *)
  | LIndirect of int  (* the payloads of everything this node points to *)
  | LTop  (* unmodelable: writes of tracked values havoc *)
  | LNone  (* untracked or not an lvalue *)

let rec gen_expr st (fx : fctx) (e : texpr) : int =
  let prior =
    match ExprTbl.find_opt st.expr_node e with Some l -> l | None -> []
  in
  match List.assoc_opt (snd fx) prior with
  | Some n -> n
  | None ->
      let n = gen_expr_raw st fx e in
      (* safety net: a tracked expression must always have a node — an
         unmodelled corner becomes ⊤, never a silent drop *)
      let n =
        if n < 0 && tracked st e.ty then begin
          let t = fresh_node st in
          set_top st t;
          t
        end
        else n
      in
      if n >= 0 then ExprTbl.replace st.expr_node e ((snd fx, n) :: prior);
      n

and gen_expr_raw st fx (e : texpr) : int =
  match e.te with
  | TInt _ | TBool _ | TChar _ | TFloat _ | TEnumConst _ | TSizeofType _ ->
      nonode
  | TNull | TStr _ ->
      (* a value that points to nothing the analysis tracks *)
      if tracked st e.ty then fresh_node st else nonode
  | TSizeofExpr _ -> nonode  (* operand is unevaluated *)
  | TLocal x -> if tracked st e.ty then node_of_var st fx x else nonode
  | TGlobalVar g -> if tracked st e.ty then node_of_global st g else nonode
  | TThis _ -> node_of_this st fx
  | TStaticField (c, f) ->
      if tracked st e.ty then node_of_field st (Member.make ~cls:c ~name:f)
      else nonode
  | TField fa ->
      ignore (gen_expr st fx fa.fa_obj);
      if tracked st e.ty then
        node_of_field st (Member.make ~cls:fa.fa_def_class ~name:fa.fa_field)
      else nonode
  | TUnary (_, a) ->
      ignore (gen_expr st fx a);
      nonode
  | TBinary (_, a, b) ->
      (* pointer arithmetic preserves the pointed-to objects *)
      let ga = gen_rval st fx a and gb = gen_rval st fx b in
      if tracked st e.ty then if ga >= 0 then ga else gb else nonode
  | TAssign (op, lhs, rhs) ->
      let gr = gen_rval st fx rhs in
      let lvs = gen_lval st fx lhs in
      if op = Ast.Assign && tracked st rhs.ty then do_assign st lvs gr;
      if tracked st e.ty then gr else nonode
  | TIncDec (_, _, a) ->
      let ga = gen_expr st fx a in
      if tracked st e.ty then ga else nonode
  | TCond (c, t, f) ->
      ignore (gen_expr st fx c);
      let gt = gen_rval st fx t and gf = gen_rval st fx f in
      if tracked st e.ty then begin
        let n = fresh_node st in
        add_edge st gt n;
        add_edge st gf n;
        n
      end
      else nonode
  | TCast (_, _, a, _) ->
      let ga = gen_rval st fx a in
      if tracked st e.ty then
        if ga >= 0 then ga
        else begin
          (* scalar forged into a pointer: unknown target *)
          let n = fresh_node st in
          set_top st n;
          n
        end
      else nonode
  | TAddrOf a -> (
      match Ctype.class_name a.ty with
      | Some _ -> gen_expr st fx a  (* &object = the object's identity *)
      | None ->
          let lvs = gen_lval st fx a in
          let n = fresh_node st in
          List.iter
            (function
              | LNode ln -> add_obj st n (cell_object st ln)
              | LIndirect p -> add_edge st p n  (* &( *p ) = p *)
              | LTop -> set_top st n
              | LNone -> ())
            lvs;
          n)
  | TFunAddr id ->
      take_address st id;
      let n = fresh_node st in
      add_obj st n (fun_object st id);
      n
  | TMemPtr _ -> nonode
  | TDeref a | TIndex (a, _) ->
      (match e.te with
      | TIndex (_, i) -> ignore (gen_expr st fx i)
      | _ -> ());
      let ga = gen_expr st fx a in
      if Ctype.class_name e.ty <> None then ga
        (* objects are second-class: denoting one denotes the pointer's
           targets *)
      else if is_array_ty a.ty then
        (* arrays are collapsed: an element read is the array node *)
        if tracked st e.ty then ga else nonode
      else if tracked st e.ty then begin
        let n = fresh_node st in
        if ga >= 0 then add_load st ga n else set_top st n;
        n
      end
      else nonode
  | TMemPtrDeref (recv, mp, _) ->
      ignore (gen_expr st fx recv);
      ignore (gen_expr st fx mp);
      if tracked st e.ty then begin
        let n = fresh_node st in
        set_top st n;
        n
      end
      else nonode
  | TNewObj { cls; ctor; args } ->
      (* one object per static occurrence, shared by all clones *)
      let o =
        memo_expr st.site_obj e (fun () ->
            new_obj st ~cls:(Some cls) ~fn:None ~payload:(-1)
              ~site:(Some e.tloc))
      in
      let gargs = gen_args st fx args in
      let cfx = (ctor, ctx_for st ctor (CObj o)) in
      reach st cfx;
      add_obj st (node_of_this st cfx) o;
      let n = fresh_node st in
      add_obj st n o;
      bind_args st cfx gargs (fresh_node st);
      n
  | TNewScalar _ ->
      let o =
        memo_expr st.site_obj e (fun () ->
            let p = fresh_node st in
            new_obj st ~cls:None ~fn:None ~payload:p ~site:(Some e.tloc))
      in
      let n = fresh_node st in
      add_obj st n o;
      n
  | TNewArr (ty, len) ->
      ignore (gen_expr st fx len);
      let n = fresh_node st in
      (match ty with
      | Ast.TNamed cls when Class_table.mem st.table cls ->
          let o =
            memo_expr st.site_obj e (fun () ->
                new_obj st ~cls:(Some cls) ~fn:None ~payload:(-1)
                  ~site:(Some e.tloc))
          in
          let ctor = Func_id.FCtor (cls, 0) in
          let cfx = (ctor, ctx_for st ctor (CObj o)) in
          reach st cfx;
          add_obj st (node_of_this st cfx) o;
          add_obj st n o
      | _ ->
          let o =
            memo_expr st.site_obj e (fun () ->
                let p = fresh_node st in
                new_obj st ~cls:None ~fn:None ~payload:p ~site:(Some e.tloc))
          in
          add_obj st n o);
      n
  | TCall c -> gen_call st fx e c

and do_assign st lvs rhs_node =
  List.iter
    (function
      | LNode n -> add_edge st rhs_node n
      | LIndirect p -> if rhs_node >= 0 then add_store st p rhs_node
      | LTop -> do_havoc st
      | LNone -> ())
    lvs

and gen_lval st fx (e : texpr) : lv list =
  match e.te with
  | TLocal x -> [ (if tracked st e.ty then LNode (node_of_var st fx x) else LNone) ]
  | TGlobalVar g ->
      [ (if tracked st e.ty then LNode (node_of_global st g) else LNone) ]
  | TStaticField (c, f) ->
      [
        (if tracked st e.ty then
           LNode (node_of_field st (Member.make ~cls:c ~name:f))
         else LNone);
      ]
  | TField fa ->
      ignore (gen_expr st fx fa.fa_obj);
      [
        (if tracked st e.ty then
           LNode (node_of_field st (Member.make ~cls:fa.fa_def_class ~name:fa.fa_field))
         else LNone);
      ]
  | TDeref a | TIndex (a, _) ->
      (match e.te with
      | TIndex (_, i) -> ignore (gen_expr st fx i)
      | _ -> ());
      let ga = gen_expr st fx a in
      if is_array_ty a.ty then
        (* arrays are collapsed: an element write is a direct write *)
        [ (if ga >= 0 then LNode ga else LNone) ]
      else [ (if ga >= 0 then LIndirect ga else LNone) ]
  | TCond (c, t, f) ->
      ignore (gen_expr st fx c);
      gen_lval st fx t @ gen_lval st fx f
  | TCast (_, _, a, _) -> gen_lval st fx a
  | TMemPtrDeref (recv, mp, _) ->
      ignore (gen_expr st fx recv);
      ignore (gen_expr st fx mp);
      [ LTop ]
  | _ ->
      ignore (gen_expr st fx e);
      [ LTop ]

(* The write-back sink for an argument that may bind to a
   reference-to-pointer formal: writes to the formal flow back here. *)
and arg_backflow st fx (a : texpr) : int option =
  match a.ty with
  | Ast.TPtr _ | Ast.TFun _ -> (
      match a.te with
      | TLocal _ | TGlobalVar _ | TField _ | TStaticField _ | TDeref _
      | TIndex _ -> (
          match gen_lval st fx a with
          | [ LNode n ] -> Some n
          | [ LIndirect p ] ->
              let bk = fresh_node st in
              add_store st p bk;
              Some bk
          | _ -> None)
      | _ -> None)
  | _ -> None

(* An array used as a value decays to a pointer to its collapsed
   element node. *)
and gen_rval st fx (e : texpr) : int =
  let n = gen_expr st fx e in
  if n >= 0 && is_decaying_array e.ty then begin
    let p = fresh_node st in
    add_obj st p (cell_object st n);
    p
  end
  else n

and gen_args st fx args =
  List.map (fun a -> (gen_rval st fx a, arg_backflow st fx a)) args

and gen_static_call st fx ~recv ~callee ~args ret_ty =
  let gargs = gen_args st fx args in
  reach st callee;
  (match recv with
  | Some r -> add_edge st r (node_of_this st callee)
  | None -> ());
  let rn = fresh_node st in
  bind_args st callee gargs rn;
  if tracked st ret_ty then rn else nonode

(* A method call routed through its receiver's objects: virtual calls
   always; statically-resolved calls too in [OneCfa] mode, so the callee
   is cloned per receiver allocation site. *)
and gen_method_site st fx (e : texpr) (mc : method_call) ~fixed ~static_cls
    grecv =
  let gargs = gen_args st fx mc.mc_args in
  let rn = fresh_node st in
  let vs =
    {
      vs_serial = serial_of st e;
      vs_fixed = fixed;
      vs_static = static_cls;
      vs_name = mc.mc_name;
      vs_args = gargs;
      vs_ret = rn;
      vs_classes = StringSet.empty;
      vs_seen = StringSet.empty;
      vs_bound = FctxSet.empty;
      vs_top = false;
    }
  in
  st.all_vsites <- vs :: st.all_vsites;
  let rnode =
    if grecv >= 0 then grecv
    else begin
      let t = fresh_node st in
      set_top st t;
      t
    end
  in
  attach_vsite st vs rnode;
  if tracked st e.ty then rn else nonode

and gen_call st fx (e : texpr) (c : call) : int =
  match c with
  | CBuiltin (_, args) ->
      List.iter (fun a -> ignore (gen_expr st fx a)) args;
      nonode
  | CFree (name, args) ->
      let target = Func_id.FFree name in
      let cfx = (target, ctx_for st target (CSite (serial_of st e))) in
      gen_static_call st fx ~recv:None ~callee:cfx ~args e.ty
  | CMethod mc -> (
      let grecv = gen_expr st fx mc.mc_recv in
      let static_target = Func_id.FMethod (mc.mc_class, mc.mc_name) in
      let static_call () =
        let cx =
          match st.mode with
          | Insensitive -> CRoot
          | OneCfa -> ctx_for st static_target (CSite (serial_of st e))
        in
        gen_static_call st fx
          ~recv:(if grecv >= 0 then Some grecv else None)
          ~callee:(static_target, cx) ~args:mc.mc_args e.ty
      in
      match mc.mc_dispatch with
      | DStatic -> (
          match st.mode with
          | OneCfa when grecv >= 0 ->
              let scls =
                match receiver_static_class mc with
                | Some s -> s
                | None -> mc.mc_class
              in
              gen_method_site st fx e mc ~fixed:(Some static_target)
                ~static_cls:scls grecv
          | _ -> static_call ())
      | DVirtual -> (
          match receiver_static_class mc with
          | None -> static_call ()
          | Some scls ->
              gen_method_site st fx e mc ~fixed:None ~static_cls:scls grecv))
  | CFunPtr (fnx, args) -> (
      match fnx.te with
      | TFunAddr id ->
          (* direct call through a literal address: no indirection *)
          let cfx = (id, ctx_for st id (CSite (serial_of st e))) in
          gen_static_call st fx ~recv:None ~callee:cfx ~args e.ty
      | _ ->
          let gf = gen_expr st fx fnx in
          List.iter (fun a -> ignore (gen_expr st fx a)) args;
          let rn = fresh_node st in
          let fs =
            {
              fs_serial = serial_of st e;
              fs_arity = List.length args;
              fs_ret = rn;
              fs_bound = FuncSet.empty;
              fs_top = false;
            }
          in
          st.all_fsites <- fs :: st.all_fsites;
          let fnode =
            if gf >= 0 then gf
            else begin
              let t = fresh_node st in
              set_top st t;
              t
            end
          in
          attach_fsite st fs fnode;
          if tracked st e.ty then rn else nonode)

(* -- statements and functions -------------------------------------------------- *)

and gen_decl st fx (d : tvar_decl) =
  match d.tv_type with
  | Ast.TNamed cls when Class_table.mem st.table cls ->
      (* a stack object: exact dynamic class, destroyed at scope exit *)
      let o =
        memo_decl st.decl_obj d (fun () ->
            new_obj st ~cls:(Some cls) ~fn:None ~payload:(-1)
              ~site:(Some d.tv_loc))
      in
      add_obj st (node_of_var st fx d.tv_name) o;
      (match d.tv_init with
      | TInitCtor (ctor, args) ->
          let gargs = gen_args st fx args in
          let cfx = (ctor, ctx_for st ctor (CObj o)) in
          reach st cfx;
          add_obj st (node_of_this st cfx) o;
          bind_args st cfx gargs (fresh_node st)
      | TInitNone ->
          let ctor = Func_id.FCtor (cls, 0) in
          let cfx = (ctor, ctx_for st ctor (CObj o)) in
          reach st cfx;
          add_obj st (node_of_this st cfx) o
      | TInitExpr e -> ignore (gen_expr st fx e));
      reach st (Func_id.FDtor cls, CRoot)
  | Ast.TArr (Ast.TNamed cls, _) when Class_table.mem st.table cls ->
      let o =
        memo_decl st.decl_obj d (fun () ->
            new_obj st ~cls:(Some cls) ~fn:None ~payload:(-1)
              ~site:(Some d.tv_loc))
      in
      add_obj st (node_of_var st fx d.tv_name) o;
      let ctor = Func_id.FCtor (cls, 0) in
      let cfx = (ctor, ctx_for st ctor (CObj o)) in
      reach st cfx;
      add_obj st (node_of_this st cfx) o;
      reach st (Func_id.FDtor cls, CRoot);
      (match d.tv_init with
      | TInitExpr e -> ignore (gen_expr st fx e)
      | _ -> ())
  | _ -> (
      match d.tv_init with
      | TInitExpr e ->
          let ge = gen_rval st fx e in
          if tracked st d.tv_type then begin
            let v = node_of_var st fx d.tv_name in
            add_edge st ge v;
            if ref_needs_writeback d.tv_type then
              (* the local is an alias: writes through it must reach the
                 initializer's location *)
              List.iter
                (function
                  | LNode n -> add_edge st v n
                  | LIndirect p -> add_store st p v
                  | LTop -> do_havoc st
                  | LNone -> ())
                (gen_lval st fx e)
          end
      | TInitCtor (_, args) -> (
          match args with
          | [ a ] when tracked st d.tv_type ->
              let ga = gen_rval st fx a in
              add_edge st ga (node_of_var st fx d.tv_name)
          | _ -> List.iter (fun a -> ignore (gen_expr st fx a)) args)
      | TInitNone -> ())

and gen_stmt st fx (s : tstmt) =
  match s.ts with
  | TSExpr e -> ignore (gen_expr st fx e)
  | TSDecl ds -> List.iter (gen_decl st fx) ds
  | TSIf (c, _, _) | TSWhile (c, _) | TSDoWhile (_, c) ->
      ignore (gen_expr st fx c)
  | TSFor (_, cond, step, _) ->
      Option.iter (fun e -> ignore (gen_expr st fx e)) cond;
      Option.iter (fun e -> ignore (gen_expr st fx e)) step
  | TSReturn (Some e) ->
      let ge = gen_rval st fx e in
      if tracked st e.ty then add_edge st ge (node_of_ret st fx)
  | TSDelete (_, e) -> (
      let ge = gen_expr st fx e in
      match Ctype.pointee e.ty with
      | Some (Ast.TNamed cls) when Class_table.mem st.table cls ->
          if dtor_is_virtual st.table cls then begin
            let ds =
              {
                ds_serial = serial_of st e;
                ds_static = cls;
                ds_classes = StringSet.empty;
                ds_seen = StringSet.empty;
                ds_top = false;
              }
            in
            st.all_dsites <- ds :: st.all_dsites;
            let dnode =
              if ge >= 0 then ge
              else begin
                let t = fresh_node st in
                set_top st t;
                t
              end
            in
            attach_dsite st ds dnode
          end
          else reach st (Func_id.FDtor cls, CRoot)
      | _ -> ())
  | TSReturn None | TSBlock _ | TSBreak | TSContinue | TSEmpty -> ()

(* Generate the constraints of one newly-reached function instance:
   structural constructor/destructor obligations (mirroring the
   call-graph builder's [structural_events]), then the body. *)
and gen_func st (fx : fctx) =
  let id, cx = fx in
  match find_func st.prog id with
  | None -> ()
  | Some f ->
      (match id with
      | Func_id.FCtor (cls, _) ->
          (* while a constructor runs, the dynamic type is the class
             itself (C++ dispatch-during-construction) *)
          add_obj st (node_of_this st fx) (class_object st cls);
          List.iter
            (fun (bi : base_init) ->
              let bctor = Func_id.FCtor (bi.bi_class, List.length bi.bi_args) in
              let gargs = gen_args st fx bi.bi_args in
              (* the base subobject is the same object under
                 construction: its clone keeps the caller's context *)
              let bcx =
                match cx with CObj _ -> ctx_for st bctor cx | _ -> CRoot
              in
              let bfx = (bctor, bcx) in
              reach st bfx;
              (* the object under construction is the base ctor's receiver
                 too: if [this] escapes from the base ctor, it carries the
                 derived object's identity *)
              add_edge st (node_of_this st fx) (node_of_this st bfx);
              bind_args st bfx gargs (fresh_node st))
            f.tf_base_inits;
          let c = Class_table.find_exn st.table cls in
          List.iter
            (fun (fl : Class_table.field) ->
              if not fl.f_static then
                let explicit =
                  List.find_opt
                    (fun fi -> fi.fi_field = fl.f_name)
                    f.tf_field_inits
                in
                match fl.f_type with
                | Ast.TNamed fcls when Class_table.mem st.table fcls ->
                    let nargs =
                      match explicit with
                      | Some fi -> List.length fi.fi_args
                      | None -> 0
                    in
                    let gargs =
                      match explicit with
                      | Some fi -> gen_args st fx fi.fi_args
                      | None -> []
                    in
                    let fctor = Func_id.FCtor (fcls, nargs) in
                    let ffx = (fctor, CRoot) in
                    reach st ffx;
                    bind_args st ffx gargs (fresh_node st)
                | Ast.TArr (Ast.TNamed fcls, _)
                  when Class_table.mem st.table fcls ->
                    reach st (Func_id.FCtor (fcls, 0), CRoot)
                | _ -> (
                    match explicit with
                    | Some fi when tracked st fl.f_type -> (
                        match fi.fi_args with
                        | [ a ] ->
                            let ga = gen_expr st fx a in
                            add_edge st ga
                              (node_of_field st
                                 (Member.make ~cls ~name:fl.f_name))
                        | args ->
                            List.iter
                              (fun a -> ignore (gen_expr st fx a))
                              args)
                    | Some fi ->
                        List.iter
                          (fun a -> ignore (gen_expr st fx a))
                          fi.fi_args
                    | None -> ()))
            c.c_fields
      | Func_id.FDtor cls ->
          add_obj st (node_of_this st fx) (class_object st cls);
          let c = Class_table.find_exn st.table cls in
          List.iter
            (fun (b : Ast.base_spec) -> reach st (Func_id.FDtor b.b_name, CRoot))
            c.c_bases;
          List.iter
            (fun vb ->
              if
                not
                  (List.exists
                     (fun (b : Ast.base_spec) -> b.b_name = vb)
                     c.c_bases)
              then reach st (Func_id.FDtor vb, CRoot))
            (Class_table.virtual_base_names st.table cls);
          List.iter
            (fun (fl : Class_table.field) ->
              if not fl.f_static then
                match fl.f_type with
                | Ast.TNamed fcls | Ast.TArr (Ast.TNamed fcls, _) ->
                    if Class_table.mem st.table fcls then
                      reach st (Func_id.FDtor fcls, CRoot)
                | _ -> ())
            c.c_fields
      | Func_id.FFree _ | Func_id.FMethod _ -> ());
      (match f.tf_body with
      | Some body -> fold_stmts (fun () s -> gen_stmt st fx s) () body
      | None -> ())

(* -- driver -------------------------------------------------------------------- *)

let solve st =
  let running = ref true in
  while !running do
    while not (Queue.is_empty st.gen_queue) do
      gen_func st (Queue.pop st.gen_queue)
    done;
    if Queue.is_empty st.worklist then running := false
    else begin
      st.rounds <- st.rounds + 1;
      Telemetry.Counter.incr round_counter;
      let frontier = drain st in
      compute_keeps st frontier;
      Array.iter (apply_entry st) frontier;
      st.pops <- st.pops + Array.length frontier;
      (* the collapse pass is O(V+E); scale the trigger with graph size
         so long pipelined propagations don't drown in Tarjan walks *)
      if st.pops - st.last_collapse >= max 4096 (4 * st.n_nodes) then begin
        st.last_collapse <- st.pops;
        collapse_cycles st
      end
    end
  done

(* A converged solution should retain the answer, not the machinery
   that produced it: drop the capacity slack of the node/object stores,
   the lazily built edge-array views, and the interner's operation
   memos (interned sets survive — queries re-dedup on demand). *)
let shrink st =
  if Array.length st.nodes > st.n_nodes then
    st.nodes <- Array.sub st.nodes 0 st.n_nodes;
  if Array.length st.objs > st.n_objs then
    st.objs <- Array.sub st.objs 0 st.n_objs;
  let live = ref [] in
  Array.iteri
    (fun i n ->
      n.succ_c <- None;
      n.loads_c <- None;
      n.stores_c <- None;
      (* the constraint graph exists to reach the fixpoint; the
         solution keeps only per-node answers ([pts], [top]) and the
         site registries ([all_vsites] & co). Merged-away nodes keep
         just their forwarding pointer. *)
      n.delta <- Ptset.empty;
      n.succ <- IntSet.empty;
      n.loads <- IntSet.empty;
      n.stores <- IntSet.empty;
      n.vsites <- [];
      n.fsites <- [];
      n.dsites <- [];
      if n.parent <> i then n.pts <- Ptset.empty
      else if not (Ptset.is_empty n.pts) then live := n.pts :: !live)
    st.nodes;
  Ptset.compact st.it !live;
  (* generation-time memos: nothing after the solve reads them *)
  Hashtbl.reset st.var_node;
  Hashtbl.reset st.global_node;
  Hashtbl.reset st.field_node;
  Hashtbl.reset st.fun_obj;
  Hashtbl.reset st.class_obj;
  Hashtbl.reset st.cell_obj;
  FctxTbl.reset st.this_node;
  FctxTbl.reset st.ret_node;
  ExprTbl.reset st.serial_tbl;
  DeclTbl.reset st.decl_obj

(* A dispatch site (one static occurrence, all clones) counts as a
   fallback when the analysis could not pin it to a single receiver in
   some context: a clone degraded to ⊤, or a clone saw more than one
   receiver class (more than one bound target for function pointers).
   Statically-resolved sites routed through objects are not counted. *)
let count_fallback_sites st =
  let status : (int, bool) Hashtbl.t = Hashtbl.create 64 in
  let mark serial fb =
    let prev = try Hashtbl.find status serial with Not_found -> false in
    Hashtbl.replace status serial (prev || fb)
  in
  List.iter
    (fun vs ->
      if vs.vs_fixed = None then
        mark vs.vs_serial (vs.vs_top || StringSet.cardinal vs.vs_seen > 1))
    st.all_vsites;
  List.iter
    (fun fs -> mark fs.fs_serial (fs.fs_top || FuncSet.cardinal fs.fs_bound > 1))
    st.all_fsites;
  List.iter
    (fun ds ->
      mark ds.ds_serial (ds.ds_top || StringSet.cardinal ds.ds_seen > 1))
    st.all_dsites;
  Hashtbl.fold (fun _ fb acc -> if fb then acc + 1 else acc) status 0

let analyze ?(mode = Insensitive) ?(jobs = 1) ?(roots = [ main_id ])
    (p : program) : solution =
  Telemetry.Span.with_ "pta" @@ fun () ->
  let st =
    {
      prog = p;
      table = p.table;
      mode;
      jobs = max 1 jobs;
      it = Ptset.create ();
      nodes = [||];
      n_nodes = 0;
      objs = [||];
      n_objs = 0;
      expr_node = ExprTbl.create 1024;
      site_obj = ExprTbl.create 64;
      decl_obj = DeclTbl.create 64;
      serial_tbl = ExprTbl.create 64;
      n_serials = 0;
      var_node = Hashtbl.create 256;
      this_node = FctxTbl.create 64;
      ret_node = FctxTbl.create 64;
      global_node = Hashtbl.create 16;
      field_node = Hashtbl.create 64;
      fun_obj = Hashtbl.create 16;
      class_obj = Hashtbl.create 16;
      cell_obj = Hashtbl.create 16;
      worklist = Queue.create ();
      gen_queue = Queue.create ();
      instances = FctxTbl.create 256;
      reached = FuncSet.empty;
      inst = StringSet.empty;
      addr_taken = FuncSet.empty;
      all_vsites = [];
      all_fsites = [];
      all_dsites = [];
      top_vsites = [];
      top_fsites = [];
      top_dsites = [];
      havoc = false;
      n_copy = 0;
      n_complex = 0;
      n_delta = 0;
      rounds = 0;
      pops = 0;
      last_collapse = 0;
    }
  in
  Telemetry.Span.with_ "pta.seed" (fun () ->
      List.iter
        (fun (g : global) ->
          match g.g_init with
          | Some e ->
              let n = gen_rval st (main_id, CRoot) e in
              if tracked st g.g_type then
                add_edge st n (node_of_global st g.g_name)
          | None -> ())
        p.globals;
      List.iter (make_root st) roots);
  Telemetry.Span.with_ "pta.solve" (fun () -> solve st);
  shrink st;
  Telemetry.Counter.add sets_counter (Ptset.interned_count st.it);
  Telemetry.Counter.add memo_counter (Ptset.memo_hits st.it);
  Telemetry.Gauge.set reach_gauge (FuncSet.cardinal st.reached);
  Telemetry.Gauge.set ctx_gauge (FctxTbl.length st.instances);
  Telemetry.Gauge.set fallback_gauge (count_fallback_sites st);
  st

(* -- queries -------------------------------------------------------------------- *)

let mode st = st.mode
let reachable st = st.reached
let instantiated st = StringSet.elements st.inst
let address_taken st = st.addr_taken
let havoc st = st.havoc

(* The union over every context clone of the expression occurrence:
   [None] when any clone's node degraded to ⊤ (or the store havocked). *)
let node_objects st e =
  if st.havoc then None
  else
    match ExprTbl.find_opt st.expr_node e with
    | None | Some [] -> None
    | Some entries ->
        let ok = ref true in
        let pts =
          List.fold_left
            (fun acc (_, n) ->
              let nd = st.nodes.(find st n) in
              if nd.top then ok := false;
              Ptset.union st.it acc nd.pts)
            Ptset.empty entries
        in
        if !ok then Some pts else None

let receiver_classes st e =
  match node_objects st e with
  | None -> None
  | Some pts ->
      let ok = ref true in
      let cs =
        Ptset.fold
          (fun o acc ->
            match (st.objs.(o)).o_class with
            | Some c -> StringSet.add c acc
            | None ->
                ok := false;
                acc)
          pts StringSet.empty
      in
      if !ok then Some (StringSet.elements cs) else None

let funptr_targets st e =
  match node_objects st e with
  | None -> None
  | Some pts ->
      let ok = ref true in
      let fs =
        Ptset.fold
          (fun o acc ->
            match (st.objs.(o)).o_fn with
            | Some f -> FuncSet.add f acc
            | None ->
                ok := false;
                acc)
          pts FuncSet.empty
      in
      if !ok then Some (FuncSet.elements fs) else None

(* The allocation sites behind an expression's objects — the provenance
   the [explain] command names. Sites without a textual location
   (class-identity and cell objects) are skipped. *)
let receiver_alloc_sites st e =
  match node_objects st e with
  | None -> None
  | Some pts ->
      let sites =
        Ptset.fold
          (fun o acc ->
            let ob = st.objs.(o) in
            match ob.o_site with
            | Some sp ->
                let cls =
                  match ob.o_class with Some c -> c | None -> "<scalar>"
                in
                (cls, sp) :: acc
            | None -> acc)
          pts []
      in
      Some (List.sort_uniq Stdlib.compare sites)

let num_nodes st = st.n_nodes
let num_objects st = st.n_objs
let num_constraints st = st.n_copy + st.n_complex

type stats = {
  p_nodes : int;
  p_objects : int;
  p_constraints : int;
  p_sets_interned : int;
  p_memo_hits : int;
  p_delta_props : int;
  p_solver_iters : int;
  p_contexts : int;
  p_fallback_sites : int;
  p_reachable : int;
}

let stats st =
  {
    p_nodes = st.n_nodes;
    p_objects = st.n_objs;
    p_constraints = st.n_copy + st.n_complex;
    p_sets_interned = Ptset.interned_count st.it;
    p_memo_hits = Ptset.memo_hits st.it;
    p_delta_props = st.n_delta;
    p_solver_iters = st.rounds;
    p_contexts = FctxTbl.length st.instances;
    p_fallback_sites = count_fallback_sites st;
    p_reachable = FuncSet.cardinal st.reached;
  }

(* A digest of everything the solver computed: per-node sets and flags,
   reachability, and the deterministic counters. Byte-identical across
   [jobs] settings by construction — pinned by tests. *)
let fingerprint st =
  let b = Buffer.create 4096 in
  for i = 0 to st.n_nodes - 1 do
    if find st i = i then begin
      let n = st.nodes.(i) in
      Buffer.add_string b (string_of_int i);
      Buffer.add_char b (if n.top then 'T' else '=');
      Ptset.iter
        (fun o ->
          Buffer.add_string b (string_of_int o);
          Buffer.add_char b ',')
        n.pts;
      Buffer.add_char b ';'
    end
  done;
  FuncSet.iter
    (fun f ->
      Buffer.add_string b (Func_id.to_string f);
      Buffer.add_char b ';')
    st.reached;
  StringSet.iter
    (fun c ->
      Buffer.add_string b c;
      Buffer.add_char b ';')
    st.inst;
  Buffer.add_string b
    (Printf.sprintf "|d%d|r%d|s%d|m%d|n%d|o%d|c%d|i%d" st.n_delta st.rounds
       (Ptset.interned_count st.it)
       (Ptset.memo_hits st.it) st.n_nodes st.n_objs
       (st.n_copy + st.n_complex)
       (FctxTbl.length st.instances));
  Digest.to_hex (Digest.string (Buffer.contents b))
