(* Reproduction harness: regenerates every table and figure of the
   paper's evaluation (Section 4), plus the ablations discussed in §3.1
   and §3.2, plus Bechamel micro-benchmarks of the analysis itself.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- table1  -- benchmark characteristics
     dune exec bench/main.exe -- figure3 -- static dead-member percentages
     dune exec bench/main.exe -- table2  -- dynamic object-space numbers
     dune exec bench/main.exe -- figure4 -- dead space / HWM reduction bars
     dune exec bench/main.exe -- ablation-- call-graph & policy ablations
     dune exec bench/main.exe -- perf    -- Bechamel timings
     dune exec bench/main.exe -- json    -- write BENCH_deadmem.json
     dune exec bench/main.exe -- --compare BASELINE.json
                                         -- diff against a committed snapshot;
                                            exits 1 on >10% median phase
                                            regression or a PTA build slower
                                            than 2x the CHA build *)

open Benchmarks

(* Execution engine for the run phase ([--engine tree|bytecode], default
   bytecode) and measurement parallelism ([--jobs N], default 1 — keep 1
   when wall-clock numbers matter; parallel domains contend for cores).
   Both are plain refs set once by the driver before any measurement. *)
let engine = ref Runtime.Interp.Bytecode
let jobs = ref 1
let json_out = ref "BENCH_deadmem.json"

(* DEADMEM_BOXED=1 (the resolve knob that pins every slot to the boxed
   bank) effectively measures a different engine, so the snapshot says
   so: the CI generic-engine gate compares boxed runs against a boxed
   baseline and the engine field keeps the two files honest. *)
let engine_name () =
  let base =
    match !engine with
    | Runtime.Interp.Bytecode -> "bytecode"
    | Runtime.Interp.Tree -> "tree"
  in
  match Sys.getenv_opt "DEADMEM_BOXED" with
  | Some ("1" | "true") -> base ^ "+boxed"
  | _ -> base

type row = {
  bench : Suite.t;
  report : Deadmem.Report.t;
  outcome : Runtime.Interp.outcome;
}

let compute_row (b : Suite.t) : row =
  let prog = Suite.program b in
  let result = Deadmem.Liveness.analyze ~config:Deadmem.Config.paper prog in
  let report = Deadmem.Report.of_result prog result in
  let outcome =
    Runtime.Interp.run ~engine:!engine
      ~dead:(Deadmem.Liveness.dead_set result)
      prog
  in
  { bench = b; report; outcome }

let rows = lazy (List.map compute_row Suite.all)

let bar width pct max_pct =
  let n =
    if max_pct <= 0.0 then 0
    else int_of_float (pct /. max_pct *. float_of_int width +. 0.5)
  in
  String.make (min width n) '#'

(* Paper values, for side-by-side comparison. Table 2 cells that are
   unreadable in our source text of the paper are shown as "-". *)
let paper_figure3 = function
  | "richards" | "deltablue" -> Some 0.0
  | "taldict" -> Some 27.3 (* the paper's maximum *)
  | _ -> None

let paper_table2 = function
  | "idl" -> Some (708_249, 15_388, 701_273, 686_886)
  | "npic" -> Some (115_248, 5_616, 24_972, 23_840)
  | "lcom" -> Some (2_274_956, 241_435, 1_652_828, 1_491_048)
  | "taldict" -> Some (7_080, 36, 7_998, 6_972)
  | "ixx" -> Some (551_160, 29_745, 299_516, 269_775)
  | "simulate" -> Some (64_869, 41, 11_586, 11_644)
  | "sched" -> Some (9_032_676, 1_049_148, 9_032_676, 7_983_528)
  | "hotwire" -> Some (10_780, 284, 10_780, 10_496)
  | "deltablue" -> Some (276_364, 0, 196_212, 196_212)
  | "richards" -> Some (4_889, 0, 4_880, 4_880)
  | _ -> None (* jikes: row partially unreadable in the source text *)

(* -- Table 1 ----------------------------------------------------------------- *)

let table1 () =
  Fmt.pr "@.Table 1: benchmark characteristics@.";
  Fmt.pr "%-10s %-48s %6s %9s %8s@." "name" "description" "LOC" "classes"
    "members";
  Fmt.pr "%s@." (String.make 86 '-');
  List.iter
    (fun { bench; report; _ } ->
      Fmt.pr "%-10s %-48s %6d %4d (%2d) %8d@." bench.Suite.name
        bench.Suite.description (Suite.loc bench)
        report.Deadmem.Report.num_classes
        report.Deadmem.Report.num_used_classes
        report.Deadmem.Report.members_in_used)
    (Lazy.force rows);
  Fmt.pr
    "@.(classes column: total (used); members: data members in used classes,@.\
    \ as in the paper's Table 1. LOC are for our MiniC++ ports, which are@.\
    \ scaled-down versions of the original 600-58,296 LOC applications.)@."

(* -- Figure 3 ----------------------------------------------------------------- *)

let figure3 () =
  Fmt.pr "@.Figure 3: percentage of dead data members (used classes)@.";
  Fmt.pr "%-10s %6s  %-40s %s@." "name" "dead%" "" "paper";
  Fmt.pr "%s@." (String.make 72 '-');
  let max_pct = 30.0 in
  List.iter
    (fun { bench; report; _ } ->
      let pct = report.Deadmem.Report.dead_pct in
      let paper =
        match paper_figure3 bench.Suite.name with
        | Some v -> Fmt.str "%.1f" v
        | None -> "(bar only)"
      in
      Fmt.pr "%-10s %5.1f%%  %-40s %s@." bench.Suite.name pct
        (bar 40 pct max_pct) paper)
    (Lazy.force rows);
  let nontrivial =
    List.filter
      (fun { report; _ } -> report.Deadmem.Report.dead_in_used > 0)
      (Lazy.force rows)
  in
  let avg =
    List.fold_left
      (fun acc { report; _ } -> acc +. report.Deadmem.Report.dead_pct)
      0.0 nontrivial
    /. float_of_int (max 1 (List.length nontrivial))
  in
  let mx =
    List.fold_left
      (fun acc { report; _ } -> max acc report.Deadmem.Report.dead_pct)
      0.0 nontrivial
  in
  Fmt.pr
    "@.nontrivial benchmarks: average %.1f%% dead (paper: 12.5%%), max %.1f%% (paper: 27.3%%)@."
    avg mx

(* -- Table 2 ----------------------------------------------------------------- *)

let table2 () =
  Fmt.pr "@.Table 2: execution characteristics (bytes)@.";
  Fmt.pr "%-10s %12s %12s %12s %12s@." "name" "obj space" "dead space" "HWM"
    "HWM w/o dead";
  Fmt.pr "%s@." (String.make 64 '-');
  List.iter
    (fun { bench; outcome; _ } ->
      let s = outcome.Runtime.Interp.snapshot in
      Fmt.pr "%-10s %12d %12d %12d %12d@." bench.Suite.name
        s.Runtime.Profile.object_space s.Runtime.Profile.dead_space
        s.Runtime.Profile.high_water_mark
        s.Runtime.Profile.high_water_mark_reduced;
      match paper_table2 bench.Suite.name with
      | Some (a, b, c, d) ->
          Fmt.pr "%-10s %12d %12d %12d %12d@." "  (paper)" a b c d
      | None -> Fmt.pr "%-10s %12s %12s %12s %12s@." "  (paper)" "-" "-" "-" "-")
    (Lazy.force rows);
  Fmt.pr
    "@.(absolute bytes differ from the paper — our ports are scaled down —@.\
    \ but the per-benchmark shape is preserved: who leaks until exit,@.\
    \ whose HWM is far below total, and where dead bytes concentrate.)@."

(* -- Figure 4 ----------------------------------------------------------------- *)

let figure4 () =
  Fmt.pr "@.Figure 4: object space occupied by dead data members@.";
  Fmt.pr "%-10s %7s %-26s %8s %-26s@." "name" "dead%" "(of object space)"
    "hwm-red%" "(high-water-mark cut)";
  Fmt.pr "%s@." (String.make 86 '-');
  let max_pct = 12.0 in
  List.iter
    (fun { bench; outcome; _ } ->
      let s = outcome.Runtime.Interp.snapshot in
      let p1 = Runtime.Profile.dead_space_pct s in
      let p2 = Runtime.Profile.hwm_reduction_pct s in
      Fmt.pr "%-10s %6.1f%% %-26s %7.1f%% %-26s@." bench.Suite.name p1
        (bar 24 p1 max_pct) p2 (bar 24 p2 max_pct))
    (Lazy.force rows);
  let rs = Lazy.force rows in
  let avg f =
    List.fold_left (fun acc r -> acc +. f r) 0.0 rs
    /. float_of_int (List.length rs)
  in
  Fmt.pr
    "@.average dead space %.1f%% (paper: 4.4%%), average HWM reduction %.1f%% (paper: 4.9%%)@."
    (avg (fun r ->
         Runtime.Profile.dead_space_pct r.outcome.Runtime.Interp.snapshot))
    (avg (fun r ->
         Runtime.Profile.hwm_reduction_pct r.outcome.Runtime.Interp.snapshot));
  let mx =
    List.fold_left
      (fun acc r ->
        max acc
          (Runtime.Profile.dead_space_pct r.outcome.Runtime.Interp.snapshot))
      0.0 rs
  in
  Fmt.pr "maximum dead space %.1f%% (paper: 11.6%%, sched)@." mx

(* -- ablations ----------------------------------------------------------------- *)

let ablation () =
  Fmt.pr
    "@.Ablation A1: call-graph precision (CHA vs RTA vs PTA), dead members \
     found@.";
  Fmt.pr "%-10s %6s %6s %6s %10s %10s %10s@." "name" "CHA" "RTA" "PTA"
    "CHA funcs" "RTA funcs" "PTA funcs";
  Fmt.pr "%s@." (String.make 64 '-');
  List.iter
    (fun (b : Suite.t) ->
      let prog = Suite.program b in
      let dead_with alg =
        let config =
          { Deadmem.Config.paper with Deadmem.Config.call_graph = alg }
        in
        let r = Deadmem.Liveness.analyze ~config prog in
        ( List.length (Deadmem.Liveness.dead_members r),
          r.Deadmem.Liveness.callgraph )
      in
      let cha, cha_cg = dead_with Callgraph.Cha in
      let rta, rta_cg = dead_with Callgraph.Rta in
      let pta, pta_cg = dead_with Callgraph.Pta in
      Fmt.pr "%-10s %6d %6d %6d %10d %10d %10d@." b.Suite.name cha rta pta
        (Callgraph.num_nodes cha_cg) (Callgraph.num_nodes rta_cg)
        (Callgraph.num_nodes pta_cg))
    Suite.all;
  Fmt.pr
    "@.(RTA never finds fewer dead members than CHA, nor PTA fewer than RTA;@.\
    \ the paper's §3.1 notes that more accurate call graphs can only improve@.\
    \ the results.)@.";
  Fmt.pr "@.Ablation A2: sizeof and down-cast policies, dead members found@.";
  Fmt.pr "%-10s %20s %14s %12s@." "name" "paper(ignore/safe)" "sizeof-cons"
    "casts-cons";
  Fmt.pr "%s@." (String.make 60 '-');
  List.iter
    (fun (b : Suite.t) ->
      let prog = Suite.program b in
      let dead_with config =
        List.length
          (Deadmem.Liveness.dead_members
             (Deadmem.Liveness.analyze ~config prog))
      in
      let paper = dead_with Deadmem.Config.paper in
      let sizeof_cons =
        dead_with
          {
            Deadmem.Config.paper with
            Deadmem.Config.sizeof_policy = Deadmem.Config.Sizeof_conservative;
          }
      in
      let casts_cons =
        dead_with
          {
            Deadmem.Config.paper with
            Deadmem.Config.assume_downcasts_safe = false;
          }
      in
      Fmt.pr "%-10s %20d %14d %12d@." b.Suite.name paper sizeof_cons casts_cons)
    Suite.all

(* -- Bechamel micro-benchmarks --------------------------------------------------- *)

let perf () =
  let open Bechamel in
  let parse_tests =
    List.map
      (fun (b : Suite.t) ->
        Test.make ~name:("parse/" ^ b.Suite.name)
          (Staged.stage (fun () ->
               ignore (Frontend.Parser.parse_string b.Suite.source))))
      Suite.all
  in
  let check_tests =
    List.map
      (fun (b : Suite.t) ->
        Test.make ~name:("typecheck/" ^ b.Suite.name)
          (Staged.stage (fun () -> ignore (Suite.program b))))
      [ Suite.find_exn "jikes"; Suite.find_exn "richards" ]
  in
  let analysis_tests =
    List.map
      (fun (b : Suite.t) ->
        let prog = Suite.program b in
        Test.make ~name:("analyze/" ^ b.Suite.name)
          (Staged.stage (fun () ->
               ignore
                 (Deadmem.Liveness.analyze ~config:Deadmem.Config.paper prog))))
      Suite.all
  in
  let callgraph_tests =
    List.concat_map
      (fun (b : Suite.t) ->
        let prog = Suite.program b in
        [
          Test.make ~name:("cha/" ^ b.Suite.name)
            (Staged.stage (fun () ->
                 ignore (Callgraph.build ~algorithm:Callgraph.Cha prog)));
          Test.make ~name:("rta/" ^ b.Suite.name)
            (Staged.stage (fun () ->
                 ignore (Callgraph.build ~algorithm:Callgraph.Rta prog)));
        ])
      [ Suite.find_exn "idl"; Suite.find_exn "jikes" ]
  in
  let grouped =
    Test.make_grouped ~name:"deadmem"
      (parse_tests @ check_tests @ analysis_tests @ callgraph_tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raw in
  Fmt.pr "@.Performance (Bechamel, monotonic clock):@.";
  Fmt.pr "%-32s %14s@." "benchmark" "ns/run";
  Fmt.pr "%s@." (String.make 48 '-');
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Fmt.pr "%-32s %14.0f@." name est
      | Some _ | None -> Fmt.pr "%-32s %14s@." name "n/a")
    (List.sort compare entries);
  Fmt.pr
    "@.(the analysis is O(N + C*M) after call-graph construction — paper@.\
    \ section 3.4; the timings above scale with benchmark size.)@."

(* -- points-to stress (--pta-stress) ---------------------------------------------- *)

(* The scalability gate of the rebuilt solver: one ≥50k-constraint
   synthetic input at a pinned seed (Synth.stress), solved by the frozen
   PR 4 solver (Pta_legacy) and by the current solver, measuring wall
   clock, total allocation, and live heap retained by the solution.
   Sharing + difference propagation must beat the eager baseline by 5x
   on all three axes ([--gate]); the numbers land in the bench JSON so
   the trajectory is visible across PRs. *)

type stress_result = {
  st_constraints : int;
  st_legacy_wall_ms : float;
  st_legacy_alloc_w : float;  (* words allocated during the solve *)
  st_legacy_live_w : int;  (* words retained by the solution *)
  st_new_wall_ms : float;
  st_new_alloc_w : float;
  st_new_live_w : int;
  st_pta1_wall_ms : float;
  st_stats : Pta.stats;
  st_pta1_stats : Pta.stats;
}

(* Run [f], returning its result plus wall ms, words allocated, and the
   live-word delta it retains (solution kept alive across the final
   compaction). *)
let measure_solver f =
  Gc.compact ();
  let live0 = (Gc.stat ()).Gc.live_words in
  let a0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  let sol = f () in
  let wall = (Unix.gettimeofday () -. t0) *. 1e3 in
  let alloc = (Gc.allocated_bytes () -. a0) /. 8.0 in
  Gc.compact ();
  let live1 = (Gc.stat ()).Gc.live_words in
  (sol, wall, alloc, live1 - live0)

let pta_stress_result : stress_result Lazy.t =
  lazy
    (let prog = Synth.program Synth.stress in
     let leg, lw, la, ll =
       measure_solver (fun () -> Pta_legacy.analyze prog)
     in
     ignore (Sys.opaque_identity (Pta_legacy.num_nodes leg));
     let sol, nw, na, nl = measure_solver (fun () -> Pta.analyze prog) in
     let stats = Pta.stats sol in
     ignore (Sys.opaque_identity (Pta.num_nodes sol));
     let sol1, w1, _, _ =
       measure_solver (fun () -> Pta.analyze ~mode:Pta.OneCfa prog)
     in
     let stats1 = Pta.stats sol1 in
     {
       st_constraints = Pta.num_constraints sol;
       st_legacy_wall_ms = lw;
       st_legacy_alloc_w = la;
       st_legacy_live_w = ll;
       st_new_wall_ms = nw;
       st_new_alloc_w = na;
       st_new_live_w = nl;
       st_pta1_wall_ms = w1;
       st_stats = stats;
       st_pta1_stats = stats1;
     })

let ratio a b = if b > 0.0 then a /. b else infinity

let pta_stress ~gate () =
  let r = Lazy.force pta_stress_result in
  let speedup = ratio r.st_legacy_wall_ms r.st_new_wall_ms in
  let alloc_ratio = ratio r.st_legacy_alloc_w r.st_new_alloc_w in
  let live_ratio =
    ratio (float_of_int r.st_legacy_live_w) (float_of_int r.st_new_live_w)
  in
  Fmt.pr "@.PTA stress (seed %d): %d constraints, %d nodes, %d objects@."
    Synth.stress.Synth.seed r.st_constraints r.st_stats.Pta.p_nodes
    r.st_stats.Pta.p_objects;
  Fmt.pr "%-22s %12s %14s %14s@." "solver" "wall ms" "alloc words"
    "live words";
  Fmt.pr "%s@." (String.make 66 '-');
  Fmt.pr "%-22s %12.1f %14.0f %14d@." "legacy (PR 4)" r.st_legacy_wall_ms
    r.st_legacy_alloc_w r.st_legacy_live_w;
  Fmt.pr "%-22s %12.1f %14.0f %14d@." "shared+delta"
    r.st_new_wall_ms r.st_new_alloc_w r.st_new_live_w;
  Fmt.pr "%-22s %12.1f@." "shared+delta (1-CFA)" r.st_pta1_wall_ms;
  Fmt.pr "ratios: %.1fx faster, %.1fx less allocation, %.1fx less live heap@."
    speedup alloc_ratio live_ratio;
  Fmt.pr
    "solver: %d sets interned, %d memo hits, %d delta props, %d rounds@."
    r.st_stats.Pta.p_sets_interned r.st_stats.Pta.p_memo_hits
    r.st_stats.Pta.p_delta_props r.st_stats.Pta.p_solver_iters;
  if gate then begin
    let failures = ref [] in
    let need what v =
      if v < 5.0 then
        failures := Fmt.str "%s %.1fx below the 5x gate" what v :: !failures
    in
    if r.st_constraints < 50_000 then
      failures :=
        Fmt.str "only %d constraints (gate needs >= 50000)" r.st_constraints
        :: !failures;
    need "speedup" speedup;
    need "allocation ratio" alloc_ratio;
    need "live-heap ratio" live_ratio;
    match !failures with
    | [] -> Fmt.pr "stress gate OK@."
    | fs ->
        List.iter (fun f -> Fmt.epr "stress gate FAILED: %s@." f) fs;
        exit 1
  end

let stress_json () =
  let r = Lazy.force pta_stress_result in
  let stats_json (s : Pta.stats) =
    Fmt.str
      "{\"sets_interned\":%d,\"memo_hits\":%d,\"delta_props\":%d,\"solver_iters\":%d,\"contexts\":%d,\"fallback_sites\":%d}"
      s.Pta.p_sets_interned s.Pta.p_memo_hits s.Pta.p_delta_props
      s.Pta.p_solver_iters s.Pta.p_contexts s.Pta.p_fallback_sites
  in
  Fmt.str
    "{\n\
    \    \"seed\": %d,\n\
    \    \"constraints\": %d,\n\
    \    \"legacy\": {\"wall_ms\": %.1f, \"alloc_words\": %.0f, \"live_words\": %d},\n\
    \    \"shared_delta\": {\"wall_ms\": %.1f, \"alloc_words\": %.0f, \"live_words\": %d, \"stats\": %s},\n\
    \    \"pta1\": {\"wall_ms\": %.1f, \"stats\": %s}\n\
    \  }"
    Synth.stress.Synth.seed r.st_constraints r.st_legacy_wall_ms
    r.st_legacy_alloc_w r.st_legacy_live_w r.st_new_wall_ms r.st_new_alloc_w
    r.st_new_live_w
    (stats_json r.st_stats)
    r.st_pta1_wall_ms
    (stats_json r.st_pta1_stats)

(* -- machine-readable results (BENCH_deadmem.json) --------------------------------- *)

(* One record per benchmark: wall time of each pipeline phase (the
   median over [runs] repetitions), per-algorithm call-graph shape and
   build time, plus the telemetry counters the instrumented run
   produced. The file is committed, so the performance and precision
   trajectories of the analysis are visible across PRs. *)

type algstats = {
  a_nodes : int;
  a_edges : int;
  a_dead : int;
  a_wall : float;  (* median call-graph build wall ms *)
}

type measurement = {
  m_name : string;
  m_loc : int;
  m_phases : (string * float) list;  (* phase name -> median wall ms *)
  m_run_hist : Telemetry.Histogram.snap;
      (* run-phase latency distribution over the samples (µs), built
         offline with [Histogram.of_values] — telemetry stays off *)
  m_dead : int;
  m_objspace : int;
  m_deadspace : int;
  m_callgraph : (string * algstats) list;  (* "cha" / "rta" / "pta" *)
  m_counters : (string * int) list;
}

let algorithms =
  [ ("cha", Callgraph.Cha); ("rta", Callgraph.Rta); ("pta", Callgraph.Pta) ]

let median xs =
  match List.sort compare xs with
  | [] -> nan
  | sorted -> List.nth sorted (List.length sorted / 2)

(* Order-preserving map, fanned out over [!jobs] domains (atomic work
   cursor, per-index result slots). [jobs = 1] stays a plain map. *)
let parallel_map (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let workers = max 1 (min !jobs (List.length xs)) in
  if workers = 1 then List.map f xs
  else begin
    let input = Array.of_list xs in
    let slots = Array.make (Array.length input) None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < Array.length input then begin
          slots.(i) <- Some (f input.(i));
          go ()
        end
      in
      go ()
    in
    let doms = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join doms;
    Array.to_list slots |> List.map Option.get
  end

let measure ?(runs = 1) () : measurement list =
  let runs = max 1 runs in
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, (Unix.gettimeofday () -. t0) *. 1e3)
  in
  let was_enabled = Telemetry.enabled () in
  Fun.protect
    ~finally:(fun () ->
      Telemetry.set_enabled was_enabled;
      Telemetry.reset ())
    (fun () ->
      parallel_map
        (fun (b : Suite.t) ->
          (* one sample is the whole pipeline, phase by phase; the
             reported time per phase is the median over [runs] samples *)
          (* per-benchmark counter snapshots need exclusive use of the
             global registry; under [--jobs > 1] they are skipped (the
             counters are domain-safe, but a concurrent [reset] would
             clobber another benchmark's sample mid-run) *)
          let exclusive = !jobs = 1 in
          let samples =
            List.init runs (fun _ ->
                if exclusive then begin
                  Telemetry.reset ();
                  Telemetry.set_enabled true
                end;
                let ast, parse_ms =
                  time (fun () -> Frontend.Parser.parse_string b.Suite.source)
                in
                ignore ast;
                let prog, check_ms = time (fun () -> Suite.program b) in
                let result, analyze_ms =
                  time (fun () ->
                      Deadmem.Liveness.analyze ~config:Deadmem.Config.paper
                        prog)
                in
                let outcome, run_ms =
                  time (fun () ->
                      Runtime.Interp.run ~engine:!engine
                        ~dead:(Deadmem.Liveness.dead_set result)
                        prog)
                in
                let cg_ms =
                  List.map
                    (fun (name, alg) ->
                      let _, ms =
                        time (fun () -> Callgraph.build ~algorithm:alg prog)
                      in
                      (name, ms))
                    algorithms
                in
                let phases =
                  [
                    ("parse", parse_ms);
                    ("typecheck", check_ms);
                    ("analyze", analyze_ms);
                    ("run", run_ms);
                  ]
                in
                ( phases,
                  cg_ms,
                  ( result,
                    outcome,
                    if exclusive then Telemetry.counters () else [] ) ))
          in
          let last (_, _, x) = x in
          let result, outcome, counters =
            last (List.nth samples (runs - 1))
          in
          let med_phase p =
            median
              (List.filter_map (fun (ps, _, _) -> List.assoc_opt p ps) samples)
          in
          let med_cg name =
            median
              (List.filter_map (fun (_, cs, _) -> List.assoc_opt name cs)
                 samples)
          in
          let prog = Suite.program b in
          let m_callgraph =
            List.map
              (fun (name, alg) ->
                let cg = Callgraph.build ~algorithm:alg prog in
                let config =
                  { Deadmem.Config.paper with Deadmem.Config.call_graph = alg }
                in
                let dead =
                  List.length
                    (Deadmem.Liveness.dead_members
                       (Deadmem.Liveness.analyze ~config prog))
                in
                ( name,
                  {
                    a_nodes = Callgraph.num_nodes cg;
                    a_edges = Callgraph.num_edges cg;
                    a_dead = dead;
                    a_wall = med_cg name;
                  } ))
              algorithms
          in
          let s = outcome.Runtime.Interp.snapshot in
          let run_us =
            List.filter_map
              (fun (ps, _, _) ->
                Option.map
                  (fun ms -> int_of_float (ms *. 1000.))
                  (List.assoc_opt "run" ps))
              samples
          in
          {
            m_name = b.Suite.name;
            m_loc = Suite.loc b;
            m_phases =
              List.map
                (fun p -> (p, med_phase p))
                [ "parse"; "typecheck"; "analyze"; "run" ];
            m_run_hist =
              Telemetry.Histogram.of_values
                ~name:("bench.run_us." ^ b.Suite.name)
                run_us;
            m_dead = List.length (Deadmem.Liveness.dead_members result);
            m_objspace = s.Runtime.Profile.object_space;
            m_deadspace = s.Runtime.Profile.dead_space;
            m_callgraph;
            m_counters = counters;
          })
        Suite.all)

(* One measurement per invocation: [json --compare FILE] writes the
   snapshot from the same samples it gates on, so the committed file
   always matches the table the gate printed. *)
let measured = lazy (measure ~runs:5 ())

(* Derived throughput: interpreter steps per microsecond of run-phase
   wall. Steps are pinned across engines (identical observable
   semantics), so this figure isolates representation wins from
   step-count drift: a faster value representation raises it even when
   the step counter is byte-identical. *)
let steps_per_us m =
  match
    ( List.assoc_opt "interp.steps" m.m_counters,
      List.assoc_opt "run" m.m_phases )
  with
  | Some steps, Some run_ms when run_ms > 0.0 ->
      float_of_int steps /. (run_ms *. 1000.0)
  | _ -> 0.0

let bench_json () =
  let out = !json_out in
  let ms = Lazy.force measured in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Fmt.str "{\n  \"engine\": \"%s\",\n  \"pta_stress\": %s,\n  \"benchmarks\": ["
       (engine_name ()) (stress_json ()));
  List.iteri
    (fun i m ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Fmt.str
           "\n\
           \    {\"name\":\"%s\",\"loc\":%d,\n\
           \     \"wall_ms\":{%s},\n\
           \     \"steps_per_us\":%.2f,\n\
           \     \"run_us_hist\":%s,\n\
           \     \"dead_members\":%d,\"object_space\":%d,\"dead_space\":%d,\n\
           \     \"callgraph\":{%s},\n\
           \     \"counters\":{%s}}"
           (Frontend.Source.json_escape m.m_name)
           m.m_loc
           (String.concat ","
              (List.map
                 (fun (p, v) ->
                   Fmt.str "\"%s\":%.3f" (Frontend.Source.json_escape p) v)
                 m.m_phases))
           (steps_per_us m)
           (Telemetry.histogram_json m.m_run_hist)
           m.m_dead m.m_objspace m.m_deadspace
           (String.concat ","
              (List.map
                 (fun (name, a) ->
                   Fmt.str
                     "\"%s\":{\"nodes\":%d,\"edges\":%d,\"dead_members\":%d,\"wall_ms\":%.3f}"
                     name a.a_nodes a.a_edges a.a_dead a.a_wall)
                 m.m_callgraph))
           (String.concat ","
              (List.map
                 (fun (name, v) ->
                   Fmt.str "\"%s\":%d" (Frontend.Source.json_escape name) v)
                 m.m_counters))))
    ms;
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out_bin out in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Buffer.output_buffer oc buf);
  Fmt.pr "wrote %s (%d benchmarks)@." out (List.length ms)

(* -- baseline comparison (--compare) ----------------------------------------------- *)

(* Diff a fresh measurement against a committed BENCH_deadmem.json.
   Both sides are medians over repeated runs, which lets the gate be
   tight: wall-time regressions beyond [regression_pct] in any phase
   fail the comparison (exit 1), but only past an absolute noise floor
   so the sub-millisecond phases of small benchmarks can't trip the
   gate on scheduler jitter. Counter changes and result-shape changes
   (dead members, object/dead space, per-algorithm call-graph shape)
   are reported; result-shape changes also fail, since they mean the
   optimization changed observable behavior, not just speed. The PTA
   build is additionally gated at 2x the CHA build per benchmark. *)
let regression_pct = 10.0

let noise_floor_ms = 2.0

let compare_baseline path contents =
  let module J = Telemetry.Json in
  let doc =
    match J.parse contents with
    | Ok d -> d
    | Error e ->
        Fmt.epr "cannot parse %s: %s@." path e;
        exit 2
  in
  let baseline =
    match Option.bind (J.member "benchmarks" doc) J.to_list with
    | Some rows ->
        List.filter_map
          (fun row ->
            match Option.bind (J.member "name" row) J.to_string with
            | Some name -> Some (name, row)
            | None -> None)
          rows
    | None ->
        Fmt.epr "%s has no \"benchmarks\" array@." path;
        exit 2
  in
  let num obj key =
    match Option.bind (J.member key obj) (function
        | J.Num f -> Some f
        | _ -> None)
      with
    | Some f -> f
    | None -> nan
  in
  let failures = ref [] in
  let fail fmt = Fmt.kstr (fun m -> failures := m :: !failures) fmt in
  (match Option.bind (J.member "engine" doc) J.to_string with
  | Some e when e <> engine_name () ->
      Fmt.pr "@.note: baseline engine '%s', measuring with '%s'@." e
        (engine_name ())
  | _ -> ());
  Fmt.pr "@.Comparison against %s (gate: >%.0f%% + %.0fms phase regression)@."
    path regression_pct noise_floor_ms;
  Fmt.pr "%-10s %-9s %9s %9s %8s@." "name" "phase" "base ms" "now ms" "delta";
  Fmt.pr "%s@." (String.make 50 '-');
  List.iter
    (fun m ->
      match List.assoc_opt m.m_name baseline with
      | None -> fail "%s: not in baseline" m.m_name
      | Some row ->
          let wall =
            match J.member "wall_ms" row with Some w -> w | None -> J.Null
          in
          List.iter
            (fun (phase, now) ->
              let base = num wall phase in
              if Float.is_nan base then
                fail "%s/%s: missing from baseline" m.m_name phase
              else begin
                let delta_pct =
                  if base > 0.0 then (now -. base) /. base *. 100.0 else 0.0
                in
                Fmt.pr "%-10s %-9s %9.3f %9.3f %+7.1f%%@." m.m_name phase base
                  now delta_pct;
                if
                  now > base *. (1.0 +. (regression_pct /. 100.0))
                  && now > base +. noise_floor_ms
                then
                  fail "%s/%s: %.3fms -> %.3fms (+%.1f%%)" m.m_name phase base
                    now delta_pct
              end)
            m.m_phases;
          (* derived throughput: steps/us of run-phase wall. Reported
             next to the gated phases so representation wins stay
             visible even when the step counter is byte-identical;
             informational (run wall above already carries the gate).
             Old baselines predate the field and print '-'. *)
          let now_tput = steps_per_us m in
          let base_tput = num row "steps_per_us" in
          if Float.is_nan base_tput then
            Fmt.pr "%-10s %-9s %9s %9.2f %8s@." m.m_name "steps/us" "-"
              now_tput ""
          else
            Fmt.pr "%-10s %-9s %9.2f %9.2f %+7.1f%%@." m.m_name "steps/us"
              base_tput now_tput
              (if base_tput > 0.0 then
                 (now_tput -. base_tput) /. base_tput *. 100.0
               else 0.0);
          (* result shape must not drift *)
          let same key now =
            let base = num row key in
            if (not (Float.is_nan base)) && int_of_float base <> now then
              fail "%s: %s changed %d -> %d" m.m_name key (int_of_float base)
                now
          in
          same "dead_members" m.m_dead;
          same "object_space" m.m_objspace;
          same "dead_space" m.m_deadspace;
          (* per-algorithm call-graph shape must not drift either: a
             node/edge/dead-count change means precision moved *)
          (match J.member "callgraph" row with
          | Some cgs ->
              List.iter
                (fun (name, a) ->
                  match J.member name cgs with
                  | Some obj ->
                      let chk key now =
                        let base = num obj key in
                        if (not (Float.is_nan base)) && int_of_float base <> now
                        then
                          fail "%s: callgraph.%s.%s changed %d -> %d" m.m_name
                            name key (int_of_float base) now
                      in
                      chk "nodes" a.a_nodes;
                      chk "edges" a.a_edges;
                      chk "dead_members" a.a_dead
                  | None -> ())
                m.m_callgraph
          | None -> ());
          (* the precision of PTA must stay affordable: its build may
             not take more than twice the CHA build on any benchmark *)
          (match
             ( List.assoc_opt "cha" m.m_callgraph,
               List.assoc_opt "pta" m.m_callgraph )
           with
          | Some cha, Some pta ->
              Fmt.pr "%-10s %-9s %9.3f %9.3f %8s@." m.m_name "cg-pta"
                cha.a_wall pta.a_wall "(2x cap)";
              if
                pta.a_wall > 2.0 *. cha.a_wall
                && pta.a_wall > cha.a_wall +. noise_floor_ms
              then
                fail "%s: PTA build %.3fms exceeds 2x CHA build %.3fms"
                  m.m_name pta.a_wall cha.a_wall
          | _ -> ());
          (* counter drift is informational unless it is an interpreter
             semantics counter *)
          let base_counters =
            match J.member "counters" row with
            | Some (J.Obj kvs) ->
                List.filter_map
                  (fun (k, v) ->
                    match v with J.Num f -> Some (k, int_of_float f) | _ -> None)
                  kvs
            | _ -> []
          in
          List.iter
            (fun (k, now) ->
              match List.assoc_opt k base_counters with
              | Some base when base <> now ->
                  Fmt.pr "%-10s   counter %s: %d -> %d@." m.m_name k base now;
                  if k = "interp.steps" || k = "interp.allocations" then
                    fail "%s: %s changed %d -> %d" m.m_name k base now
              | _ -> ())
            m.m_counters)
    (Lazy.force measured);
  match List.rev !failures with
  | [] ->
      Fmt.pr "@.comparison OK: no phase regressed beyond the gate@.";
      true
  | fs ->
      Fmt.epr "@.comparison FAILED:@.";
      List.iter (fun f -> Fmt.epr "  - %s@." f) fs;
      false

(* -- driver ------------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let args =
    let rec go acc = function
      | "--engine" :: e :: rest ->
          (match e with
          | "tree" -> engine := Runtime.Interp.Tree
          | "bytecode" -> engine := Runtime.Interp.Bytecode
          | _ ->
              Fmt.epr "unknown engine '%s' (tree|bytecode)@." e;
              exit 2);
          go acc rest
      | "--jobs" :: n :: rest ->
          (match int_of_string_opt n with
          | Some n when n >= 1 -> jobs := n
          | _ ->
              Fmt.epr "--jobs expects a positive integer@.";
              exit 2);
          go acc rest
      | "--out" :: path :: rest ->
          json_out := path;
          go acc rest
      | "--stress-src" :: path :: rest ->
          (* the pinned stress input as MiniC++ source, so the CLI can
             run the very same program through the analysis pipeline *)
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc (Synth.source Synth.stress));
          Fmt.pr "wrote %s@." path;
          go acc rest
      | a :: rest -> go (a :: acc) rest
      | [] -> List.rev acc
    in
    go [] args
  in
  let compare_path, args =
    let rec go acc = function
      | "--compare" :: path :: rest -> (Some path, List.rev_append acc rest)
      | a :: rest -> go (a :: acc) rest
      | [] -> (None, List.rev acc)
    in
    go [] args
  in
  (* snapshot the baseline before any action can overwrite it ([json
     --compare FILE] refreshes the file and diffs against what it said
     before this run) *)
  let baseline =
    Option.map
      (fun path ->
        let ic =
          try open_in_bin path
          with Sys_error e ->
            Fmt.epr "cannot open baseline: %s@." e;
            exit 2
        in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> (path, really_input_string ic (in_channel_length ic))))
      compare_path
  in
  let all = (args = [] && compare_path = None) || args = [ "all" ] in
  if all || List.mem "table1" args then table1 ();
  if all || List.mem "figure3" args then figure3 ();
  if all || List.mem "table2" args then table2 ();
  if all || List.mem "figure4" args then figure4 ();
  if all || List.mem "ablation" args then ablation ();
  if all || List.mem "perf" args then perf ();
  if all || List.mem "pta-stress" args || List.mem "--pta-stress" args then
    pta_stress ~gate:(List.mem "--gate" args) ();
  if all || List.mem "json" args then bench_json ();
  match baseline with
  | Some (path, contents) ->
      if not (compare_baseline path contents) then exit 1
  | None -> ()
